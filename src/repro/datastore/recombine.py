"""Re-aggregation of stored summaries to a coarser granularity.

The third storage strategy of Section IV ("round-robin mechanism and
hierarchical aggregation") does not delete old partitions — it merges
several old summaries into one coarser summary with a smaller footprint.
Live primitives know how to combine themselves; stored summaries are
snapshots, so this module provides per-kind combiners over the snapshot
payloads.

Each combiner takes the summaries oldest-first plus a ``shrink`` factor
(the target footprint relative to the combined inputs) and returns one
coarser :class:`~repro.core.summary.DataSummary` whose metadata is the
fold of the inputs' metadata.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Sequence

from repro.core.heavy_hitters import SpaceSaving
from repro.core.summary import DataSummary, SummaryMeta
from repro.core.timebin import BinStats
from repro.errors import StorageError
from repro.flows.tree import Flowtree

SummaryCombiner = Callable[[Sequence[DataSummary], float], DataSummary]

_rng = random.Random(20190707)


def _fold_meta(summaries: Sequence[DataSummary]) -> SummaryMeta:
    meta = summaries[0].meta
    for summary in summaries[1:]:
        meta = meta.combined(summary.meta)
    return meta


def combine_flowtrees(
    summaries: Sequence[DataSummary], shrink: float
) -> DataSummary:
    """Merge Flowtree snapshots, then compress to the shrink target."""
    merged: Flowtree = summaries[0].payload.copy()
    for summary in summaries[1:]:
        merged.merge(summary.payload)
    target = max(
        merged.policy.depth + 1, int(merged.node_count * shrink)
    )
    merged.compress(target_nodes=target)
    return DataSummary(
        kind="flowtree",
        meta=_fold_meta(summaries),
        payload=merged,
        size_bytes=merged.estimated_size_bytes(),
        attrs=dict(summaries[-1].attrs, nodes=merged.node_count),
    )


def combine_timebins(
    summaries: Sequence[DataSummary], shrink: float
) -> DataSummary:
    """Merge bin tables, widening bins by the inverse shrink factor."""
    widths = [s.attrs["bin_seconds"] for s in summaries]
    base = max(widths)
    factor = max(1, int(round(1.0 / shrink)))
    new_width = base * factor
    merged: Dict[float, BinStats] = {}
    for summary in summaries:
        for bin_start, stats in summary.payload.items():
            slot = (bin_start // new_width) * new_width
            target = merged.setdefault(slot, BinStats())
            target.merge(stats, _rng, reservoir_size=32)
    size = 48 * len(merged) + 8 * sum(
        len(b.reservoir) for b in merged.values()
    )
    return DataSummary(
        kind="timebin",
        meta=_fold_meta(summaries),
        payload=dict(sorted(merged.items())),
        size_bytes=size,
        attrs={"bin_seconds": new_width},
    )


def combine_samples(
    summaries: Sequence[DataSummary], shrink: float
) -> DataSummary:
    """Concatenate sampled series, thinning to the shrink target.

    The output's effective sampling rate is the minimum input rate times
    the thinning factor, recorded in ``attrs["rate"]`` so estimates stay
    unbiased.
    """
    rate = min(s.attrs["rate"] for s in summaries)
    points = []
    for summary in summaries:
        keep = rate / summary.attrs["rate"]
        for point in summary.payload:
            if keep >= 1.0 or _rng.random() < keep:
                points.append(point)
    kept = [p for p in points if _rng.random() < shrink]
    kept.sort(key=lambda p: p.timestamp)
    return DataSummary(
        kind="sample",
        meta=_fold_meta(summaries),
        payload=kept,
        size_bytes=16 * len(kept),
        attrs={"rate": rate * shrink},
    )


def combine_heavy_hitters(
    summaries: Sequence[DataSummary], shrink: float
) -> DataSummary:
    """Merge Space-Saving sketches and shrink the counter budget."""
    first: SpaceSaving = summaries[0].payload
    merged = SpaceSaving(first.capacity)
    merged.merge(first)
    for summary in summaries[1:]:
        merged.merge(summary.payload)
    merged.resize(max(16, int(merged.capacity * shrink)))
    return DataSummary(
        kind="heavy_hitter",
        meta=_fold_meta(summaries),
        payload=merged,
        size_bytes=merged.footprint_bytes(),
        attrs={"capacity": merged.capacity},
    )


def combine_reservoirs(
    summaries: Sequence[DataSummary], shrink: float
) -> DataSummary:
    """Subsample the union of reservoir snapshots."""
    pool = [item for summary in summaries for item in summary.payload]
    seen = sum(summary.attrs.get("seen", len(summary.payload)) for summary in summaries)
    capacity = max(16, int(len(pool) * shrink))
    if len(pool) > capacity:
        pool = _rng.sample(pool, capacity)
    return DataSummary(
        kind="reservoir",
        meta=_fold_meta(summaries),
        payload=pool,
        size_bytes=24 * max(len(pool), 1),
        attrs={"capacity": capacity, "seen": seen},
    )


def combine_count_min(
    summaries: Sequence[DataSummary], shrink: float
) -> DataSummary:
    """Merge Count-Min sketches (cell-wise; no lossless shrink exists)."""
    first = summaries[0].payload
    import copy

    merged = copy.deepcopy(first)
    for summary in summaries[1:]:
        merged.merge(summary.payload)
    return DataSummary(
        kind="count_min",
        meta=_fold_meta(summaries),
        payload=merged,
        size_bytes=merged.footprint_bytes(),
        attrs={"width": merged.width, "depth": merged.depth},
    )


def combine_hhh(
    summaries: Sequence[DataSummary], shrink: float
) -> DataSummary:
    """Merge per-depth sketch stacks and shrink each level's budget."""
    first: Dict[int, SpaceSaving] = summaries[0].payload
    merged: Dict[int, SpaceSaving] = {}
    for depth, sketch in first.items():
        clone = SpaceSaving(sketch.capacity)
        clone.merge(sketch)
        merged[depth] = clone
    for summary in summaries[1:]:
        for depth, sketch in summary.payload.items():
            merged[depth].merge(sketch)
    capacity = max(16, int(first[0].capacity * shrink))
    for sketch in merged.values():
        sketch.resize(capacity)
    size = sum(sketch.footprint_bytes() for sketch in merged.values())
    return DataSummary(
        kind="hhh",
        meta=_fold_meta(summaries),
        payload=merged,
        size_bytes=size,
        attrs={"capacity_per_level": capacity},
    )


def combine_quantiles(
    summaries: Sequence[DataSummary], shrink: float
) -> DataSummary:
    """Merge KLL sketches, shrinking the accuracy parameter ``k``."""
    from repro.core.quantiles import KLLSketch

    first: KLLSketch = summaries[0].payload
    merged = KLLSketch(k=first.k, seed=20190709)
    merged.merge(first)
    for summary in summaries[1:]:
        merged.merge(summary.payload)
    if shrink < 1.0:
        merged.resize(max(16, int(first.k * shrink)))
    return DataSummary(
        kind="quantile",
        meta=_fold_meta(summaries),
        payload=merged,
        size_bytes=merged.footprint_bytes(),
        attrs={"k": merged.k, "count": merged.count},
    )


def combine_raw(
    summaries: Sequence[DataSummary], shrink: float
) -> DataSummary:
    """Concatenate raw items oldest-first, then keep the newest fraction.

    Raw data cannot be aggregated without losing its point; shrinking a
    raw summary means dropping the oldest items (matching the
    primitive's own round-robin behaviour).
    """
    items = sorted(
        (pair for summary in summaries for pair in summary.payload),
        key=lambda pair: pair[0],
    )
    total_bytes = sum(summary.size_bytes for summary in summaries)
    dropped = sum(summary.attrs.get("dropped", 0) for summary in summaries)
    if shrink < 1.0 and items:
        keep = max(1, int(len(items) * shrink))
        dropped += len(items) - keep
        items = items[-keep:]
        total_bytes = int(total_bytes * shrink)
    budget = max(summary.attrs["budget_bytes"] for summary in summaries)
    return DataSummary(
        kind="raw",
        meta=_fold_meta(summaries),
        payload=items,
        size_bytes=total_bytes,
        attrs={"budget_bytes": budget, "dropped": dropped},
    )


_COMBINERS: Dict[str, SummaryCombiner] = {
    "flowtree": combine_flowtrees,
    "timebin": combine_timebins,
    "sample": combine_samples,
    "heavy_hitter": combine_heavy_hitters,
    "reservoir": combine_reservoirs,
    "count_min": combine_count_min,
    "hhh": combine_hhh,
    "raw": combine_raw,
    "quantile": combine_quantiles,
}


def combine_summaries(
    summaries: Sequence[DataSummary], shrink: float = 0.5
) -> DataSummary:
    """Combine same-kind summaries into one coarser summary."""
    if not summaries:
        raise StorageError("cannot combine zero summaries")
    kinds = {summary.kind for summary in summaries}
    if len(kinds) != 1:
        raise StorageError(f"cannot combine mixed summary kinds {kinds}")
    kind = summaries[0].kind
    combiner = _COMBINERS.get(kind)
    if combiner is None:
        raise StorageError(f"no combiner registered for kind {kind!r}")
    return combiner(summaries, shrink)


def register_combiner(kind: str, combiner: SummaryCombiner) -> None:
    """Register a combiner for a custom summary kind."""
    _COMBINERS[kind] = combiner

"""Reactive result caching (Section VII).

"The performance can be improved both by reactively caching earlier
results and by proactively replicating data ...  Note, that the
approaches are not mutually exclusive, but can be combined."

A :class:`QueryCache` memoizes federated query results for identical
(aggregator, request, window) keys within a TTL.  Caching only helps
*repeat* queries — the paper's stated reason to focus on replication —
which the hit/miss counters make measurable.  Cache keys hash the
request's operator and parameters; requests whose parameters are not
hashable (callables etc.) are simply never cached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Optional, Tuple

from repro.core.primitive import QueryRequest


#: Sentinel marking values that must never be used as cache keys.
_UNCACHEABLE = object()


def _freeze(value: Any) -> Any:
    """Convert a request parameter to a hashable key, or the
    ``_UNCACHEABLE`` sentinel when that is not safely possible."""
    if callable(value):
        # callables hash by identity, which would make semantically
        # identical requests miss (and different ones collide on reuse)
        return _UNCACHEABLE
    if isinstance(value, dict):
        frozen_items = []
        for key in sorted(value, key=repr):
            frozen = _freeze(value[key])
            if frozen is _UNCACHEABLE:
                return _UNCACHEABLE
            frozen_items.append((key, frozen))
        return tuple(frozen_items)
    if isinstance(value, (list, tuple)):
        frozen_list = []
        for item in value:
            frozen = _freeze(item)
            if frozen is _UNCACHEABLE:
                return _UNCACHEABLE
            frozen_list.append(frozen)
        return tuple(frozen_list)
    try:
        hash(value)
    except TypeError:
        return _UNCACHEABLE
    return value


@dataclass
class CacheEntry:
    """One memoized result.

    ``window`` is the query's effective time window (for ``VS``
    queries, the hull of both windows): epoch-scoped invalidation keeps
    entries whose window was already fully closed when they were cached
    — new epochs cannot change them — and drops the rest.  The default
    ``(None, None)`` marks an unbounded window, which is always dropped
    at a boundary.
    """

    value: Any
    stored_at: float
    result_bytes: int
    window: Tuple[Optional[float], Optional[float]] = (None, None)


@dataclass
class QueryCache:
    """A TTL-bounded, size-bounded result cache.

    **TTL contract:** an entry is live strictly *less than*
    ``ttl_seconds`` after it was stored — at exactly
    ``now - stored_at == ttl_seconds`` the entry has expired and
    :meth:`get` misses.  This matches
    :class:`~repro.datastore.storage.ExpirationStorage`, whose epochs
    age out on the same closed boundary.

    **Eviction:** insertion-ordered.  ``_entries`` is a plain dict, so
    iteration order *is* storage order; :meth:`put` drops the entry at
    the front when full — O(1) per insert instead of the full
    ``min()`` scan over timestamps this cache used to do, which made a
    hot cache at ``max_entries`` O(n) per insert.  Overwriting a key
    re-inserts it at the back, keeping dict order aligned with
    ``stored_at`` order.
    """

    ttl_seconds: float = 300.0
    max_entries: int = 1024
    _entries: Dict[Hashable, CacheEntry] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    uncacheable: int = 0

    def key_for(
        self,
        aggregator: str,
        request: QueryRequest,
        start: Optional[float],
        end: Optional[float],
    ) -> Optional[Hashable]:
        """The cache key, or None when the request is uncacheable."""
        params = _freeze(request.params)
        if params is _UNCACHEABLE:
            self.uncacheable += 1
            return None
        return (aggregator, request.operator, params, start, end)

    def get(self, key: Optional[Hashable], now: float) -> Optional[CacheEntry]:
        """A live entry, or None (counts hit/miss)."""
        if key is None:
            return None
        entry = self._entries.get(key)
        if entry is None or now - entry.stored_at >= self.ttl_seconds:
            if entry is not None:
                del self._entries[key]
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(
        self,
        key: Optional[Hashable],
        value: Any,
        result_bytes: int,
        now: float,
        window: Tuple[Optional[float], Optional[float]] = (None, None),
    ) -> None:
        """Store one result (evicting the oldest entry past the cap)."""
        if key is None:
            return
        if key in self._entries:
            # re-insert at the back so dict order stays storage order
            del self._entries[key]
        elif len(self._entries) >= self.max_entries:
            del self._entries[next(iter(self._entries))]
        self._entries[key] = CacheEntry(
            value=value,
            stored_at=now,
            result_bytes=result_bytes,
            window=window,
        )

    def invalidate(self) -> int:
        """Drop everything (topology change, explicit flush); count."""
        count = len(self._entries)
        self._entries.clear()
        return count

    def invalidate_open(self, boundary: float) -> int:
        """Epoch-scoped invalidation: drop entries still open at
        ``boundary`` (the previous close), keep fully-closed windows.

        An entry whose window end is at or before the boundary that
        held when it was cached already saw every record its window
        will ever cover — a new epoch seals strictly later data — so it
        survives the close and keeps answering historical repeats with
        zero bytes shipped.  Unbounded windows (``end=None``) and
        windows reaching past the boundary are dropped, exactly as the
        old wholesale invalidation dropped them.
        """
        doomed = [
            key
            for key, entry in self._entries.items()
            if entry.window[1] is None or entry.window[1] > boundary
        ]
        for key in doomed:
            del self._entries[key]
        return len(doomed)

    def invalidate_window(
        self, start: Optional[float], end: Optional[float]
    ) -> int:
        """Drop entries whose window overlaps ``[start, end)``.

        The late-delivery hook: when a parked export finally lands, its
        (historical) interval re-opens every cached window it touches —
        those answers are stale even though their windows were closed.
        ``None`` bounds are unbounded on that side.
        """
        doomed = []
        for key, entry in self._entries.items():
            win_start, win_end = entry.window
            if start is not None and win_end is not None and win_end <= start:
                continue
            if end is not None and win_start is not None and win_start >= end:
                continue
            doomed.append(key)
        for key in doomed:
            del self._entries[key]
        return len(doomed)

    def __len__(self) -> int:
        return len(self._entries)

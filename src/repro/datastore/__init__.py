"""The data store (Section IV, Figure 4).

A data store collects data from sensors/routers, feeds it into
subscribed **aggregators** (instances of computing primitives), stores
the resulting summaries as **partitions** under one of the three storage
strategies, evaluates **triggers** on both raw items and fresh
summaries, and answers queries — routing sub-queries to peer stores (or
local replicas) when the data lives elsewhere.
"""

from repro.datastore.partitions import Partition, PartitionCatalog
from repro.datastore.storage import (
    ExpirationStorage,
    HierarchicalStorage,
    RoundRobinStorage,
    StorageStrategy,
)
from repro.datastore.triggers import (
    RawTrigger,
    SummaryTrigger,
    TriggerEngine,
    TriggerFiring,
)
from repro.datastore.aggregator import Aggregator
from repro.datastore.store import DataStore, QueryResult

__all__ = [
    "Partition",
    "PartitionCatalog",
    "StorageStrategy",
    "ExpirationStorage",
    "RoundRobinStorage",
    "HierarchicalStorage",
    "RawTrigger",
    "SummaryTrigger",
    "TriggerEngine",
    "TriggerFiring",
    "Aggregator",
    "DataStore",
    "QueryResult",
]

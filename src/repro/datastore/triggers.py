"""Triggers: the data store's hook into the controller (Figures 3/4).

Applications install triggers in the data store; when one matches, it
"activates the controller which regulates the respective machine(s)".
Two flavors exist because the paper distinguishes real-time reactions to
simple conditions (raw triggers, evaluated on every ingested item) from
conditions over aggregates (summary triggers, evaluated when an epoch
closes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core.summary import DataSummary
from repro.errors import TriggerError

#: A trigger notification delivered to a controller/sink.
TriggerSink = Callable[["TriggerFiring"], None]


@dataclass(frozen=True)
class TriggerFiring:
    """One trigger match."""

    trigger_id: str
    stream_id: str
    time: float
    payload: Any
    installed_by: str


@dataclass
class RawTrigger:
    """A per-item condition on a raw stream (real-time control path).

    ``predicate(item)`` runs on every item of streams matching
    ``stream_id`` (``None`` matches all streams).
    """

    trigger_id: str
    predicate: Callable[[Any], bool]
    stream_id: Optional[str] = None
    installed_by: str = "unknown"
    cooldown_seconds: float = 0.0
    _last_fired: Optional[float] = field(default=None, repr=False)

    def matches(self, stream_id: str, item: Any, time: float) -> bool:
        """Evaluate the trigger, honoring its cooldown."""
        if self.stream_id is not None and self.stream_id != stream_id:
            return False
        if (
            self._last_fired is not None
            and time - self._last_fired < self.cooldown_seconds
        ):
            return False
        if not self.predicate(item):
            return False
        self._last_fired = time
        return True


@dataclass
class SummaryTrigger:
    """A condition over a fresh epoch summary (complex situations)."""

    trigger_id: str
    predicate: Callable[[DataSummary], bool]
    aggregator: Optional[str] = None
    installed_by: str = "unknown"

    def matches(self, aggregator: str, summary: DataSummary) -> bool:
        """Evaluate the trigger against one epoch summary."""
        if self.aggregator is not None and self.aggregator != aggregator:
            return False
        return self.predicate(summary)


class TriggerEngine:
    """Holds installed triggers and dispatches firings to sinks."""

    def __init__(self) -> None:
        self._raw: Dict[str, RawTrigger] = {}
        self._summary: Dict[str, SummaryTrigger] = {}
        self._sinks: List[TriggerSink] = []
        self.firings: List[TriggerFiring] = []

    # -- installation -----------------------------------------------------

    def install_raw(self, trigger: RawTrigger) -> None:
        """Install a raw-item trigger (id must be unique)."""
        if trigger.trigger_id in self._raw or trigger.trigger_id in self._summary:
            raise TriggerError(f"duplicate trigger id {trigger.trigger_id!r}")
        self._raw[trigger.trigger_id] = trigger

    def install_summary(self, trigger: SummaryTrigger) -> None:
        """Install a summary trigger (id must be unique)."""
        if trigger.trigger_id in self._raw or trigger.trigger_id in self._summary:
            raise TriggerError(f"duplicate trigger id {trigger.trigger_id!r}")
        self._summary[trigger.trigger_id] = trigger

    def remove(self, trigger_id: str) -> None:
        """Uninstall a trigger of either flavor."""
        if self._raw.pop(trigger_id, None) is None:
            if self._summary.pop(trigger_id, None) is None:
                raise TriggerError(f"unknown trigger id {trigger_id!r}")

    def installed(self) -> List[str]:
        """Ids of all installed triggers."""
        return sorted(list(self._raw) + list(self._summary))

    def has_raw(self) -> bool:
        """Whether any raw trigger is installed (the per-item hot path
        can be skipped entirely when not)."""
        return bool(self._raw)

    # -- dispatch -----------------------------------------------------------

    def subscribe(self, sink: TriggerSink) -> None:
        """Register a firing sink (typically a controller)."""
        self._sinks.append(sink)

    def _fire(self, firing: TriggerFiring) -> None:
        self.firings.append(firing)
        for sink in self._sinks:
            sink(firing)

    def evaluate_raw(self, stream_id: str, item: Any, time: float) -> int:
        """Run raw triggers against one item; returns match count."""
        fired = 0
        for trigger in self._raw.values():
            if trigger.matches(stream_id, item, time):
                self._fire(
                    TriggerFiring(
                        trigger_id=trigger.trigger_id,
                        stream_id=stream_id,
                        time=time,
                        payload=item,
                        installed_by=trigger.installed_by,
                    )
                )
                fired += 1
        return fired

    def evaluate_summary(
        self, aggregator: str, summary: DataSummary, time: float
    ) -> int:
        """Run summary triggers against one epoch summary."""
        fired = 0
        for trigger in self._summary.values():
            if trigger.matches(aggregator, summary):
                self._fire(
                    TriggerFiring(
                        trigger_id=trigger.trigger_id,
                        stream_id=aggregator,
                        time=time,
                        payload=summary,
                        installed_by=trigger.installed_by,
                    )
                )
                fired += 1
        return fired

"""Rehydrating stored summaries into queryable primitives.

Stored partitions are snapshots; queries are defined on primitives.
``rehydrate`` rebuilds a live primitive around a snapshot payload so the
same :class:`~repro.core.primitive.QueryRequest` vocabulary works on
history, on local replicas of remote partitions, and on freshly merged
window summaries alike.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.core.flowtree import FlowtreePrimitive
from repro.core.heavy_hitters import HeavyHitterPrimitive
from repro.core.primitive import ComputingPrimitive
from repro.core.reservoir import ReservoirPrimitive
from repro.core.sampling import RandomSamplePrimitive
from repro.core.sketches import CountMinPrimitive
from repro.core.summary import DataSummary
from repro.core.timebin import TimeBinStatistics
from repro.errors import StorageError

Rehydrator = Callable[[DataSummary], ComputingPrimitive]


def _rehydrate_flowtree(summary: DataSummary) -> ComputingPrimitive:
    tree = summary.payload
    primitive = FlowtreePrimitive(
        summary.meta.location,
        policy=tree.policy,
        node_budget=tree.node_budget,
        metric=tree.metric,
    )
    primitive.tree = tree
    return primitive


def _rehydrate_sample(summary: DataSummary) -> ComputingPrimitive:
    primitive = RandomSamplePrimitive(
        summary.meta.location, rate=max(summary.attrs["rate"], 1e-9)
    )
    primitive._points = list(summary.payload)
    return primitive


def _rehydrate_timebin(summary: DataSummary) -> ComputingPrimitive:
    primitive = TimeBinStatistics(
        summary.meta.location, bin_seconds=summary.attrs["bin_seconds"]
    )
    width = summary.attrs["bin_seconds"]
    primitive._bins = {
        int(round(bin_start / width)): stats
        for bin_start, stats in summary.payload.items()
    }
    return primitive


def _rehydrate_heavy_hitter(summary: DataSummary) -> ComputingPrimitive:
    primitive = HeavyHitterPrimitive(
        summary.meta.location, capacity=summary.payload.capacity
    )
    primitive.sketch = summary.payload
    return primitive


def _rehydrate_reservoir(summary: DataSummary) -> ComputingPrimitive:
    primitive = ReservoirPrimitive(
        summary.meta.location, capacity=max(1, summary.attrs["capacity"])
    )
    primitive.reservoir._items = list(summary.payload)
    primitive.reservoir.seen = summary.attrs.get("seen", len(summary.payload))
    return primitive


def _rehydrate_count_min(summary: DataSummary) -> ComputingPrimitive:
    sketch = summary.payload
    primitive = CountMinPrimitive(
        summary.meta.location,
        width=sketch.width,
        depth=sketch.depth,
        seed=sketch.seed,
    )
    primitive.sketch = sketch
    return primitive


def _rehydrate_quantile(summary: DataSummary) -> ComputingPrimitive:
    from repro.core.quantiles import QuantilePrimitive

    primitive = QuantilePrimitive(
        summary.meta.location, k=summary.payload.k
    )
    primitive.sketch = summary.payload
    return primitive


def _rehydrate_raw(summary: DataSummary) -> ComputingPrimitive:
    from repro.core.rawstore import RawStorePrimitive

    primitive = RawStorePrimitive(
        summary.meta.location,
        budget_bytes=max(1, summary.attrs["budget_bytes"]),
    )
    for timestamp, item in summary.payload:
        primitive._items.append((timestamp, item, primitive._item_size(item)))
    primitive._stored_bytes = summary.size_bytes
    return primitive


_REHYDRATORS: Dict[str, Rehydrator] = {
    "flowtree": _rehydrate_flowtree,
    "sample": _rehydrate_sample,
    "timebin": _rehydrate_timebin,
    "heavy_hitter": _rehydrate_heavy_hitter,
    "reservoir": _rehydrate_reservoir,
    "count_min": _rehydrate_count_min,
    "raw": _rehydrate_raw,
    "quantile": _rehydrate_quantile,
}


def can_rehydrate(kind: str) -> bool:
    """Whether stored summaries of ``kind`` support queries."""
    return kind in _REHYDRATORS


def rehydrate(summary: DataSummary) -> ComputingPrimitive:
    """Wrap a stored summary in a queryable primitive."""
    rehydrator = _REHYDRATORS.get(summary.kind)
    if rehydrator is None:
        raise StorageError(
            f"summaries of kind {summary.kind!r} cannot be rehydrated"
        )
    primitive = rehydrator(summary)
    primitive._epoch_start = summary.meta.interval.start
    primitive._epoch_end = summary.meta.interval.end
    return primitive


def register_rehydrator(kind: str, rehydrator: Rehydrator) -> None:
    """Register a rehydrator for a custom summary kind."""
    _REHYDRATORS[kind] = rehydrator


def approx_result_bytes(result: Any) -> int:
    """A deterministic proxy for a query result's wire size.

    Replication decisions only need result sizes that are consistent
    between runs, not byte-exact encodings; the ``repr`` length is both
    and costs nothing extra to maintain.
    """
    return max(8, len(repr(result)))

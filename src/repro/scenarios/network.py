"""The network-monitoring scenario (Section II.B) as a reusable harness.

Builds per-site data stores over a region hierarchy, deploys the
monitoring applications (trends, traffic matrix, DDoS investigation
with controller-backed mitigation), and replays a configurable number
of traffic epochs with optional attack injection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.apps.base import AppReport
from repro.apps.ddos import DDoSFinding, DDoSInvestigationApp
from repro.apps.traffic_matrix import TrafficMatrixApp
from repro.apps.trends import NetworkTrendsApp, TrendReport
from repro.control.controller import Controller
from repro.core.summary import Location
from repro.hierarchy.topology import network_monitoring_hierarchy
from repro.runtime.config import EXPORT_NONE, LevelConfig
from repro.runtime.runtime import HierarchyRuntime
from repro.simulation.sensors import Actuator
from repro.simulation.traffic import TrafficConfig, TrafficGenerator


@dataclass
class NetworkOutcome:
    """What a monitoring run produced."""

    epochs: int
    sites: List[str]
    findings: List[DDoSFinding] = field(default_factory=list)
    trend_reports: List[TrendReport] = field(default_factory=list)
    matrix_reports: List[AppReport] = field(default_factory=list)
    mitigation_rules: Dict[str, List[str]] = field(default_factory=dict)
    wan_bytes: int = 0

    @property
    def detected_attacks(self) -> int:
        """Number of DDoS findings."""
        return len(self.findings)


class NetworkScenario:
    """A deterministic multi-site monitoring world."""

    def __init__(
        self,
        regions: int = 4,
        routers_per_region: int = 1,
        flows_per_epoch: int = 2000,
        seed: int = 7,
        node_budget: int = 8192,
        epoch_seconds: float = 60.0,
        with_trends: bool = True,
        with_matrix: bool = True,
        with_ddos: bool = True,
    ) -> None:
        self.epoch_seconds = epoch_seconds
        self.site_names: List[str] = [
            f"region{r + 1}/router{i + 1}"
            for r in range(regions)
            for i in range(routers_per_region)
        ]
        # the monitoring world is a HierarchyRuntime with bare router
        # stores: applications install their own aggregators through the
        # Manager, and epoch partitions stay local (no WAN export)
        self.runtime = HierarchyRuntime(
            network_monitoring_hierarchy(
                regions=regions, routers_per_region=routers_per_region
            ),
            levels={
                "router": LevelConfig(
                    aggregator=None,
                    storage_bytes=10**8,
                    export=EXPORT_NONE,
                )
            },
            epoch_seconds=epoch_seconds,
        )
        self.hierarchy = self.runtime.hierarchy
        self.fabric = self.runtime.fabric
        self.manager = self.runtime.manager
        self.sites: List[Location] = []
        self.controllers: Dict[str, Controller] = self.runtime.controllers
        for name in self.site_names:
            location = Location(f"cloud/network/{name}")
            controller = self.runtime.attach_controller(location)
            controller.register_actuator(
                Actuator(f"{location.path}/filter", location)
            )
            self.sites.append(location)
        self.generator = TrafficGenerator(
            TrafficConfig(
                sites=tuple(self.site_names),
                flows_per_epoch=flows_per_epoch,
            ),
            seed=seed,
        )
        self.apps = []
        self.trends_app: Optional[NetworkTrendsApp] = None
        self.matrix_app: Optional[TrafficMatrixApp] = None
        self.ddos_app: Optional[DDoSInvestigationApp] = None
        if with_trends:
            self.trends_app = NetworkTrendsApp(
                self.sites, node_budget=node_budget
            )
            self.apps.append(self.trends_app)
        if with_matrix:
            self.matrix_app = TrafficMatrixApp(
                self.sites, fabric=self.fabric, node_budget=node_budget
            )
            self.apps.append(self.matrix_app)
        if with_ddos:
            self.ddos_app = DDoSInvestigationApp(
                self.sites,
                epoch_seconds=epoch_seconds,
                node_budget=node_budget,
                controllers=self.controllers,
                # drilldowns go through the unified query plane: reads
                # are fabric-accounted and feed adaptive replication
                planner=self.runtime.planner,
            )
            self.apps.append(self.ddos_app)
        for app in self.apps:
            app.deploy(self.manager)

    def run(
        self,
        epochs: int = 4,
        attacks: Optional[List[Tuple[int, str]]] = None,
        attack_flows: int = 2000,
    ) -> NetworkOutcome:
        """Replay ``epochs`` traffic epochs.

        ``attacks`` lists ``(epoch index, site name)`` pairs where a
        DDoS is injected.
        """
        attack_set = set(attacks or [])
        for epoch in range(epochs):
            for name, location in zip(self.site_names, self.sites):
                store = self.manager.store_at(location)
                if (epoch, name) in attack_set:
                    records = self.generator.ddos_epoch(
                        name, epoch, attack_flows=attack_flows
                    )
                else:
                    records = self.generator.epoch(name, epoch)
                store.ingest(
                    "flows",
                    [(record, record.first_seen) for record in records],
                    size_bytes=48,
                )
            now = (epoch + 1) * self.epoch_seconds
            # live-view apps read before the epoch is cut
            if self.trends_app is not None:
                self.trends_app.on_epoch(self.manager, now)
            if self.matrix_app is not None:
                self.matrix_app.on_epoch(self.manager, now)
            self.runtime.close_epoch(now)
            if self.ddos_app is not None:
                self.ddos_app.on_epoch(self.manager, now)
        return NetworkOutcome(
            epochs=epochs,
            sites=list(self.site_names),
            findings=(
                list(self.ddos_app.findings) if self.ddos_app else []
            ),
            trend_reports=(
                list(self.trends_app.trend_reports)
                if self.trends_app
                else []
            ),
            matrix_reports=(
                list(self.matrix_app.reports) if self.matrix_app else []
            ),
            mitigation_rules={
                path: [rule.rule_id for rule in controller.rules()]
                for path, controller in self.controllers.items()
                if controller.rules()
            },
            wan_bytes=self.fabric.total_bytes(),
        )

"""Prebuilt end-to-end scenarios.

The examples, the CLI, and downstream experiments all need the same
world-building: a factory with degrading machines wired to stores,
controllers, and applications; or a multi-site network under
monitoring with an optional attack.  These scenario classes build the
worlds once, deterministically, and return structured outcomes —
the library-level form of the two use cases of Section II.
"""

from repro.scenarios.factory import FactoryOutcome, FactoryScenario
from repro.scenarios.network import (
    NetworkOutcome,
    NetworkScenario,
)

__all__ = [
    "FactoryScenario",
    "FactoryOutcome",
    "NetworkScenario",
    "NetworkOutcome",
]

"""The smart-factory scenario (Section II.A) as a reusable harness.

Builds the full Figure 2 stack — degrading machines streaming into a
factory data store, per-machine safety triggers wired to controllers,
and (optionally) the predictive-maintenance and process-mining
applications — then drives it for a configurable number of simulated
hours and reports what happened.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.apps.predictive_maintenance import (
    MaintenanceDecision,
    PredictiveMaintenanceApp,
)
from repro.apps.process_mining import LineEfficiency, ProcessMiningApp
from repro.control.controller import Controller
from repro.control.rules import ControlRule
from repro.datastore.storage import HierarchicalStorage
from repro.datastore.triggers import RawTrigger
from repro.hierarchy.topology import Hierarchy
from repro.runtime.config import EXPORT_NONE, LevelConfig
from repro.runtime.runtime import HierarchyRuntime
from repro.simulation.factory import (
    FactoryWorkload,
    MachineState,
    build_factory,
)
from repro.simulation.sensors import Actuator


@dataclass
class FactoryOutcome:
    """What a factory run produced."""

    hours: float
    machines: int
    failures: List[Tuple[str, float]] = field(default_factory=list)
    maintenance_decisions: List[MaintenanceDecision] = field(
        default_factory=list
    )
    emergency_stops: int = 0
    line_reports: List[LineEfficiency] = field(default_factory=list)
    partitions_stored: int = 0
    stored_bytes: int = 0
    lineage_records: int = 0

    @property
    def failure_rate(self) -> float:
        """Fraction of machines that failed during the run."""
        return len(self.failures) / max(1, self.machines)


class FactoryScenario:
    """A deterministic, configurable smart-factory world."""

    def __init__(
        self,
        lines: int = 2,
        machines_per_line: int = 3,
        seed: int = 17,
        wear_base_per_hour: float = 0.18,
        wear_step_per_machine: float = 0.04,
        with_maintenance: bool = True,
        with_mining: bool = False,
        safety_vibration_threshold: float = 7.5,
        storage_budget_bytes: int = 50_000_000,
        epoch_seconds: float = 600.0,
        step_seconds: float = 30.0,
    ) -> None:
        self.epoch_seconds = epoch_seconds
        self.step_seconds = step_seconds
        self.workload: FactoryWorkload = build_factory(
            lines=lines, machines_per_line=machines_per_line, seed=seed
        )
        for index, machine in enumerate(self.workload.machines):
            machine.wear_rate_per_hour = (
                wear_base_per_hour + wear_step_per_machine * index
            )
        # the factory is a HierarchyRuntime over the plant topology with
        # one store at the factory root (hierarchical re-aggregation);
        # applications install aggregators through the Manager and the
        # per-machine control cycle reads the store directly
        root = self.workload.root
        machine_paths = [
            machine.location.path[len(root.path) + 1:]
            for machine in self.workload.machines
        ]
        self.runtime = HierarchyRuntime(
            Hierarchy.from_site_paths(
                machine_paths,
                root=root.path,
                root_level="factory",
                level_names=["line", "machine"],
            ),
            levels={
                "factory": LevelConfig(
                    aggregator=None,
                    storage=lambda: HierarchicalStorage(
                        storage_budget_bytes
                    ),
                    export=EXPORT_NONE,
                )
            },
            epoch_seconds=epoch_seconds,
        )
        self.manager = self.runtime.manager
        self.store = self.runtime.store_at(root)
        self.controllers: Dict[str, Tuple[Controller, Actuator]] = {}
        self._wire_safety_net(safety_vibration_threshold)
        self.apps = []
        self.maintenance_app: Optional[PredictiveMaintenanceApp] = None
        self.mining_app: Optional[ProcessMiningApp] = None
        if with_maintenance:
            self.maintenance_app = PredictiveMaintenanceApp(
                self.workload, bin_seconds=60.0,
                horizon_seconds=2 * 3600.0,
            )
            self.maintenance_app.deploy(self.manager)
            self.apps.append(self.maintenance_app)
        if with_mining:
            self.mining_app = ProcessMiningApp(
                self.workload, bin_seconds=300.0
            )
            self.mining_app.deploy(self.manager)
            self.apps.append(self.mining_app)

    def _wire_safety_net(self, threshold: float) -> None:
        """The Figure 3a control cycle for every machine."""
        for machine in self.workload.machines:
            controller = self.runtime.attach_controller(machine.location)
            actuator = Actuator(
                f"{machine.machine_id}/drive", machine.location
            )
            controller.register_actuator(actuator)
            controller.install_rule(
                ControlRule(
                    rule_id=f"estop/{machine.machine_id}",
                    command="emergency-stop",
                    target_actuator=actuator.actuator_id,
                    trigger_id=f"vib-extreme/{machine.machine_id}",
                    priority=100,
                    certified=True,
                )
            )
            self.store.install_raw_trigger(
                RawTrigger(
                    trigger_id=f"vib-extreme/{machine.machine_id}",
                    predicate=lambda reading, m=machine: (
                        reading.sensor_id.startswith(m.machine_id)
                        and reading.value > threshold
                    ),
                    cooldown_seconds=600.0,
                )
            )
            self.store.subscribe_triggers(controller.on_trigger)
            self.controllers[machine.machine_id] = (controller, actuator)

    def run(self, hours: float) -> FactoryOutcome:
        """Drive the factory for ``hours`` simulated hours."""
        t, next_epoch = 0.0, self.epoch_seconds
        end = hours * 3600.0
        while t < end:
            t += self.step_seconds
            for machine in self.workload.machines:
                for sensor in machine.sensors:
                    reading = sensor.reading_at(t)
                    self.store.ingest(
                        sensor.sensor_id, reading, t,
                        size_bytes=reading.size_bytes,
                    )
            if t >= next_epoch:
                self.runtime.close_epoch(t)
                for app in self.apps:
                    app.on_epoch(self.manager, t)
                next_epoch += self.epoch_seconds
        outcome = FactoryOutcome(
            hours=hours,
            machines=len(self.workload.machines),
            failures=[
                (machine.machine_id, machine.failures[0])
                for machine in self.workload.machines
                if machine.state is MachineState.FAILED
            ],
            emergency_stops=sum(
                len(actuator.commands)
                for _, actuator in self.controllers.values()
            ),
            partitions_stored=len(self.store.catalog),
            stored_bytes=self.store.catalog.total_bytes(),
            lineage_records=len(self.store.lineage),
        )
        if self.maintenance_app is not None:
            outcome.maintenance_decisions = list(
                self.maintenance_app.decisions
            )
        if self.mining_app is not None:
            outcome.line_reports = list(self.mining_app.line_reports)
        return outcome

"""Links, routing, and transfer accounting over a hierarchy.

The fabric models exactly what the transfer-optimization problem of
Section VII needs: every byte moved between sites is charged to the
links it crosses, transfers take ``latency + bytes/bandwidth`` per hop,
and WAN links (those touching the top levels) are orders of magnitude
slower than intra-site links — which is why shipping raw mega-datasets
is infeasible (Table I, challenge 3) and replication decisions matter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.summary import Location
from repro.errors import PlacementError, TransferError
from repro.faults import FaultPlan
from repro.hierarchy.topology import Hierarchy

#: Default link capacities by the *upper* endpoint's level name.
DEFAULT_BANDWIDTH_BPS: Dict[str, float] = {
    "cloud": 100e6 / 8 * 8,      # WAN uplink: 100 Mbit/s
    "network": 1e9,              # backbone: 1 Gbit/s
    "factory": 1e9,
    "region": 10e9,
    "line": 10e9,
}
_FALLBACK_BANDWIDTH_BPS = 10e9

DEFAULT_LATENCY_S: Dict[str, float] = {
    "cloud": 0.050,   # WAN round to the cloud
    "network": 0.020,
    "factory": 0.020,
    "region": 0.005,
    "line": 0.001,
}
_FALLBACK_LATENCY_S = 0.0005


@dataclass
class Link:
    """A bidirectional parent–child link with bandwidth and latency."""

    upper: Location
    lower: Location
    bandwidth_bps: float
    latency_s: float
    bytes_carried: int = 0
    transfers: int = 0
    #: hop traversals attempted, including ones that failed mid-transfer
    attempts: int = 0
    #: hop traversals refused by the fault plan (drop or outage)
    failures: int = 0
    #: bytes burned by failed transfer attempts; kept out of
    #: ``bytes_carried`` so delivered-volume accounting is fault-free
    wasted_bytes: int = 0

    @property
    def key(self) -> Tuple[str, str]:
        """Canonical (upper, lower) path pair identifying the link."""
        return (self.upper.path, self.lower.path)

    def charge(self, size_bytes: int, bandwidth_factor: float = 1.0) -> float:
        """Account one transfer; returns the per-hop duration.

        ``bandwidth_factor`` in ``(0, 1]`` models fault-plan bandwidth
        degradation: the bytes still arrive, but slower.
        """
        self.bytes_carried += size_bytes
        self.transfers += 1
        return self.latency_s + size_bytes * 8.0 / (
            self.bandwidth_bps * bandwidth_factor
        )


@dataclass(frozen=True)
class TransferRecord:
    """One completed site-to-site transfer."""

    origin: Location
    destination: Location
    size_bytes: int
    started_at: float
    duration: float
    hops: int

    @property
    def completed_at(self) -> float:
        """When the last byte arrived."""
        return self.started_at + self.duration


class NetworkFabric:
    """The network overlaying a hierarchy, with full accounting."""

    def __init__(
        self,
        hierarchy: Hierarchy,
        bandwidth_by_level: Optional[Dict[str, float]] = None,
        latency_by_level: Optional[Dict[str, float]] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.hierarchy = hierarchy
        self.faults = faults
        self._bandwidths = dict(DEFAULT_BANDWIDTH_BPS)
        if bandwidth_by_level:
            self._bandwidths.update(bandwidth_by_level)
        self._latencies = dict(DEFAULT_LATENCY_S)
        if latency_by_level:
            self._latencies.update(latency_by_level)
        self._links: Dict[Tuple[str, str], Link] = {}
        #: links removed by a topology reconfiguration; their historical
        #: byte counters stay in the totals (the bytes really crossed)
        self._retired: List[Link] = []
        for node in hierarchy.nodes():
            for child in node.children:
                link = self._make_link(node, child)
                self._links[link.key] = link
        self.transfers: List[TransferRecord] = []

    def _make_link(self, node, child) -> Link:
        return Link(
            upper=node.location,
            lower=child.location,
            bandwidth_bps=self._bandwidths.get(
                node.level.name, _FALLBACK_BANDWIDTH_BPS
            ),
            latency_s=self._latencies.get(
                node.level.name, _FALLBACK_LATENCY_S
            ),
        )

    def resync(self) -> None:
        """Re-derive the link set after a topology reconfiguration.

        New parent–child pairs get fresh links at the level's default
        (or overridden) bandwidth/latency; links whose pair no longer
        exists are retired — their accumulated counters remain part of
        :meth:`total_bytes` / :meth:`wan_bytes` / :meth:`wasted_bytes`,
        because retiring a link cannot un-spend the bytes it carried.
        """
        current: Dict[Tuple[str, str], Link] = {}
        for node in self.hierarchy.nodes():
            for child in node.children:
                key = (node.location.path, child.location.path)
                link = self._links.get(key)
                if link is None:
                    link = self._make_link(node, child)
                current[key] = link
        for key, link in self._links.items():
            if key not in current:
                self._retired.append(link)
        self._links = current

    def link_between(self, a: Location, b: Location) -> Link:
        """The direct link between a parent and child location."""
        link = self._links.get((a.path, b.path)) or self._links.get(
            (b.path, a.path)
        )
        if link is None:
            raise PlacementError(
                f"no direct link between {a.path!r} and {b.path!r}"
            )
        return link

    def links(self) -> List[Link]:
        """All live links in the fabric."""
        return list(self._links.values())

    def retired_links(self) -> List[Link]:
        """Links removed by reconfiguration, with their history intact."""
        return list(self._retired)

    def _all_links(self) -> List[Link]:
        return list(self._links.values()) + self._retired

    def inject_faults(self, faults: Optional[FaultPlan]) -> None:
        """Install (or clear, with ``None``) the active fault schedule."""
        self.faults = faults

    def transfer(
        self,
        origin: Location,
        destination: Location,
        size_bytes: int,
        at_time: float = 0.0,
    ) -> TransferRecord:
        """Move ``size_bytes`` along the hierarchy route and account it.

        Duration is the sum of per-hop latencies plus per-hop
        serialization delay (store-and-forward).  A zero-hop transfer
        (origin == destination) is free and instantaneous.

        With a :class:`~repro.faults.FaultPlan` installed, each hop is
        consulted in route order; the first faulty hop raises
        :class:`~repro.errors.TransferError`, charging the bytes burned
        so far (this hop and every hop already traversed) to the links'
        ``wasted_bytes`` — never to ``bytes_carried``, which only ever
        counts delivered volume.  Surviving hops may still be delivered
        at degraded bandwidth.
        """
        path = self.hierarchy.path_between(origin, destination)
        traversed: List[Tuple[Link, float]] = []
        for upper, lower in zip(path, path[1:]):
            link = self.link_between(upper.location, lower.location)
            link.attempts += 1
            factor = 1.0
            if self.faults is not None:
                verdict = self.faults.failure(
                    link.upper.path, link.lower.path, at_time
                )
                if verdict is not None:
                    link.failures += 1
                    link.wasted_bytes += size_bytes
                    for earlier, _ in traversed:
                        earlier.wasted_bytes += size_bytes
                    raise TransferError(
                        f"transfer {origin.path!r} -> {destination.path!r} "
                        f"lost on link {link.key} ({verdict})",
                        origin=origin.path,
                        destination=destination.path,
                        link=link.key,
                        reason=verdict,
                        at_time=at_time,
                        size_bytes=size_bytes,
                    )
                factor = self.faults.degradation(
                    link.upper.path, link.lower.path
                )
            traversed.append((link, factor))
        duration = 0.0
        hops = 0
        for link, factor in traversed:
            duration += link.charge(size_bytes, factor)
            hops += 1
        record = TransferRecord(
            origin=origin,
            destination=destination,
            size_bytes=size_bytes if hops else 0,
            started_at=at_time,
            duration=duration,
            hops=hops,
        )
        self.transfers.append(record)
        return record

    def total_bytes(self) -> int:
        """Bytes carried across all links, retired ones included."""
        return sum(link.bytes_carried for link in self._all_links())

    def wan_bytes(self) -> int:
        """Bytes that crossed a link whose upper endpoint is the root.

        This is the paper's scarce resource: traffic into/out of the
        cloud over the wide-area network.
        """
        root_path = self.hierarchy.root.location.path
        return sum(
            link.bytes_carried
            for link in self._all_links()
            if link.upper.path == root_path
        )

    def wasted_bytes(self) -> int:
        """Bytes burned by failed transfer attempts across all links."""
        return sum(link.wasted_bytes for link in self._all_links())

    def wan_wasted_bytes(self) -> int:
        """Failed-attempt bytes on links whose upper endpoint is the root."""
        root_path = self.hierarchy.root.location.path
        return sum(
            link.wasted_bytes
            for link in self._all_links()
            if link.upper.path == root_path
        )

    def attempted_hops(self) -> int:
        """Hop traversals attempted (successful + faulted)."""
        return sum(link.attempts for link in self._all_links())

    def failed_hops(self) -> int:
        """Hop traversals refused by the fault plan."""
        return sum(link.failures for link in self._all_links())

    def reset_accounting(self) -> None:
        """Zero all counters (between experiment phases)."""
        for link in self._all_links():
            link.bytes_carried = 0
            link.transfers = 0
            link.attempts = 0
            link.failures = 0
            link.wasted_bytes = 0
        self.transfers = []

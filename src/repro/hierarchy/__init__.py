"""The physical hierarchy (Figure 1) and the network connecting it.

* :mod:`repro.hierarchy.topology` — trees of locations with per-level
  decision deadlines (machine < 1 s, production line < 1 min, edge
  < 1 week, cloud) and builders for both of the paper's settings.
* :mod:`repro.hierarchy.network` — links with bandwidth and latency,
  routing along the hierarchy, and byte-level transfer accounting; this
  is the resource the paper says the raw sensor flood would exhaust and
  that the replication engine optimizes.
"""

from repro.hierarchy.topology import (
    Hierarchy,
    HierarchyNode,
    LevelSpec,
    network_monitoring_hierarchy,
    smart_factory_hierarchy,
)
from repro.hierarchy.network import Link, NetworkFabric, TransferRecord

__all__ = [
    "HierarchyNode",
    "Hierarchy",
    "LevelSpec",
    "smart_factory_hierarchy",
    "network_monitoring_hierarchy",
    "Link",
    "NetworkFabric",
    "TransferRecord",
]

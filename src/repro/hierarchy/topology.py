"""Hierarchy topologies for both use cases (Figure 1).

A :class:`Hierarchy` is a tree of named locations, each tagged with a
*level* (machine / production line / factory / cloud, or router /
region / network / cloud) and the level's **decision deadline** — the
paper's "decision making at the machine resp. factory level may require
results between 1 second and 1 minute".  The deadline is what the
Figure 3 benchmark compares control-loop latencies against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.summary import Location
from repro.errors import PlacementError

#: Decision deadlines from Figure 1a, in seconds.
MACHINE_DEADLINE = 1.0
LINE_DEADLINE = 60.0
EDGE_DEADLINE = 7 * 24 * 3600.0  # "< 1w"


@dataclass(frozen=True)
class LevelSpec:
    """One level of a hierarchy: its name and decision deadline."""

    name: str
    deadline_seconds: Optional[float]


@dataclass
class HierarchyNode:
    """One site in the hierarchy."""

    location: Location
    level: LevelSpec
    children: List["HierarchyNode"] = field(default_factory=list)
    parent: Optional["HierarchyNode"] = None

    def add_child(self, name: str, level: LevelSpec) -> "HierarchyNode":
        """Create and attach a child node one level down."""
        child = HierarchyNode(
            location=self.location.child(name), level=level, parent=self
        )
        self.children.append(child)
        return child

    def walk(self) -> Iterator["HierarchyNode"]:
        """This node and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def leaves(self) -> List["HierarchyNode"]:
        """All leaf descendants (the data-producing sites)."""
        return [node for node in self.walk() if not node.children]

    def ancestors(self) -> List["HierarchyNode"]:
        """Parent chain from this node's parent up to the root."""
        chain = []
        node = self.parent
        while node is not None:
            chain.append(node)
            node = node.parent
        return chain

    def rebase(self, location: Location) -> Dict[str, str]:
        """Rewrite this subtree's locations under a new base path.

        Returns ``{old_path: new_path}`` for every node touched, so
        callers can re-key stores, labels, and pending queues.
        """
        renames: Dict[str, str] = {}
        stack: List[Tuple["HierarchyNode", Location]] = [(self, location)]
        while stack:
            node, where = stack.pop()
            renames[node.location.path] = where.path
            node.location = where
            for child in node.children:
                stack.append((child, where.child(child.location.parts[-1])))
        return renames


class Hierarchy:
    """A location tree with lookup and path operations."""

    def __init__(self, root: HierarchyNode) -> None:
        self.root = root
        self._by_location: Dict[str, HierarchyNode] = {}
        self.reindex()

    def reindex(self) -> None:
        """Rebuild the location index after structural edits."""
        self._by_location = {
            node.location.path: node for node in self.root.walk()
        }

    def node(self, location: Location) -> HierarchyNode:
        """Find the node at a location."""
        try:
            return self._by_location[location.path]
        except KeyError as exc:
            raise PlacementError(
                f"no hierarchy node at location {location.path!r}"
            ) from exc

    def __contains__(self, location: Location) -> bool:
        return location.path in self._by_location

    def nodes(self) -> List[HierarchyNode]:
        """All nodes, depth-first from the root."""
        return list(self.root.walk())

    def leaves(self) -> List[HierarchyNode]:
        """All data-producing leaf sites."""
        return self.root.leaves()

    def levels(self) -> List[LevelSpec]:
        """The distinct levels present, root-first."""
        seen: List[LevelSpec] = []
        for node in self.root.walk():
            if node.level not in seen:
                seen.append(node.level)
        return seen

    def nodes_at_level(self, level_name: str) -> List[HierarchyNode]:
        """All nodes whose level has the given name."""
        return [n for n in self.root.walk() if n.level.name == level_name]

    # -- structural mutation (the elastic-topology primitives) --------------

    def add_site(
        self, parent: Location, name: str, level: LevelSpec
    ) -> HierarchyNode:
        """Attach a new child site under an existing node and reindex."""
        parent_node = self.node(parent)
        if any(
            child.location.parts[-1] == name
            for child in parent_node.children
        ):
            raise PlacementError(
                f"{parent.path!r} already has a child named {name!r}"
            )
        child = parent_node.add_child(name, level)
        self.reindex()
        return child

    def remove(self, location: Location) -> HierarchyNode:
        """Detach a subtree from its parent and reindex.

        The returned node keeps its children (and their locations) — it
        can be re-attached elsewhere with :meth:`graft`.  Removing the
        root is a :class:`~repro.errors.PlacementError`.
        """
        node = self.node(location)
        if node.parent is None:
            raise PlacementError("cannot remove the hierarchy root")
        node.parent.children.remove(node)
        node.parent = None
        self.reindex()
        return node

    def graft(
        self, node: HierarchyNode, new_parent: Location
    ) -> Dict[str, str]:
        """Attach a detached subtree under a new parent, rewriting paths.

        Every location in the subtree is rebased under the new parent;
        returns ``{old_path: new_path}`` for the whole subtree so
        callers can re-key any state indexed by path.
        """
        if node.parent is not None:
            raise PlacementError(
                f"{node.location.path!r} is still attached; remove it first"
            )
        parent_node = self.node(new_parent)
        name = node.location.parts[-1]
        if any(
            child.location.parts[-1] == name
            for child in parent_node.children
        ):
            raise PlacementError(
                f"{new_parent.path!r} already has a child named {name!r}"
            )
        renames = node.rebase(parent_node.location.child(name))
        node.parent = parent_node
        parent_node.children.append(node)
        self.reindex()
        return renames

    @classmethod
    def from_site_paths(
        cls,
        sites: Sequence[str],
        root: str = "cloud",
        root_level: str = "cloud",
        level_names: Optional[Sequence[str]] = None,
        deadlines: Optional[Sequence[Optional[float]]] = None,
    ) -> "Hierarchy":
        """Grow a root-anchored hierarchy covering every site path.

        ``sites`` are ``/``-separated paths below the root
        (``region1/router1``); shared prefixes share nodes.  Depth ``d``
        (0-based below the root) is labeled ``level_names[d]`` when
        provided — with per-level decision ``deadlines`` parallel to it
        — and ``level{d+1}`` otherwise.  This is the one site-path
        parser behind every Flowstream/runtime topology.
        """
        if not sites:
            raise PlacementError("from_site_paths needs at least one site")
        root_node = HierarchyNode(Location(root), LevelSpec(root_level, None))
        hierarchy = cls(root_node)
        for site in sites:
            parts = [part for part in site.split("/") if part]
            if not parts:
                raise PlacementError(f"empty site path {site!r}")
            if level_names is not None and len(parts) > len(level_names):
                raise PlacementError(
                    f"site {site!r} is {len(parts)} levels deep but only "
                    f"{list(level_names)} are named"
                )
            node = root_node
            for depth, part in enumerate(parts):
                existing = next(
                    (
                        child
                        for child in node.children
                        if child.location.parts[-1] == part
                    ),
                    None,
                )
                if existing is None:
                    name = (
                        level_names[depth]
                        if level_names is not None
                        else f"level{depth + 1}"
                    )
                    deadline = (
                        deadlines[depth]
                        if deadlines is not None and depth < len(deadlines)
                        else None
                    )
                    existing = node.add_child(part, LevelSpec(name, deadline))
                node = existing
        hierarchy.reindex()
        return hierarchy

    def path_between(
        self, origin: Location, destination: Location
    ) -> List[HierarchyNode]:
        """The hierarchy route: up to the common ancestor, then down.

        Returns the full node sequence including both endpoints; the
        number of edges is ``len(path) - 1``.
        """
        a, b = self.node(origin), self.node(destination)
        up: List[HierarchyNode] = [a]
        ancestors_of_b = {id(node) for node in [b] + b.ancestors()}
        while id(up[-1]) not in ancestors_of_b:
            parent = up[-1].parent
            if parent is None:
                raise PlacementError(
                    f"no route between {origin.path!r} and {destination.path!r}"
                )
            up.append(parent)
        meeting = up[-1]
        down: List[HierarchyNode] = []
        node: Optional[HierarchyNode] = b
        while node is not None and id(node) != id(meeting):
            down.append(node)
            node = node.parent
        return up + list(reversed(down))


def smart_factory_hierarchy(
    factories: int = 2,
    lines_per_factory: int = 3,
    machines_per_line: int = 8,
) -> Hierarchy:
    """The Figure 1a topology: cloud → factory → line → machine."""
    cloud = LevelSpec("cloud", None)
    factory = LevelSpec("factory", EDGE_DEADLINE)
    line = LevelSpec("line", LINE_DEADLINE)
    machine = LevelSpec("machine", MACHINE_DEADLINE)
    root = HierarchyNode(Location("hq"), cloud)
    for f in range(factories):
        factory_node = root.add_child(f"factory{f + 1}", factory)
        for l in range(lines_per_factory):
            line_node = factory_node.add_child(f"line{l + 1}", line)
            for m in range(machines_per_line):
                line_node.add_child(f"machine{m + 1}", machine)
    return Hierarchy(root)


def network_monitoring_hierarchy(
    regions: int = 4,
    routers_per_region: int = 4,
) -> Hierarchy:
    """The Figure 1b topology: cloud → network → region → router."""
    cloud = LevelSpec("cloud", None)
    network = LevelSpec("network", EDGE_DEADLINE)
    region = LevelSpec("region", LINE_DEADLINE)
    router = LevelSpec("router", MACHINE_DEADLINE)
    root = HierarchyNode(Location("cloud"), cloud)
    network_node = root.add_child("network", network)
    for r in range(regions):
        region_node = network_node.add_child(f"region{r + 1}", region)
        for router_index in range(routers_per_region):
            region_node.add_child(f"router{router_index + 1}", router)
    return Hierarchy(root)

"""Tiered Flowstream: data stores at every hierarchy level.

The flat :class:`~repro.flowstream.system.Flowstream` ships router
summaries straight to the cloud.  The paper's Figure 2b, however, shows
data stores *between* the edge and the cloud ("further data stores
exist to merge and aggregate data from multiple mega-datasets").  This
variant adds a region tier: router trees merge into per-region stores
first, the region stores compress, and only the compressed regional
summaries cross the WAN.

The interesting measurable consequence (exercised by tests and the
Figure 1 benchmark family): WAN volume drops again relative to the flat
design — the merge at the region tier deduplicates generalized nodes
shared by its routers — at the price of the extra aggregation delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.core.flowtree import FlowtreePrimitive
from repro.core.summary import Location, TimeInterval
from repro.datastore.aggregator import Aggregator
from repro.datastore.storage import RoundRobinStorage
from repro.datastore.store import DataStore
from repro.errors import PlacementError
from repro.flowdb.db import FlowDB
from repro.flowql.executor import FlowQLExecutor, FlowQLResult
from repro.flows.flowkey import FIVE_TUPLE, FeatureSchema, GeneralizationPolicy
from repro.flows.records import FlowRecord
from repro.hierarchy.network import NetworkFabric
from repro.hierarchy.topology import Hierarchy, HierarchyNode, LevelSpec


@dataclass
class TierStats:
    """Per-tier volume accounting."""

    raw_bytes: int = 0
    router_summary_bytes: int = 0
    region_summary_bytes: int = 0


class TieredFlowstream:
    """Router stores → region stores (merge + compress) → cloud FlowDB.

    ``sites`` are ``region/router`` paths; routers sharing the region
    segment share a region store.  ``region_node_budget`` bounds the
    merged regional trees — the knob that trades WAN volume against
    regional fidelity.
    """

    AGGREGATOR = "flowtree"

    def __init__(
        self,
        sites: List[str],
        schema: FeatureSchema = FIVE_TUPLE,
        policy: Optional[GeneralizationPolicy] = None,
        router_node_budget: int = 8192,
        region_node_budget: int = 8192,
        epoch_seconds: float = 60.0,
        merge_node_budget: int = 65536,
    ) -> None:
        if not sites:
            raise PlacementError("TieredFlowstream needs at least one site")
        for site in sites:
            if "/" not in site:
                raise PlacementError(
                    f"site {site!r} must be region/router shaped"
                )
        self.sites = list(sites)
        self.policy = policy or GeneralizationPolicy.default_for(schema)
        self.router_node_budget = router_node_budget
        self.region_node_budget = region_node_budget
        self.epoch_seconds = epoch_seconds
        self.hierarchy = self._build_hierarchy(sites)
        self.fabric = NetworkFabric(self.hierarchy)
        self.db = FlowDB(merge_node_budget=merge_node_budget)
        self.executor = FlowQLExecutor(self.db)
        self.stats = TierStats()
        self._cloud = self.hierarchy.root.location
        self.router_stores: Dict[str, DataStore] = {}
        self.region_stores: Dict[str, DataStore] = {}
        for site in sites:
            region = site.split("/")[0]
            if region not in self.region_stores:
                region_location = Location(f"cloud/{region}")
                region_store = DataStore(
                    region_location, RoundRobinStorage(256 * 1024 * 1024),
                    fabric=self.fabric,
                )
                region_store.install_aggregator(
                    Aggregator(
                        self.AGGREGATOR,
                        FlowtreePrimitive(
                            region_location,
                            self.policy,
                            node_budget=region_node_budget,
                        ),
                    )
                )
                self.region_stores[region] = region_store
            location = Location(f"cloud/{site}")
            store = DataStore(
                location, RoundRobinStorage(256 * 1024 * 1024),
                fabric=self.fabric,
            )
            store.install_aggregator(
                Aggregator(
                    self.AGGREGATOR,
                    FlowtreePrimitive(
                        location, self.policy,
                        node_budget=router_node_budget,
                    ),
                )
            )
            self.router_stores[site] = store

    @staticmethod
    def _build_hierarchy(sites: List[str]) -> Hierarchy:
        root = HierarchyNode(Location("cloud"), LevelSpec("cloud", None))
        hierarchy = Hierarchy(root)
        for site in sites:
            node = root
            for depth, part in enumerate(site.split("/")):
                existing = next(
                    (c for c in node.children if c.location.parts[-1] == part),
                    None,
                )
                if existing is None:
                    level = LevelSpec(
                        "region" if depth == 0 else "router", None
                    )
                    existing = node.add_child(part, level)
                node = existing
        hierarchy.reindex()
        return hierarchy

    # -- data path ------------------------------------------------------------

    def ingest(self, site: str, records: Iterable[FlowRecord]) -> int:
        """Feed router flow exports into the router's store."""
        store = self.router_stores.get(site)
        if store is None:
            raise PlacementError(
                f"unknown site {site!r}; known: {sorted(self.router_stores)}"
            )
        batch = [(record, record.first_seen) for record in records]
        count = store.ingest_batch("flows", batch, size_bytes=48)
        self.stats.raw_bytes += sum(record.bytes for record, _ in batch)
        return count

    def close_epoch(self, now: float) -> int:
        """Roll router trees into regions, then regions into FlowDB.

        Returns the number of regional summaries exported to the cloud.
        """
        # tier 1: routers export into their region store (LAN hop)
        for site, store in self.router_stores.items():
            region = site.split("/")[0]
            region_store = self.region_stores[region]
            aggregator = store.aggregator(self.AGGREGATOR)
            if aggregator.items_this_epoch == 0:
                continue
            self.stats.router_summary_bytes += (
                aggregator.primitive.footprint_bytes()
            )
            store.export_summaries(
                self.AGGREGATOR, region_store, now=now
            )
            aggregator.close_epoch(now, store.storage_pressure())
        # tier 2: regions compress and export to the cloud (WAN hop)
        exported = 0
        for region, region_store in self.region_stores.items():
            partitions = region_store.close_epoch(now)
            for partition in partitions:
                if partition.summary.kind != "flowtree":
                    continue
                outgoing = partition.summary
                if region_store.privacy is not None:
                    # the WAN hop leaves the region's trust domain: the
                    # cloud only ever sees the policy-degraded view
                    outgoing = region_store.privacy.export(
                        partition.aggregator, outgoing
                    )
                self.fabric.transfer(
                    region_store.location, self._cloud,
                    outgoing.size_bytes, now,
                )
                self.stats.region_summary_bytes += outgoing.size_bytes
                self.db.insert(
                    location=region,
                    interval=outgoing.meta.interval,
                    tree=outgoing.payload,
                )
                exported += 1
        return exported

    # -- query path -------------------------------------------------------------

    def query(self, flowql: str) -> FlowQLResult:
        """Answer a FlowQL query from the cloud FlowDB.

        Note the locations indexed in FlowDB are *regions*, matching
        what crossed the WAN.
        """
        return self.executor.execute(flowql)

    def wan_bytes(self) -> int:
        """Bytes that crossed into the cloud."""
        return self.fabric.wan_bytes()

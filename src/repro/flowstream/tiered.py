"""Tiered Flowstream: data stores at every hierarchy level.

The flat :class:`~repro.flowstream.system.Flowstream` ships router
summaries straight to the cloud.  The paper's Figure 2b, however, shows
data stores *between* the edge and the cloud ("further data stores
exist to merge and aggregate data from multiple mega-datasets").  This
variant — the tiered preset of the generic
:class:`~repro.runtime.runtime.HierarchyRuntime` — adds a region tier:
router trees merge into per-region stores first, the region stores
compress, and only the compressed regional summaries cross the WAN.

The interesting measurable consequence (exercised by tests and the
Figure 1 benchmark family): WAN volume drops again relative to the flat
design — the merge at the region tier deduplicates generalized nodes
shared by its routers — at the price of the extra aggregation delay.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.datastore.store import DataStore
from repro.errors import PlacementError
from repro.flows.flowkey import FIVE_TUPLE, FeatureSchema, GeneralizationPolicy
from repro.flows.records import FlowRecord
from repro.flowql.executor import FlowQLResult
from repro.runtime.presets import tiered_runtime


class TieredFlowstream:
    """Router stores → region stores (merge + compress) → cloud FlowDB.

    ``sites`` are ``region/router`` paths; routers sharing the region
    segment share a region store.  ``region_node_budget`` bounds the
    merged regional trees — the knob that trades WAN volume against
    regional fidelity.
    """

    AGGREGATOR = "flowtree"

    def __init__(
        self,
        sites: List[str],
        schema: FeatureSchema = FIVE_TUPLE,
        policy: Optional[GeneralizationPolicy] = None,
        router_node_budget: int = 8192,
        region_node_budget: Optional[int] = 8192,
        epoch_seconds: float = 60.0,
        merge_node_budget: int = 65536,
    ) -> None:
        if not sites:
            raise PlacementError("TieredFlowstream needs at least one site")
        for site in sites:
            if "/" not in site:
                raise PlacementError(
                    f"site {site!r} must be region/router shaped"
                )
        self.runtime = tiered_runtime(
            sites,
            schema=schema,
            policy=policy,
            router_node_budget=router_node_budget,
            region_node_budget=region_node_budget,
            epoch_seconds=epoch_seconds,
            merge_node_budget=merge_node_budget,
        )
        self.sites = list(sites)
        self.policy = self.runtime.policy
        self.router_node_budget = router_node_budget
        self.region_node_budget = region_node_budget
        self.epoch_seconds = epoch_seconds
        self.hierarchy = self.runtime.hierarchy
        self.fabric = self.runtime.fabric
        self.db = self.runtime.db
        self.executor = self.runtime.executor
        self.stats = self.runtime.stats
        self.router_stores: Dict[str, DataStore] = (
            self.runtime.stores_at_level("router")
        )
        self.region_stores: Dict[str, DataStore] = (
            self.runtime.stores_at_level("region")
        )

    # -- data path ------------------------------------------------------------

    def ingest(self, site: str, records: Iterable[FlowRecord]) -> int:
        """Feed router flow exports into the router's store."""
        return self.runtime.ingest(site, records)

    def close_epoch(self, now: float) -> int:
        """Roll router trees into regions, then regions into FlowDB.

        Returns the number of regional summaries exported to the cloud.
        The WAN hop applies each region store's privacy guard (if any):
        the cloud only ever sees the policy-degraded view.
        """
        return self.runtime.close_epoch(now)

    # -- query path -------------------------------------------------------------

    def query(self, flowql: str) -> FlowQLResult:
        """Answer a FlowQL query from the cloud FlowDB.

        Note the locations indexed in FlowDB are *regions*, matching
        what crossed the WAN.
        """
        return self.runtime.query(flowql)

    def wan_bytes(self) -> int:
        """Bytes that crossed into the cloud."""
        return self.runtime.wan_bytes()

"""The Flowstream system: wiring routers to FlowQL (Figure 5).

:class:`Flowstream` assembles the full path out of the library's parts:

1. one :class:`~repro.datastore.store.DataStore` per router site, with a
   Flowtree aggregator (steps 1-2 of the figure);
2. an export step that ships each epoch's summary over the simulated
   WAN — transfer volume is accounted, which is how the benchmarks show
   the summary/raw reduction factor — into
3. a :class:`~repro.flowdb.db.FlowDB` (step 4), queried through
4. a :class:`~repro.flowql.executor.FlowQLExecutor` (step 5).

Sites are addressed by their short names (``region1/router1``) in both
:meth:`ingest` and FlowQL ``AT`` clauses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.core.flowtree import FlowtreePrimitive
from repro.core.summary import Location, TimeInterval
from repro.datastore.aggregator import Aggregator
from repro.datastore.storage import RoundRobinStorage, StorageStrategy
from repro.datastore.store import DataStore
from repro.errors import PlacementError
from repro.flowdb.db import FlowDB
from repro.flowql.executor import FlowQLExecutor, FlowQLResult
from repro.flows.flowkey import FIVE_TUPLE, FeatureSchema, GeneralizationPolicy
from repro.flows.records import FlowRecord
from repro.hierarchy.network import NetworkFabric
from repro.hierarchy.topology import Hierarchy, HierarchyNode, LevelSpec


@dataclass
class FlowstreamStats:
    """Volume accounting across the whole system."""

    raw_bytes_ingested: int = 0
    raw_records_ingested: int = 0
    summary_bytes_exported: int = 0
    epochs_closed: int = 0

    @property
    def reduction_factor(self) -> float:
        """Raw traffic volume over exported summary volume."""
        if self.summary_bytes_exported == 0:
            return float("inf") if self.raw_bytes_ingested else 1.0
        return self.raw_bytes_ingested / self.summary_bytes_exported


class Flowstream:
    """Routers → data stores → Flowtrees → FlowDB → FlowQL."""

    AGGREGATOR = "flowtree"

    def __init__(
        self,
        sites: List[str],
        schema: FeatureSchema = FIVE_TUPLE,
        policy: Optional[GeneralizationPolicy] = None,
        node_budget: int = 8192,
        epoch_seconds: float = 60.0,
        store_budget_bytes: int = 64 * 1024 * 1024,
        merge_node_budget: int = 65536,
    ) -> None:
        if not sites:
            raise PlacementError("Flowstream needs at least one site")
        self.sites = list(sites)
        self.policy = policy or GeneralizationPolicy.default_for(schema)
        self.node_budget = node_budget
        self.epoch_seconds = epoch_seconds
        self.hierarchy = self._build_hierarchy(sites)
        self.fabric = NetworkFabric(self.hierarchy)
        self.db = FlowDB(merge_node_budget=merge_node_budget)
        self.executor = FlowQLExecutor(self.db)
        self.stats = FlowstreamStats()
        self.stores: Dict[str, DataStore] = {}
        self._cloud = self.hierarchy.root.location
        for site in sites:
            location = Location(f"cloud/{site}")
            store = DataStore(
                location,
                RoundRobinStorage(store_budget_bytes),
                fabric=self.fabric,
            )
            store.install_aggregator(
                Aggregator(
                    self.AGGREGATOR,
                    FlowtreePrimitive(
                        location, self.policy, node_budget=node_budget
                    ),
                )
            )
            self.stores[site] = store

    @staticmethod
    def _build_hierarchy(sites: List[str]) -> Hierarchy:
        """Grow a cloud-rooted hierarchy covering every site path."""
        root = HierarchyNode(Location("cloud"), LevelSpec("cloud", None))
        hierarchy = Hierarchy(root)
        for site in sites:
            node = root
            for depth, part in enumerate(site.split("/")):
                existing = next(
                    (c for c in node.children if c.location.parts[-1] == part),
                    None,
                )
                if existing is None:
                    level = LevelSpec(f"level{depth + 1}", None)
                    existing = node.add_child(part, level)
                node = existing
        hierarchy.reindex()
        return hierarchy

    # -- data path ------------------------------------------------------------

    def store_for(self, site: str) -> DataStore:
        """The data store of one site."""
        try:
            return self.stores[site]
        except KeyError as exc:
            raise PlacementError(
                f"unknown site {site!r}; known: {sorted(self.stores)}"
            ) from exc

    def ingest(self, site: str, records: Iterable[FlowRecord]) -> int:
        """Feed router flow exports into the site's data store (step 1)."""
        store = self.store_for(site)
        batch = [(record, record.first_seen) for record in records]
        count = store.ingest_batch("flows", batch, size_bytes=48)
        self.stats.raw_bytes_ingested += sum(
            record.bytes for record, _ in batch
        )
        self.stats.raw_records_ingested += count
        return count

    def close_epoch(self, now: float) -> int:
        """Cut summaries everywhere and export them to FlowDB (steps 2-4).

        Returns the number of summaries exported.  Export volume is
        charged to the WAN path from each site to the cloud.
        """
        exported = 0
        for site, store in self.stores.items():
            partitions = store.close_epoch(now)
            for partition in partitions:
                if partition.summary.kind != "flowtree":
                    continue
                self.fabric.transfer(
                    store.location,
                    self._cloud,
                    partition.summary.size_bytes,
                    now,
                )
                self.stats.summary_bytes_exported += (
                    partition.summary.size_bytes
                )
                tree = partition.summary.payload
                self.db.insert(
                    location=site,
                    interval=partition.summary.meta.interval,
                    tree=tree,
                )
                exported += 1
        self.stats.epochs_closed += 1
        return exported

    # -- query path -------------------------------------------------------------

    def query(self, flowql: str) -> FlowQLResult:
        """Answer a FlowQL query from FlowDB (step 5)."""
        return self.executor.execute(flowql)

    def wan_summary_bytes(self) -> int:
        """Bytes of summaries that crossed into the cloud."""
        return self.fabric.wan_bytes()

"""The Flowstream system: wiring routers to FlowQL (Figure 5).

:class:`Flowstream` is the *flat* preset of the generic
:class:`~repro.runtime.runtime.HierarchyRuntime` — one
:class:`~repro.datastore.store.DataStore` per router site with a
Flowtree aggregator (steps 1-2 of the figure), whose epoch summaries
ship over the simulated WAN — transfer volume is accounted, which is
how the benchmarks show the summary/raw reduction factor — into a
:class:`~repro.flowdb.db.FlowDB` (step 4), queried through a
:class:`~repro.flowql.executor.FlowQLExecutor` (step 5).

Sites are addressed by their short names (``region1/router1``) in both
:meth:`ingest` and FlowQL ``AT`` clauses.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.datastore.store import DataStore
from repro.errors import PlacementError
from repro.flows.flowkey import FIVE_TUPLE, FeatureSchema, GeneralizationPolicy
from repro.flows.records import FlowRecord
from repro.flowql.executor import FlowQLResult
from repro.runtime.presets import flat_runtime


class Flowstream:
    """Routers → data stores → Flowtrees → FlowDB → FlowQL."""

    AGGREGATOR = "flowtree"

    def __init__(
        self,
        sites: List[str],
        schema: FeatureSchema = FIVE_TUPLE,
        policy: Optional[GeneralizationPolicy] = None,
        node_budget: int = 8192,
        epoch_seconds: float = 60.0,
        store_budget_bytes: int = 64 * 1024 * 1024,
        merge_node_budget: int = 65536,
    ) -> None:
        if not sites:
            raise PlacementError("Flowstream needs at least one site")
        self.runtime = flat_runtime(
            sites,
            schema=schema,
            policy=policy,
            node_budget=node_budget,
            epoch_seconds=epoch_seconds,
            store_budget_bytes=store_budget_bytes,
            merge_node_budget=merge_node_budget,
        )
        self.sites = list(sites)
        self.policy = self.runtime.policy
        self.node_budget = node_budget
        self.epoch_seconds = epoch_seconds
        self.hierarchy = self.runtime.hierarchy
        self.fabric = self.runtime.fabric
        self.db = self.runtime.db
        self.executor = self.runtime.executor
        self.stats = self.runtime.stats
        self.stores: Dict[str, DataStore] = {
            site: self.runtime.store_for(site) for site in dict.fromkeys(sites)
        }

    # -- data path ------------------------------------------------------------

    def store_for(self, site: str):
        """The data store of one site."""
        return self.runtime.store_for(site)

    def ingest(self, site: str, records: Iterable[FlowRecord]) -> int:
        """Feed router flow exports into the site's data store (step 1)."""
        return self.runtime.ingest(site, records)

    def close_epoch(self, now: float) -> int:
        """Cut summaries everywhere and export them to FlowDB (steps 2-4).

        Returns the number of summaries exported.  Export volume is
        charged to the WAN path from each site to the cloud.
        """
        return self.runtime.close_epoch(now)

    # -- query path -------------------------------------------------------------

    def query(self, flowql: str) -> FlowQLResult:
        """Answer a FlowQL query from FlowDB (step 5)."""
        return self.runtime.query(flowql)

    def wan_summary_bytes(self) -> int:
        """Bytes of summaries that crossed into the cloud."""
        return self.runtime.wan_bytes()

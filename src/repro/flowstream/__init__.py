"""Flowstream: the end-to-end Figure 5 system.

Router flow exports enter per-site data stores (1), Flowtree
aggregators summarize them (2), epoch summaries are exported across the
(accounted) network into FlowDB (3), which merges and indexes them (4)
and answers FlowQL queries (5).
"""

from repro.flowstream.system import Flowstream
from repro.flowstream.tiered import TieredFlowstream

__all__ = ["Flowstream", "TieredFlowstream"]

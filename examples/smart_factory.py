#!/usr/bin/env python3
"""Smart factory (Section II.A): the full architecture on one factory.

Wires the Figure 2 building blocks end to end:

* machines with degrading mechanics stream vibration/temperature into a
  factory data store (Data Store: collect & aggregate);
* a raw trigger guards each machine: extreme vibration trips the
  controller's emergency-stop rule within the machine deadline
  (Controller: the fast control cycle of Figure 3a);
* the predictive-maintenance application fits trends over epoch
  summaries and schedules maintenance before failures (Application +
  Analytics: the adaptive cycle);
* process mining reviews per-line efficiency from the same summaries.

A control run without the application shows the win: machines that fail
versus machines that get maintained in time.

Run:  python examples/smart_factory.py
"""

from repro.apps.predictive_maintenance import PredictiveMaintenanceApp
from repro.apps.process_mining import ProcessMiningApp
from repro.control.controller import Controller
from repro.control.manager import Manager
from repro.control.rules import ControlRule
from repro.datastore.storage import HierarchicalStorage
from repro.datastore.store import DataStore
from repro.datastore.triggers import RawTrigger
from repro.simulation.factory import MachineState, build_factory
from repro.simulation.sensors import Actuator

SIM_HOURS = 6
STEP_SECONDS = 30.0
EPOCH_SECONDS = 600.0


def build_world(seed: int):
    workload = build_factory(lines=2, machines_per_line=3, seed=seed)
    for index, machine in enumerate(workload.machines):
        machine.wear_rate_per_hour = 0.18 + 0.04 * index  # fail in hours
    manager = Manager()
    store = DataStore(workload.root, HierarchicalStorage(50_000_000))
    manager.register_store(store)
    return workload, manager, store


def wire_safety_net(workload, store):
    """The Figure 3a control cycle: trigger -> controller -> actuator."""
    controllers = []
    for machine in workload.machines:
        controller = Controller(machine.location)
        actuator = Actuator(f"{machine.machine_id}/drive", machine.location)
        controller.register_actuator(actuator)
        controller.install_rule(
            ControlRule(
                rule_id=f"estop/{machine.machine_id}",
                command="emergency-stop",
                target_actuator=actuator.actuator_id,
                trigger_id=f"vib-extreme/{machine.machine_id}",
                priority=100,
                certified=True,
            )
        )
        store.install_raw_trigger(
            RawTrigger(
                trigger_id=f"vib-extreme/{machine.machine_id}",
                predicate=lambda reading, m=machine: (
                    reading.sensor_id.startswith(m.machine_id)
                    and reading.value > 7.5
                ),
                cooldown_seconds=600.0,
            )
        )
        store.subscribe_triggers(controller.on_trigger)
        controllers.append((controller, actuator))
    return controllers


def run(with_apps: bool, seed: int = 17):
    workload, manager, store = build_world(seed)
    controllers = wire_safety_net(workload, store)
    apps = []
    if with_apps:
        maintenance = PredictiveMaintenanceApp(
            workload, bin_seconds=60.0, horizon_seconds=2 * 3600.0
        )
        mining = ProcessMiningApp(workload, bin_seconds=300.0)
        maintenance.deploy(manager)
        mining.deploy(manager)
        apps = [maintenance, mining]

    t, next_epoch = 0.0, EPOCH_SECONDS
    while t < SIM_HOURS * 3600.0:
        t += STEP_SECONDS
        for machine in workload.machines:
            for sensor in machine.sensors:
                reading = sensor.reading_at(t)
                store.ingest(sensor.sensor_id, reading, t,
                             size_bytes=reading.size_bytes)
        if t >= next_epoch:
            manager.close_epochs(t)
            for app in apps:
                app.on_epoch(manager, t)
            next_epoch += EPOCH_SECONDS
    return workload, apps, controllers, store


def main() -> None:
    print("== Smart factory: 6 simulated hours, 6 degrading machines ==\n")

    baseline, _, base_controllers, _ = run(with_apps=False)
    failed = [m for m in baseline.machines if m.state is MachineState.FAILED]
    estops = sum(len(a.commands) for _, a in base_controllers)
    print("-- without applications (safety net only) --")
    print(f"  machines failed      : {len(failed)}/{len(baseline.machines)}")
    print(f"  emergency stops fired: {estops}")
    for machine in failed:
        print(f"    {machine.machine_id} failed at "
              f"t={machine.failures[0]/3600:.1f} h")

    print("\n-- with predictive maintenance + process mining --")
    workload, apps, controllers, store = run(with_apps=True)
    maintenance, mining = apps
    failed = [m for m in workload.machines if m.state is MachineState.FAILED]
    print(f"  machines failed      : {len(failed)}/{len(workload.machines)}")
    print(f"  maintenance scheduled: {len(maintenance.decisions)}")
    for decision in maintenance.decisions[:6]:
        print(
            f"    {decision.machine_id} at t={decision.decided_at/3600:.1f} h"
            f" (predicted failure in {decision.predicted_failure_in/60:.0f}"
            " min)"
        )
    if mining.line_reports:
        latest = mining.line_reports[-1]
        print(f"  process mining       : line {latest.line!r} bottleneck is "
              f"{latest.worst_machine} (health {latest.worst_health:.2f})")
    print(f"  partitions stored    : {len(store.catalog)} "
          f"({store.catalog.total_bytes():,} B)")
    print(f"  lineage records      : {len(store.lineage)}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: Flowtrees, Flowstream, and FlowQL in five minutes.

Builds the Figure 5 system over two simulated router sites, feeds three
epochs of Zipf traffic through it, and asks the kinds of questions the
paper says must be answerable without having been planned for.

Run:  python examples/quickstart.py
"""

from repro import Flowstream, TrafficConfig, TrafficGenerator
from repro.flows.flowkey import FIVE_TUPLE, GeneralizationPolicy
from repro.flows.records import Score
from repro.flows.tree import Flowtree


def flowtree_basics() -> None:
    """The computing primitive on its own: ingest, query, merge, diff."""
    print("== Flowtree basics ==")
    policy = GeneralizationPolicy.default_for(FIVE_TUPLE)
    morning = Flowtree(policy, node_budget=4096)
    evening = Flowtree(policy, node_budget=4096)

    web = FIVE_TUPLE.key(
        proto="tcp", src_ip="203.0.113.7", dst_ip="10.0.0.5",
        src_port=44123, dst_port=443,
    )
    dns = FIVE_TUPLE.key(
        proto="udp", src_ip="198.51.100.9", dst_ip="10.0.0.53",
        src_port=53535, dst_port=53,
    )
    morning.add(web, Score(packets=120, bytes=150_000, flows=1))
    morning.add(dns, Score(packets=2, bytes=400, flows=1))
    evening.add(web, Score(packets=500, bytes=800_000, flows=1))

    print(f"  morning web traffic: {morning.query(web).bytes:,} B")
    merged = Flowtree.merged(morning, evening)
    print(f"  whole day web traffic: {merged.query(web).bytes:,} B")
    growth = evening.diff(morning)
    print(f"  evening-vs-morning delta: {growth.query(web).bytes:,} B")
    prefix = web.generalize("src_ip", 8)
    print(f"  everything from 203/8: {merged.query(prefix).bytes:,} B")
    print()


def flowstream_tour() -> None:
    """The full system: routers -> data stores -> FlowDB -> FlowQL."""
    print("== Flowstream ==")
    sites = ["region1/router1", "region2/router1"]
    system = Flowstream(sites=sites, node_budget=4096)
    generator = TrafficGenerator(
        TrafficConfig(sites=tuple(sites), flows_per_epoch=2000), seed=42
    )

    for epoch in range(3):
        for site in sites:
            system.ingest(site, generator.epoch(site, epoch))
        system.close_epoch((epoch + 1) * 60.0)

    print(f"  raw traffic observed : {system.stats.raw_bytes:,} B")
    print(f"  summaries exported   : {system.stats.exported_bytes:,} B")
    print(f"  reduction factor     : {system.stats.reduction_factor:,.0f}x")
    print()

    queries = [
        ("top flows across both sites",
         "SELECT TOPK(3) FROM ALL BY bytes"),
        ("service mix (bytes per destination port)",
         "SELECT GROUPBY(dst_port, 16) FROM ALL BY bytes"),
        ("traffic from one prefix, one site, one epoch",
         "SELECT QUERY FROM TIME(0, 60) AT region1/router1 "
         "WHERE src_ip = 23.0.0.0/8"),
        ("what changed between epoch 2 and epoch 1",
         "SELECT TOPK(3) FROM TIME(60, 120) VS TIME(0, 60) BY bytes"),
        ("hierarchical heavy hitters (2% of all traffic)",
         "SELECT HHH(0.02) FROM ALL BY bytes"),
    ]
    for label, text in queries:
        result = system.query(text)
        print(f"  {label}:")
        print(f"    {text}")
        if result.scalar is not None:
            print(f"    -> {result.scalar}")
        else:
            for row in result.rows[:3]:
                print(f"    -> {row[0]}  bytes={row[2]:,}")
        print()


if __name__ == "__main__":
    flowtree_basics()
    flowstream_tour()

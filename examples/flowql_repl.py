#!/usr/bin/env python3
"""An interactive FlowQL shell over a pre-loaded Flowstream.

Loads four sites x four epochs of synthetic traffic (with a DDoS in the
last epoch at region2) and drops into a read-eval-print loop.  Useful
for exploring the query language; run with ``--demo`` to execute a
scripted session instead of reading stdin.

Run:  python examples/flowql_repl.py [--demo]

Example queries to try::

    SELECT TOTAL FROM ALL
    SELECT TOPK(10) FROM ALL BY bytes
    SELECT GROUPBY(dst_port, 16) FROM ALL BY packets
    SELECT GROUPBY(src_ip, 8) FROM TIME(180, 240) AT region2/router1
    SELECT TOPK(5) FROM TIME(180, 240) VS TIME(120, 180) BY bytes
    SELECT HHH(0.05) FROM ALL
    SELECT QUERY FROM ALL WHERE dst_port = 443 AND src_ip = 23.0.0.0/8
"""

import sys

from repro.errors import ReproError
from repro.flowstream.system import Flowstream
from repro.simulation.traffic import TrafficConfig, TrafficGenerator

SITES = (
    "region1/router1",
    "region2/router1",
    "region3/router1",
    "region4/router1",
)

DEMO_QUERIES = [
    "SELECT TOTAL FROM ALL",
    "SELECT TOPK(5) FROM ALL BY bytes",
    "SELECT GROUPBY(dst_port, 16) FROM ALL BY bytes",
    "SELECT GROUPBY(dst_ip, 32) FROM TIME(180, 240) VS TIME(120, 180) "
    "AT region2/router1 BY bytes",
    "SELECT HHH(0.05) FROM ALL BY bytes",
    "SELECT QUERY FROM ALL WHERE src_ip = 23.0.0.0/8 AND dst_port = 443",
]


def load_system() -> Flowstream:
    print("loading 4 sites x 4 epochs (DDoS at region2 in epoch 3) ...")
    system = Flowstream(sites=list(SITES), node_budget=4096)
    generator = TrafficGenerator(
        TrafficConfig(sites=SITES, flows_per_epoch=1500), seed=77
    )
    for epoch in range(4):
        for site in SITES:
            if epoch == 3 and site == "region2/router1":
                records = generator.ddos_epoch(site, epoch,
                                               attack_flows=1500)
            else:
                records = generator.epoch(site, epoch)
            system.ingest(site, records)
        system.close_epoch((epoch + 1) * 60.0)
    stats = system.db.stats()
    print(f"ready: {stats['entries']} summaries, "
          f"{stats['total_nodes']:,} tree nodes, sites: "
          f"{', '.join(system.db.locations())}\n")
    return system


def run_query(system: Flowstream, text: str) -> None:
    try:
        result = system.query(text)
    except ReproError as error:
        print(f"  error: {error}")
        return
    if result.scalar is not None:
        print(f"  {result.scalar}")
        return
    print(f"  {'flow':<90}{'packets':>10}{'bytes':>12}{'flows':>7}")
    for row in result.rows[:15]:
        print(f"  {row[0]:<90}{row[1]:>10,}{row[2]:>12,}{row[3]:>7,}")
    if len(result.rows) > 15:
        print(f"  ... {len(result.rows) - 15} more rows")


def main() -> None:
    system = load_system()
    if "--demo" in sys.argv:
        for text in DEMO_QUERIES:
            print(f"flowql> {text}")
            run_query(system, text)
            print()
        return
    print("FlowQL shell — 'help' shows examples, 'quit' exits.")
    while True:
        try:
            line = input("flowql> ").strip()
        except (EOFError, KeyboardInterrupt):
            print()
            break
        if not line:
            continue
        if line.lower() in ("quit", "exit"):
            break
        if line.lower() == "help":
            print(__doc__)
            continue
        run_query(system, line)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Predictive maintenance over standing queries (Section II.A).

The smart-factory scenario, rebuilt on ``SUBSCRIBE``: instead of
re-issuing a drilldown per machine per epoch (the polling loop
``repro.apps.predictive_maintenance`` runs), the maintenance watcher
registers one *standing* FlowQL query per machine.  The planner
delta-maintains each result at every epoch close and pushes a typed
:class:`~repro.query.subscriptions.SubscriptionUpdate` into the
watcher's callback — same answers, one incremental merge instead of a
whole-window re-read.

Per update the watcher:

* differences consecutive ``TOTAL`` snapshots into the machine's
  per-epoch vibration energy (bytes stand in for accelerometer RMS);
* feeds an :class:`~repro.analytics.inference.EwmaAnomalyDetector`
  (a spike against the machine's own baseline = investigate now);
* fits a :class:`~repro.analytics.inference.LinearTrend` over recent
  epochs and asks :func:`~repro.analytics.inference.time_to_threshold`
  when the wear trend crosses the failure line — scheduling service
  *before* the deadline instead of after the breakdown.

Run:  python examples/standing_maintenance.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analytics.inference import (
    EwmaAnomalyDetector,
    LinearTrend,
    time_to_threshold,
)
from repro.client import FlowQLClient
from repro.runtime.presets import factory_4level_runtime
from repro.simulation.traffic import TrafficConfig, TrafficGenerator

EPOCHS = 12
BASE_FLOWS = 40
#: extra flows per epoch for the degrading machine (its wear rate)
WEAR_PER_EPOCH = 14
DEGRADING = "factory1/line1/machine2"
#: per-epoch energy above this means imminent failure
FAILURE_THRESHOLD_BYTES = 1_400_000
#: schedule service when failure is predicted within this many epochs
LEAD_EPOCHS = 4
TREND_WINDOW = 6


class MachineWatch:
    """One machine's maintenance state, fed by its subscription."""

    def __init__(self, site: str, epoch_seconds: float) -> None:
        self.site = site
        self.epoch_seconds = epoch_seconds
        self.detector = EwmaAnomalyDetector(
            alpha=0.3, z_threshold=3.0, warmup=3
        )
        self.history = []  # (epoch_time, per-epoch energy)
        self.last_total = 0
        self.scheduled_at = None

    def on_update(self, update) -> None:
        total = update.result.scalar.bytes
        energy = total - self.last_total
        self.last_total = total
        self.history.append((update.epoch, float(energy)))
        spiking = self.detector.observe(float(energy), update.epoch)
        line = (
            f"  epoch {update.epoch:>5g}  {self.site}: "
            f"energy={energy:>9,} ({update.mode})"
        )
        if spiking:
            line += "  ANOMALY"
        due = self.failure_eta()
        if (
            self.scheduled_at is None
            and due is not None
            and due <= LEAD_EPOCHS * self.epoch_seconds
        ):
            self.scheduled_at = update.epoch
            line += (
                f"  -> maintenance scheduled (failure in "
                f"~{due / self.epoch_seconds:.1f} epochs)"
            )
        print(line)

    def failure_eta(self):
        """Seconds until the wear trend crosses the failure line."""
        if len(self.history) < 3:
            return None
        recent = self.history[-TREND_WINDOW:]
        trend = LinearTrend.fit(recent)
        return time_to_threshold(
            trend, recent[-1][0], FAILURE_THRESHOLD_BYTES
        )


def main() -> int:
    runtime = factory_4level_runtime(retain_partitions=True)
    sites = runtime.ingest_sites()
    client = FlowQLClient(runtime=runtime, client_id="maintenance")

    watches = {}
    for site in sites:
        watch = MachineWatch(site, runtime.epoch_seconds)
        client.subscribe(
            f"SUBSCRIBE SELECT TOTAL FROM ALL AT {site} BY bytes",
            on_update=watch.on_update,
        )
        watches[site] = watch
    print(
        f"{len(watches)} machines under standing maintenance queries; "
        f"{DEGRADING} is wearing out"
    )

    for epoch in range(EPOCHS):
        for site in sites:
            flows = BASE_FLOWS
            if site == DEGRADING:
                flows += WEAR_PER_EPOCH * epoch
            generator = TrafficGenerator(
                TrafficConfig(sites=(site,), flows_per_epoch=flows),
                seed=sum(ord(c) for c in site) + epoch,
            )
            runtime.ingest(site, generator.epoch(site, epoch))
        runtime.close_epoch((epoch + 1) * runtime.epoch_seconds)

    registry = runtime.planner.subscriptions
    print(
        f"\nregistry: {registry.updates_published} updates "
        f"({registry.delta_refreshes} delta, {registry.rebuilds} "
        f"rebuilds), {registry.shipped_bytes_total:,} B shipped"
    )
    scheduled = [w for w in watches.values() if w.scheduled_at is not None]
    healthy = [w for w in watches.values() if w.scheduled_at is None]
    print(
        f"maintenance: {len(scheduled)} machine(s) scheduled "
        f"({', '.join(w.site for w in scheduled) or 'none'}), "
        f"{len(healthy)} healthy"
    )
    if not any(w.site == DEGRADING for w in scheduled):
        print("expected the degrading machine to be scheduled!")
        return 1
    if len(scheduled) != 1:
        print("expected exactly one machine to need service!")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

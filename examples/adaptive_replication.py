#!/usr/bin/env python3
"""Adaptive replication (Section VII): ski rental on query traces.

Part 1 replays a synthetic enterprise query trace (heavy-tailed
per-partition access runs — the structure the paper's SAP trace is said
to have) under every policy the paper discusses, reporting total
network cost against the clairvoyant offline optimum.

Part 2 runs the live Figure 6 loop between two data stores: repeat
remote queries pay WAN cost until the break-even rule replicates the
partition, after which they are served locally for free.

Run:  python examples/adaptive_replication.py
"""

from repro.core.flowtree import FlowtreePrimitive
from repro.core.primitive import QueryRequest
from repro.core.summary import Location
from repro.datastore.aggregator import Aggregator
from repro.datastore.storage import RoundRobinStorage
from repro.datastore.store import DataStore
from repro.flows.flowkey import FIVE_TUPLE, GeneralizationPolicy
from repro.hierarchy.network import NetworkFabric
from repro.hierarchy.topology import network_monitoring_hierarchy
from repro.replication.engine import (
    AdaptiveReplicationEngine,
    offline_optimal_cost,
    simulate_policy_on_trace,
)
from repro.replication.ski_rental import BreakEvenPolicy, default_policies
from repro.simulation.querytrace import QueryTraceConfig, QueryTraceGenerator
from repro.simulation.traffic import TrafficConfig, TrafficGenerator

PARTITION_BYTES = 10_000_000


def policy_shootout() -> None:
    print("== Part 1: policy shootout on a synthetic enterprise trace ==\n")
    for distribution, param in (("pareto", 1.3), ("lognormal", 1.0)):
        config = QueryTraceConfig(
            partitions=400,
            partition_bytes=PARTITION_BYTES,
            mean_result_bytes=1_000_000,
            run_length_distribution=distribution,
            run_length_param=param,
        )
        trace = QueryTraceGenerator(config, seed=3).trace()
        optimal = offline_optimal_cost(trace, PARTITION_BYTES)
        print(f"-- {distribution} run lengths "
              f"({len(trace)} accesses, OPT = {optimal/1e6:.0f} MB) --")
        print(f"  {'policy':<22}{'network':>12}{'vs OPT':>9}"
              f"{'replications':>14}")
        for policy in default_policies(seed=1):
            costs = simulate_policy_on_trace(trace, policy, PARTITION_BYTES)
            print(
                f"  {costs.policy:<22}"
                f"{costs.total_bytes/1e6:>10.0f}MB"
                f"{costs.competitive_ratio(optimal):>9.3f}"
                f"{costs.replications:>14}"
            )
        print()


def live_engine_demo() -> None:
    print("== Part 2: the live Figure 6 loop between two data stores ==\n")
    hierarchy = network_monitoring_hierarchy(regions=2, routers_per_region=1)
    fabric = NetworkFabric(hierarchy)
    policy = GeneralizationPolicy.default_for(FIVE_TUPLE)
    producer_loc = Location("cloud/network/region1/router1")
    consumer_loc = Location("cloud/network/region2/router1")
    producer = DataStore(producer_loc, RoundRobinStorage(10**8), fabric=fabric)
    consumer = DataStore(consumer_loc, RoundRobinStorage(10**8), fabric=fabric)
    producer.add_peer(consumer)
    producer.install_aggregator(
        Aggregator("ft", FlowtreePrimitive(producer_loc, policy))
    )

    generator = TrafficGenerator(
        TrafficConfig(sites=("region1/router1",), flows_per_epoch=3000),
        seed=5,
    )
    for record in generator.epoch("region1/router1", 0):
        producer.ingest("flows", record, record.first_seen, size_bytes=48)
    producer.close_epoch(60.0)
    partition = producer.catalog.all()[0]
    print(f"  partition at region1: {partition.partition_id} "
          f"({partition.size_bytes:,} B)")

    engine = AdaptiveReplicationEngine(BreakEvenPolicy())
    print(f"\n  region2 keeps asking region1 for its top-200 flows:")
    for index in range(12):
        before = fabric.total_bytes()
        result = consumer.query_federated(
            "ft", QueryRequest("top_k", {"k": 200}),
            start=0.0, end=60.0, now=70.0 + index,
        )
        replicated = False
        if result.source == "remote":
            replicated = engine.on_remote_access(
                producer, consumer, partition.partition_id,
                result.result_bytes, now=70.0 + index,
            )
        wan = fabric.total_bytes() - before
        note = "  <- REPLICATED" if replicated else ""
        print(f"    query {index:>2}: served from {result.source:<8} "
              f"WAN bytes {wan:>9,}{note}")
    print(f"\n  shipped {engine.shipped_bytes:,} B before buying a "
          f"{engine.replication_bytes:,} B replica; every query after is "
          "free.")


if __name__ == "__main__":
    policy_shootout()
    live_engine_demo()

#!/usr/bin/env python3
"""Network monitoring (Section II.B): trends, matrices, and a DDoS.

Four router sites stream flow exports into per-site data stores with
Flowtree aggregators.  Three applications consume the summaries:

* **NetworkTrendsApp** — popular services and source prefixes (problem a)
* **TrafficMatrixApp** — demand matrix + hottest hierarchy link (problem b)
* **DDoSInvestigationApp** — Diff-based incident localization with an
  automatic mitigation rule installed at the site controller (problem c)

In epoch 3 a DDoS is injected at region2; watch the investigation find
the victim and the attacking prefixes, then install a rate-limit rule.

Run:  python examples/network_monitoring.py
"""

from repro.apps.ddos import DDoSInvestigationApp
from repro.apps.traffic_matrix import TrafficMatrixApp
from repro.apps.trends import NetworkTrendsApp
from repro.control.controller import Controller
from repro.control.manager import Manager
from repro.core.summary import Location
from repro.datastore.storage import RoundRobinStorage
from repro.datastore.store import DataStore
from repro.hierarchy.network import NetworkFabric
from repro.hierarchy.topology import network_monitoring_hierarchy
from repro.simulation.sensors import Actuator
from repro.simulation.traffic import TrafficConfig, TrafficGenerator

SITE_NAMES = (
    "region1/router1",
    "region2/router1",
    "region3/router1",
    "region4/router1",
)
EPOCHS = 4
ATTACK_EPOCH = 3
ATTACK_SITE = "region2/router1"


def main() -> None:
    hierarchy = network_monitoring_hierarchy(regions=4, routers_per_region=1)
    fabric = NetworkFabric(hierarchy)
    manager = Manager(hierarchy=hierarchy, fabric=fabric)

    sites, controllers = [], {}
    for name in SITE_NAMES:
        location = Location(f"cloud/network/{name}")
        store = DataStore(location, RoundRobinStorage(10**8), fabric=fabric)
        manager.register_store(store)
        controller = Controller(location)
        controller.register_actuator(
            Actuator(f"{location.path}/filter", location)
        )
        controllers[location.path] = controller
        sites.append(location)

    trends = NetworkTrendsApp(sites, node_budget=4096)
    matrix = TrafficMatrixApp(sites, fabric=fabric)
    ddos = DDoSInvestigationApp(
        sites, epoch_seconds=60.0, controllers=controllers
    )
    for app in (trends, matrix, ddos):
        app.deploy(manager)

    generator = TrafficGenerator(
        TrafficConfig(sites=SITE_NAMES, flows_per_epoch=2500), seed=7
    )

    print(f"== {len(SITE_NAMES)} sites, {EPOCHS} epochs, DDoS on "
          f"{ATTACK_SITE} in epoch {ATTACK_EPOCH} ==\n")
    for epoch in range(EPOCHS):
        for name, location in zip(SITE_NAMES, sites):
            store = manager.store_at(location)
            if epoch == ATTACK_EPOCH and name == ATTACK_SITE:
                records = generator.ddos_epoch(name, epoch, attack_flows=2500)
            else:
                records = generator.epoch(name, epoch)
            for record in records:
                store.ingest("flows", record, record.first_seen,
                             size_bytes=48)
        now = (epoch + 1) * 60.0
        # trends/matrix read the live epoch before it is cut
        trends.on_epoch(manager, now)
        matrix.on_epoch(manager, now)
        manager.close_epochs(now)
        findings = ddos.on_epoch(manager, now)
        print(f"-- epoch {epoch} closed at t={now:.0f}s --")
        snapshot = trends.trend_reports[-len(sites)]
        top_services = ", ".join(
            f"{port} ({volume/1e6:.1f} MB)"
            for port, volume in snapshot.services[:3]
        )
        print(f"  trends@{snapshot.site.split('/')[-2]}: {top_services}")
        latest_matrix = matrix.reports[-1].body
        print(
            f"  matrix: {latest_matrix['entries']} entries, hottest link "
            f"{latest_matrix['hottest_link']}"
        )
        if findings:
            for report in findings:
                body = report.body
                print(f"  !! DDoS at {body['site']}: victim {body['victim']} "
                      f"(+{body['surge_bytes']/1e6:.1f} MB)")
                for prefix, volume in body["top_sources"][:3]:
                    print(f"       source {prefix}: {volume/1e6:.1f} MB")
                print(f"       mitigation installed: {body['mitigated']}")
        else:
            print("  no incidents")
        print()

    attacked = controllers[f"cloud/network/{ATTACK_SITE}"]
    print("== mitigation rules at the attacked site ==")
    for rule in attacked.rules():
        print(f"  {rule.rule_id}: {rule.command!r} "
              f"(priority {rule.priority}, installed by {rule.installed_by})")
    print(f"\nWAN bytes carried: {fabric.total_bytes():,}")


if __name__ == "__main__":
    main()

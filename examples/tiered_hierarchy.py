#!/usr/bin/env python3
"""The full Figure 2b hierarchy: tiers, privacy, and graph analysis.

Eight routers in four regions feed a tiered Flowstream (router stores →
region stores → cloud FlowDB).  The demo shows three things the flat
quickstart cannot:

1. **Mid-tier aggregation pays**: the region merge dedups generalized
   nodes shared by co-located routers, so fewer summary bytes cross the
   WAN than in the flat design — measured side by side.
2. **Privacy at the boundary** (Section III.C): a second run exports
   region summaries through a privacy guard that truncates addresses to
   /16, and the cloud's view provably contains no host addresses while
   prefix-level answers survive.
3. **Graph analysis** (Figure 2a "Graph Analysis"): the cloud's merged
   tree becomes a communication graph — top talkers, traffic
   communities, and the hierarchy's choke-point links.

Run:  python examples/tiered_hierarchy.py
"""

from repro.analytics.graph import (
    communication_graph,
    hierarchy_choke_points,
    top_talkers,
    traffic_communities,
)
from repro.datastore.privacy import ExportRule, PrivacyGuard, PrivacyPolicy
from repro.flowstream.system import Flowstream
from repro.flowstream.tiered import TieredFlowstream
from repro.simulation.traffic import TrafficConfig, TrafficGenerator

SITES = [
    f"region{region}/router{router}"
    for region in (1, 2, 3, 4)
    for router in (1, 2)
]
EPOCHS = 2


def load(system, generator):
    for epoch in range(EPOCHS):
        for site in SITES:
            system.ingest(site, generator.epoch(site, epoch))
        system.close_epoch((epoch + 1) * 60.0)
    return system


def main() -> None:
    generator = TrafficGenerator(
        TrafficConfig(sites=tuple(SITES), flows_per_epoch=1200), seed=23
    )

    print("== 1. flat vs tiered WAN volume ==")
    flat = load(Flowstream(sites=SITES, node_budget=4096), generator)
    tiered = load(
        TieredFlowstream(
            sites=SITES, router_node_budget=4096, region_node_budget=4096
        ),
        generator,
    )
    flat_wan = flat.wan_summary_bytes()
    tiered_wan = tiered.wan_bytes()
    print(f"  flat   (router->cloud)        : {flat_wan:>12,} B")
    print(f"  tiered (router->region->cloud): {tiered_wan:>12,} B "
          f"({1 - tiered_wan / flat_wan:.0%} less)")
    assert (
        flat.query("SELECT TOTAL FROM ALL").scalar
        == tiered.query("SELECT TOTAL FROM ALL").scalar
    )
    print("  identical query answers at the cloud: yes\n")

    print("== 2. privacy at the region boundary ==")
    guard = PrivacyGuard(
        PrivacyPolicy(default=ExportRule(min_ip_prefix=16))
    )
    private = TieredFlowstream(
        sites=SITES, router_node_budget=4096, region_node_budget=4096
    )
    for store in private.region_stores.values():
        store.privacy = guard
    load(private, generator)
    cloud_trees = [entry.tree for entry in private.db.entries()]
    host_specific = sum(
        1
        for tree in cloud_trees
        for node in tree.nodes()
        if tree.key_of(node).feature_level("src_ip") > 16
        or tree.key_of(node).feature_level("dst_ip") > 16
    )
    print(f"  cloud-side nodes more specific than /16: {host_specific}")
    total = private.query("SELECT TOTAL FROM ALL").scalar
    prefix = private.query(
        "SELECT QUERY FROM ALL WHERE src_ip = 23.0.0.0/8"
    ).scalar
    print(f"  totals survive anonymization  : {total.flows:,} flows")
    print(f"  /8-prefix answers survive     : {prefix.bytes:,} B from 23/8")
    print(f"  export audit entries          : {len(guard.audit_log)}\n")

    print("== 3. graph analysis on the cloud's merged view ==")
    merged = tiered.db.merged_tree()
    graph = communication_graph(merged, prefix_level=8)
    print(f"  communication graph: {graph.number_of_nodes()} prefixes, "
          f"{graph.number_of_edges()} edges")
    print("  top talkers:")
    for prefix_name, volume in top_talkers(graph, k=3):
        print(f"    {prefix_name:<14} {volume/1e6:8.1f} MB")
    communities = traffic_communities(
        graph, min_edge_weight=merged.total().bytes * 0.001
    )
    print(f"  traffic communities (>0.1% edges): {len(communities)}")
    print("  hierarchy choke points (betweenness x 1/bandwidth):")
    for (a, b), score in hierarchy_choke_points(tiered.fabric, k=3):
        print(f"    {a} <-> {b}  ({score:.3f})")


if __name__ == "__main__":
    main()

"""Tests for privacy/security enforcement (Section III.C)."""

import pytest

from repro.core.flowtree import FlowtreePrimitive
from repro.core.sampling import RandomSamplePrimitive
from repro.core.summary import Location
from repro.core.timebin import TimeBinStatistics
from repro.datastore.privacy import (
    AuthorizationContext,
    ExportRule,
    PrivacyGuard,
    PrivacyPolicy,
    PrivacyViolation,
)
from repro.flows.records import FlowRecord

LOC = Location("cloud/region1/router1")


@pytest.fixture()
def flowtree_summary(policy, make_key):
    primitive = FlowtreePrimitive(LOC, policy, node_budget=None)
    for index in range(10):
        record = FlowRecord(
            key=make_key(src_ip=f"203.0.113.{index + 1}", src_port=1000 + index),
            packets=5,
            bytes=500,
            first_seen=float(index),
            last_seen=float(index) + 1,
        )
        primitive.ingest(record, record.first_seen)
    return primitive.summary()


class TestExportGate:
    def test_blocked_aggregator(self, flowtree_summary):
        guard = PrivacyGuard(
            PrivacyPolicy(rules={"secret": ExportRule(shareable=False)})
        )
        with pytest.raises(PrivacyViolation):
            guard.export("secret", flowtree_summary)
        assert guard.audit_log[-1].allowed is False

    def test_default_rule_applies(self, flowtree_summary):
        guard = PrivacyGuard(
            PrivacyPolicy(default=ExportRule(shareable=False))
        )
        with pytest.raises(PrivacyViolation):
            guard.export("anything", flowtree_summary)

    def test_unrestricted_passthrough(self, flowtree_summary):
        guard = PrivacyGuard(PrivacyPolicy())
        exported = guard.export("ft", flowtree_summary)
        assert exported is flowtree_summary
        assert guard.audit_log[-1].degraded is False


class TestFlowtreeAnonymization:
    def test_ips_truncated(self, flowtree_summary):
        guard = PrivacyGuard(
            PrivacyPolicy(default=ExportRule(min_ip_prefix=16))
        )
        exported = guard.export("ft", flowtree_summary)
        tree = exported.payload
        for node in tree.nodes():
            for feature_name in ("src_ip", "dst_ip"):
                level = tree.key_of(node).feature_level(feature_name)
                assert level <= 16
        assert exported.attrs["anonymized_to_prefix"] == 16

    def test_mass_preserved(self, flowtree_summary):
        guard = PrivacyGuard(
            PrivacyPolicy(default=ExportRule(min_ip_prefix=8))
        )
        exported = guard.export("ft", flowtree_summary)
        assert exported.payload.total() == flowtree_summary.payload.total()

    def test_original_untouched(self, flowtree_summary, make_key):
        guard = PrivacyGuard(
            PrivacyPolicy(default=ExportRule(min_ip_prefix=8))
        )
        guard.export("ft", flowtree_summary)
        specific = make_key(src_ip="203.0.113.1", src_port=1000)
        assert flowtree_summary.payload.query(specific).bytes == 500

    def test_prefix_queries_still_work(self, flowtree_summary, make_key):
        guard = PrivacyGuard(
            PrivacyPolicy(default=ExportRule(min_ip_prefix=8))
        )
        exported = guard.export("ft", flowtree_summary)
        prefix = make_key(src_ip="203.0.0.0").with_levels((0, 8, 0, 0, 0))
        assert exported.payload.query(prefix).bytes == 10 * 500


class TestTimebinCoarsening:
    def test_bins_widened(self):
        primitive = TimeBinStatistics(LOC, bin_seconds=1.0)
        for t in range(120):
            primitive.ingest(float(t), float(t))
        summary = primitive.summary()
        guard = PrivacyGuard(
            PrivacyPolicy(default=ExportRule(min_bin_seconds=60.0))
        )
        exported = guard.export("temps", summary)
        assert exported.attrs["bin_seconds"] == 60.0
        assert len(exported.payload) == 2
        total = sum(stats.count for stats in exported.payload.values())
        assert total == 120

    def test_already_coarse_passthrough(self):
        primitive = TimeBinStatistics(LOC, bin_seconds=300.0)
        primitive.ingest(1.0, 0.0)
        guard = PrivacyGuard(
            PrivacyPolicy(default=ExportRule(min_bin_seconds=60.0))
        )
        exported = guard.export("temps", primitive.summary())
        assert exported.attrs["bin_seconds"] == 300.0


class TestSampleThinning:
    def test_rate_capped(self):
        primitive = RandomSamplePrimitive(LOC, rate=1.0, seed=1)
        for t in range(1000):
            primitive.ingest(1.0, float(t))
        guard = PrivacyGuard(
            PrivacyPolicy(default=ExportRule(max_sample_rate=0.1))
        )
        exported = guard.export("sample", primitive.summary())
        assert exported.attrs["rate"] == 0.1
        assert len(exported.payload) < 250


class TestAuthorization:
    def test_role_required(self):
        context = AuthorizationContext("operator", frozenset({"read"}))
        context.require("read")
        with pytest.raises(PrivacyViolation):
            context.require("admin")

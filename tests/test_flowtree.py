"""Unit tests for the Flowtree data structure (Table II operators)."""

import pytest

from repro.errors import GranularityError, SchemaMismatchError
from repro.flows.flowkey import SRC_DST, GeneralizationPolicy
from repro.flows.records import FlowRecord, PacketRecord, Score
from repro.flows.tree import Flowtree


def make_tree(policy, budget=None):
    return Flowtree(policy, node_budget=budget)


class TestInsertAndQuery:
    def test_single_insert_query(self, policy, make_key):
        tree = make_tree(policy)
        key = make_key()
        tree.add(key, Score(5, 500, 1))
        assert tree.query(key) == Score(5, 500, 1)
        assert tree.total() == Score(5, 500, 1)

    def test_absent_key_scores_zero(self, policy, make_key):
        tree = make_tree(policy)
        tree.add(make_key(), Score(1, 1, 1))
        other = make_key(src_ip="99.99.99.99")
        assert tree.query(other) == Score.zero()

    def test_ancestor_chain_created(self, policy, make_key):
        tree = make_tree(policy)
        tree.add(make_key(), Score(1, 100, 1))
        assert tree.node_count == policy.depth + 1

    def test_generalized_query_sums_descendants(self, policy, make_key):
        tree = make_tree(policy)
        tree.add(make_key(src_ip="10.1.2.3"), Score(1, 100, 1))
        tree.add(make_key(src_ip="10.1.9.9"), Score(1, 50, 1))
        prefix = make_key(src_ip="10.0.0.0").with_levels((0, 8, 0, 0, 0))
        # (0,8,0,0,0) is on-chain (depth 1)
        assert policy.depth_of(prefix.levels) is not None
        assert tree.query(prefix).bytes == 150

    def test_off_chain_query(self, policy, make_key):
        tree = make_tree(policy)
        tree.add(make_key(dst_port=443), Score(1, 100, 1))
        tree.add(make_key(dst_port=80, src_ip="1.1.1.1"), Score(1, 70, 1))
        pattern = make_key(dst_port=443).with_levels((0, 0, 0, 0, 16))
        assert policy.depth_of(pattern.levels) is None
        assert tree.query(pattern).bytes == 100

    def test_add_generalized_key_mass(self, policy, make_key):
        tree = make_tree(policy)
        mid = policy.key_at(make_key(), 4)
        tree.add(mid, Score(1, 10, 0))
        assert tree.total().bytes == 10
        assert tree.query(mid).bytes == 10
        assert tree.node_count == 5  # root + 4 ancestors

    def test_off_chain_add_rejected(self, policy, make_key):
        tree = make_tree(policy)
        off = make_key().with_levels((8, 0, 0, 0, 0))
        with pytest.raises(GranularityError):
            tree.add(off, Score(1, 1, 1))

    def test_schema_mismatch_rejected(self, policy):
        tree = make_tree(policy)
        other = SRC_DST.key(src_ip="1.2.3.4", dst_ip="5.6.7.8")
        with pytest.raises(SchemaMismatchError):
            tree.add(other, Score(1, 1, 1))
        with pytest.raises(SchemaMismatchError):
            tree.query(other)

    def test_flow_and_packet_ingest(self, policy, make_key):
        tree = make_tree(policy)
        tree.add_flow(
            FlowRecord(
                key=make_key(), packets=3, bytes=300, first_seen=0,
                last_seen=1,
            )
        )
        tree.add_packet(
            PacketRecord(key=make_key(), bytes=100, timestamp=0.5)
        )
        assert tree.total() == Score(4, 400, 1)

    def test_ingest_many(self, policy, random_flows):
        tree = make_tree(policy)
        records = random_flows(50)
        assert tree.ingest(records) == 50
        assert tree.total().flows == 50


class TestCompress:
    def test_budget_enforced(self, policy, random_flows):
        tree = make_tree(policy, budget=200)
        tree.ingest(random_flows(500))
        assert tree.node_count <= 200
        assert tree.compressions > 0

    def test_mass_conserved_under_compression(self, policy, random_flows):
        records = random_flows(300)
        expected = Score.zero()
        for record in records:
            expected = expected + record.score()
        tree = make_tree(policy, budget=150)
        tree.ingest(records)
        assert tree.total() == expected

    def test_explicit_compress_to_target(self, policy, random_flows):
        tree = make_tree(policy)
        tree.ingest(random_flows(200))
        before = tree.total()
        removed = tree.compress(target_nodes=50)
        assert removed > 0
        assert tree.node_count <= 50
        assert tree.total() == before

    def test_compress_by_ratio(self, policy, random_flows):
        tree = make_tree(policy)
        tree.ingest(random_flows(200))
        count = tree.node_count
        tree.compress(ratio=0.5)
        assert tree.node_count <= max(1, int(count * 0.5))

    def test_compress_arg_validation(self, policy):
        tree = make_tree(policy)
        with pytest.raises(GranularityError):
            tree.compress(target_nodes=5, ratio=0.5)
        with pytest.raises(GranularityError):
            tree.compress(ratio=1.5)

    def test_compress_keeps_heavy_keys_queryable(self, policy, make_key,
                                                 random_flows):
        tree = make_tree(policy, budget=300)
        heavy = make_key(src_ip="8.8.8.8")
        tree.add(heavy, Score(1000, 10_000_000, 100))
        tree.ingest(random_flows(400))
        # the heavy flow dominates everything and must survive compression
        assert tree.query(heavy).bytes >= 10_000_000

    def test_budget_below_chain_length_rejected(self, policy):
        with pytest.raises(GranularityError):
            Flowtree(policy, node_budget=policy.depth)

    def test_root_never_removed(self, policy, random_flows):
        tree = make_tree(policy)
        tree.ingest(random_flows(100))
        tree.compress(target_nodes=1)
        assert tree.root is not None
        assert tree.node_count >= 1


class TestMergeDiff:
    def test_merge_totals_add(self, policy, random_flows):
        a = make_tree(policy)
        b = make_tree(policy)
        a.ingest(random_flows(100, seed=1))
        b.ingest(random_flows(100, seed=2))
        total = a.total() + b.total()
        a.merge(b)
        assert a.total() == total

    def test_merged_classmethod(self, policy, random_flows):
        a = make_tree(policy)
        b = make_tree(policy)
        a.ingest(random_flows(80, seed=3))
        b.ingest(random_flows(80, seed=4))
        merged = Flowtree.merged(a, b)
        assert merged.total() == a.total() + b.total()
        # sources untouched
        assert a.total().flows == 80

    def test_merge_same_keys_sums(self, policy, make_key):
        a = make_tree(policy)
        b = make_tree(policy)
        key = make_key()
        a.add(key, Score(1, 100, 1))
        b.add(key, Score(2, 200, 1))
        a.merge(b)
        assert a.query(key) == Score(3, 300, 2)

    def test_merge_self(self, policy, make_key):
        tree = make_tree(policy)
        key = make_key()
        tree.add(key, Score(1, 100, 1))
        tree.merge(tree)
        assert tree.query(key) == Score(2, 200, 2)

    def test_merge_incompatible_policy(self, policy, random_flows):
        tree = make_tree(policy)
        other = Flowtree(GeneralizationPolicy.default_for(SRC_DST))
        with pytest.raises(SchemaMismatchError):
            tree.merge(other)

    def test_diff_self_is_zero(self, policy, random_flows):
        tree = make_tree(policy)
        tree.ingest(random_flows(60))
        delta = tree.diff(tree)
        assert delta.total().is_zero()

    def test_diff_detects_growth(self, policy, make_key):
        before = make_tree(policy)
        after = make_tree(policy)
        key = make_key()
        before.add(key, Score(1, 100, 1))
        after.add(key, Score(5, 900, 3))
        delta = after.diff(before)
        assert delta.query(key) == Score(4, 800, 2)

    def test_diff_allows_negative(self, policy, make_key):
        a = make_tree(policy)
        b = make_tree(policy)
        key = make_key()
        b.add(key, Score(2, 200, 1))
        delta = a.diff(b)
        assert delta.query(key) == Score(-2, -200, -1)


class TestRankingOperators:
    def test_top_k_orders_by_metric(self, policy, make_key):
        tree = make_tree(policy)
        keys = [make_key(src_port=1000 + i) for i in range(5)]
        for i, key in enumerate(keys):
            tree.add(key, Score(1, (i + 1) * 100, 1))
        top = tree.top_k(3)
        assert [score.bytes for _, score in top] == [500, 400, 300]

    def test_top_k_zero_or_negative(self, policy):
        tree = make_tree(policy)
        assert tree.top_k(0) == []
        assert tree.top_k(-5) == []

    def test_top_k_at_depth(self, policy, make_key):
        tree = make_tree(policy)
        tree.add(make_key(src_ip="10.0.0.1"), Score(1, 100, 1))
        tree.add(make_key(src_ip="10.0.0.2"), Score(1, 200, 1))
        top = tree.top_k(1, depth=1)
        assert len(top) == 1
        key, score = top[0]
        assert score.bytes == 300  # aggregated under the shared /8

    def test_above_x(self, policy, make_key):
        tree = make_tree(policy)
        tree.add(make_key(src_port=1), Score(1, 50, 1))
        tree.add(make_key(src_port=2), Score(1, 500, 1))
        hits = tree.above_x(100, depth=policy.depth)
        assert len(hits) == 1
        assert hits[0][1].bytes == 500

    def test_above_x_excludes_root_by_default(self, policy, make_key):
        tree = make_tree(policy)
        tree.add(make_key(), Score(1, 500, 1))
        keys = [key for key, _ in tree.above_x(1)]
        assert not any(k.is_fully_general() for k in keys)
        with_root = tree.above_x(1, include_root=True)
        assert any(k.is_fully_general() for k, _ in with_root)

    def test_drilldown(self, policy, make_key):
        tree = make_tree(policy)
        tree.add(make_key(src_ip="10.1.0.1"), Score(1, 100, 1))
        tree.add(make_key(src_ip="11.1.0.1"), Score(1, 200, 1))
        children = tree.drilldown(tree.key_of(tree.root))
        assert len(children) == 2
        assert children[0][1].bytes == 200  # sorted by metric desc

    def test_drilldown_missing_node(self, policy, make_key):
        tree = make_tree(policy)
        assert tree.drilldown(make_key()) == []


class TestHHH:
    def test_hhh_finds_heavy_prefix(self, policy, make_key):
        tree = make_tree(policy)
        # many small flows inside one /8, none individually heavy
        for i in range(20):
            tree.add(
                make_key(src_ip=f"10.0.{i}.1", src_port=1000 + i),
                Score(1, 100, 1),
            )
        results = tree.hhh(1500)
        prefixes = [r.key for r in results]
        # some generalized node covering 10/8 must be reported
        assert any(
            k.feature_level("src_ip") in (8, 16) and not k.is_fully_general()
            for k in prefixes
        )

    def test_hhh_discounts_descendants(self, policy, make_key):
        tree = make_tree(policy)
        heavy = make_key(src_ip="10.0.0.1")
        tree.add(heavy, Score(1, 10_000, 1))
        results = tree.hhh(5_000)
        # the leaf itself qualifies; its ancestors carry no residual mass
        reported_levels = {r.key.levels for r in results}
        assert heavy.levels in reported_levels
        assert len(results) == 1

    def test_hhh_threshold_filters_all(self, policy, make_key):
        tree = make_tree(policy)
        tree.add(make_key(), Score(1, 10, 1))
        assert tree.hhh(1_000_000) == []


class TestQueryWithBound:
    def test_uncompressed_is_exact(self, policy, make_key):
        tree = make_tree(policy)
        key = make_key()
        tree.add(key, Score(3, 300, 1))
        lower, upper = tree.query_with_bound(key)
        assert lower == upper == Score(3, 300, 1)

    def test_missing_key_bracketed_by_zero_and_ancestor_fold(
        self, policy, random_flows
    ):
        records = random_flows(300, seed=5)
        exact = make_tree(policy)
        exact.ingest(records)
        compressed = make_tree(policy, budget=policy.depth + 2)
        compressed.ingest(records)
        checked = 0
        for record in records:
            truth = exact.query(record.key)
            lower, upper = compressed.query_with_bound(record.key)
            assert lower.bytes <= truth.bytes <= upper.bytes
            assert lower.packets <= truth.packets <= upper.packets
            checked += 1
        assert checked == 300

    def test_absent_everywhere_is_zero_to_fold(self, policy, make_key):
        tree = make_tree(policy)
        tree.add(make_key(), Score(1, 100, 1))
        other = make_key(src_ip="99.99.99.99", dst_ip="88.88.88.88")
        lower, upper = tree.query_with_bound(other)
        assert lower.is_zero()
        assert upper.is_zero()  # nothing folded on that path

    def test_off_chain_key_rejected(self, policy, make_key):
        tree = make_tree(policy)
        off = make_key().with_levels((8, 0, 0, 0, 0))
        with pytest.raises(GranularityError):
            tree.query_with_bound(off)

    def test_heavy_keys_stay_exact_under_compression(
        self, policy, make_key, random_flows
    ):
        tree = make_tree(policy, budget=300)
        heavy = make_key(src_ip="8.8.8.8")
        tree.add(heavy, Score(1000, 10**7, 100))
        tree.ingest(random_flows(400, seed=6))
        lower, upper = tree.query_with_bound(heavy)
        assert lower.bytes >= 10**7
        assert upper.bytes >= lower.bytes


class TestGroupBy:
    def test_group_by_port(self, policy, make_key):
        tree = make_tree(policy)
        tree.add(make_key(dst_port=443, src_port=1), Score(1, 100, 1))
        tree.add(make_key(dst_port=443, src_port=2), Score(1, 50, 1))
        tree.add(make_key(dst_port=80, src_port=3), Score(1, 60, 1))
        groups = tree.aggregate_by_feature("dst_port", 16)
        assert groups[0][0].feature_value("dst_port") == 443
        assert groups[0][1].bytes == 150

    def test_group_by_within(self, policy, make_key):
        tree = make_tree(policy)
        victim = "10.0.0.5"
        tree.add(make_key(src_ip="1.0.0.1", dst_ip=victim), Score(1, 100, 1))
        tree.add(make_key(src_ip="2.0.0.1", dst_ip=victim), Score(1, 90, 1))
        tree.add(
            make_key(src_ip="1.0.0.1", dst_ip="10.0.0.9"), Score(1, 500, 1)
        )
        pattern = make_key(dst_ip=victim).with_levels((0, 0, 32, 0, 0))
        groups = tree.aggregate_by_feature("src_ip", 8, within=pattern)
        total = sum(score.bytes for _, score in groups)
        assert total == 190


class TestSerialization:
    def test_roundtrip(self, policy, random_flows):
        tree = make_tree(policy, budget=300)
        tree.ingest(random_flows(200))
        clone = Flowtree.from_dict(tree.to_dict(), policy)
        assert clone.total() == tree.total()
        assert clone.node_count == tree.node_count
        assert clone.top_k(5) == tree.top_k(5)

    def test_roundtrip_wrong_policy(self, policy, random_flows):
        tree = make_tree(policy)
        tree.ingest(random_flows(10))
        other = GeneralizationPolicy.default_for(SRC_DST)
        with pytest.raises(SchemaMismatchError):
            Flowtree.from_dict(tree.to_dict(), other)

    def test_copy_is_independent(self, policy, make_key):
        tree = make_tree(policy)
        key = make_key()
        tree.add(key, Score(1, 100, 1))
        clone = tree.copy()
        tree.add(key, Score(1, 100, 1))
        assert clone.query(key).bytes == 100
        assert tree.query(key).bytes == 200

    def test_estimated_size_grows_with_nodes(self, policy, random_flows):
        tree = make_tree(policy)
        empty = tree.estimated_size_bytes()
        tree.ingest(random_flows(50))
        assert tree.estimated_size_bytes() > empty

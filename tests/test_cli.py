"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestFlowQLCommand:
    def test_demo_queries(self, capsys):
        code = main(
            ["flowql", "--epochs", "1", "--flows-per-epoch", "200"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "loaded 1 epochs" in out
        assert "SELECT TOTAL FROM ALL" in out
        assert "Score(" in out

    def test_explicit_query(self, capsys):
        code = main(
            [
                "flowql",
                "--epochs", "1",
                "--flows-per-epoch", "200",
                "--query", "SELECT TOPK(2) FROM ALL BY bytes",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("five_tuple") == 2

    def test_bad_query_fails(self, capsys):
        code = main(
            [
                "flowql",
                "--epochs", "1",
                "--flows-per-epoch", "100",
                "--query", "SELECT NONSENSE FROM ALL",
            ]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().out

    def test_save_flowdb(self, capsys, tmp_path):
        path = str(tmp_path / "db.json")
        code = main(
            [
                "flowql",
                "--epochs", "1",
                "--flows-per-epoch", "100",
                "--query", "SELECT TOTAL FROM ALL",
                "--save", path,
            ]
        )
        assert code == 0
        assert "saved 2 summaries" in capsys.readouterr().out
        import os

        assert os.path.exists(path)


class TestQueryCommand:
    def test_demo_routes_cloud_federated_and_cached(self, capsys):
        code = main(
            ["query", "--epochs", "1", "--flows-per-epoch", "150"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "plan: cloud FlowDB" in out  # rolled-up query
        assert "level 'router'" in out  # edge drilldown fans out
        assert "plan: cache (" in out  # repeats hit the cache
        assert "routing: cloud=" in out  # final census line
        assert "replications=" in out

    def test_factory_preset(self, capsys):
        code = main(
            [
                "query",
                "--preset", "factory",
                "--epochs", "1",
                "--flows-per-epoch", "100",
                "--query", "SELECT TOTAL FROM ALL",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "factory preset" in out
        assert "plan: cloud FlowDB" in out

    def test_no_retain_disables_edge_drilldown(self, capsys):
        code = main(
            [
                "query",
                "--epochs", "1",
                "--flows-per-epoch", "100",
                "--no-retain",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1  # the demo's edge drilldown cannot be planned
        assert "error:" in out

    def test_bad_query_fails(self, capsys):
        code = main(
            [
                "query",
                "--epochs", "1",
                "--flows-per-epoch", "100",
                "--query", "SELECT NONSENSE FROM ALL",
            ]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().out


class TestRunCommand:
    def test_faultless_run_census(self, capsys):
        code = main(
            ["run", "--epochs", "2", "--flows-per-epoch", "150"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fault census: attempts=" in out
        assert "failures=0" in out
        assert "parked=0 recovered=0 still-pending=0" in out

    def test_outage_parks_and_recovers(self, capsys):
        code = main(
            [
                "run",
                "--epochs", "2",
                "--flows-per-epoch", "150",
                "--faults", "outage=region1/router1:1-2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fault plan: drop=0" in out
        assert "epoch 0: exported=1 pending=1" in out  # parked at t=60
        assert "parked=1 recovered=1 still-pending=0" in out

    def test_degraded_query_reported(self, capsys):
        code = main(
            [
                "run",
                "--epochs", "2",
                "--flows-per-epoch", "150",
                "--faults", "outage=region1/router1:2-100",
                "--query",
                "SELECT TOTAL FROM ALL "
                "AT network1/region1/router1, network1/region1/router2",
            ]
        )
        out = capsys.readouterr().out
        # the outage persists: parked exports cannot drain, so the exit
        # code honestly reports data still missing
        assert code == 1
        assert "degraded: partial: missing [network1/region1/router1]" in out
        assert "degraded queries=1" in out
        assert "still-pending=1" in out

    def test_bad_fault_spec_fails(self, capsys):
        code = main(["run", "--faults", "drop=lots"])
        assert code == 2
        assert "error:" in capsys.readouterr().out


class TestMetricsCommand:
    def test_prometheus_exposition_covers_required_families(self, capsys):
        code = main(
            [
                "metrics",
                "--epochs", "2",
                "--flows-per-epoch", "100",
                "--query", "SELECT TOTAL FROM ALL",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        for family in (
            "repro_raw_bytes_total",
            "repro_summary_bytes_total",
            "repro_query_bytes_total",
            "repro_fabric_carried_bytes_total",
            "repro_fabric_wasted_bytes_total",
            "repro_retried_bytes_total",
            "repro_query_cache_events_total",
            "repro_rollup_seconds_bucket",
            "repro_query_seconds_bucket",
        ):
            assert f"# TYPE {family.split('_bucket')[0]}" in out
            assert family in out
        # the repeated demo query turns the second run into a cache hit
        assert 'repro_query_cache_events_total{result="hit"} 1' in out

    def test_json_snapshot_parses(self, capsys):
        import json

        code = main(
            [
                "metrics",
                "--epochs", "1",
                "--flows-per-epoch", "100",
                "--format", "json",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        snapshot = json.loads(out)
        assert snapshot["repro_epochs_closed_total"]["kind"] == "counter"
        assert snapshot["repro_epochs_closed_total"]["series"][0][
            "value"
        ] == 1

    def test_fault_plan_surfaces_parked_and_recovered(self, capsys):
        code = main(
            [
                "metrics",
                "--epochs", "2",
                "--flows-per-epoch", "100",
                "--faults", "outage=region1/router1:1-2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert (
            'repro_exports_total{level="router",outcome="parked"} 1' in out
        )
        assert (
            'repro_exports_total{level="router",outcome="recovered"} 1'
            in out
        )

    def test_traces_render_span_trees(self, capsys):
        code = main(
            [
                "metrics",
                "--epochs", "1",
                "--flows-per-epoch", "100",
                "--traces", "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "close_epoch" in out
        assert "rollup" in out

    def test_bad_fault_spec_fails(self, capsys):
        code = main(["metrics", "--faults", "drop=lots"])
        assert code == 2
        assert "error:" in capsys.readouterr().out

    def test_bad_query_fails(self, capsys):
        code = main(
            [
                "metrics",
                "--epochs", "1",
                "--flows-per-epoch", "100",
                "--query", "SELECT NONSENSE FROM ALL",
            ]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().out


class TestFactoryCommand:
    def test_with_apps_no_failures(self, capsys):
        code = main(
            [
                "factory",
                "--hours", "4",
                "--lines", "1",
                "--machines-per-line", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "failures: 0/2" in out
        assert "maintenance actions:" in out

    def test_baseline_fails(self, capsys):
        code = main(
            [
                "factory",
                "--hours", "6",
                "--lines", "1",
                "--machines-per-line", "2",
                "--no-apps",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0  # baseline exit code is informational
        assert "without predictive maintenance" in out
        assert "failures: 2/2" in out


class TestReplicationCommand:
    def test_policy_table(self, capsys):
        code = main(
            ["replication", "--partitions", "100", "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        for name in ("never", "always", "break-even", "distribution-aware"):
            assert name in out
        assert "offline OPT" in out

    def test_distribution_choice(self, capsys):
        code = main(
            [
                "replication",
                "--partitions", "50",
                "--distribution", "geometric",
            ]
        )
        assert code == 0
        assert "geometric trace" in capsys.readouterr().out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestServeCommand:
    def test_smoke_serves_and_reports(self, capsys):
        code = main(
            [
                "serve",
                "--epochs", "1",
                "--flows-per-epoch", "200",
                "--smoke", "4",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "serving network preset at http://" in out
        assert "node servers" in out
        assert "smoke: 4 queries ok" in out
        assert "server_errors=0" in out

    def test_query_endpoint_round_trip(self, capsys):
        """repro query --endpoint answers from a live repro serve."""
        import re

        from repro.runtime.presets import network_4level_runtime
        from repro.serve import ServePlane
        from repro.simulation.traffic import (
            TrafficConfig,
            TrafficGenerator,
        )

        runtime = network_4level_runtime(retain_partitions=True)
        sites = runtime.ingest_sites()
        generator = TrafficGenerator(
            TrafficConfig(sites=tuple(sites), flows_per_epoch=200),
            seed=5,
        )
        for site in sites:
            runtime.ingest(site, generator.epoch(site, 0))
        runtime.close_epoch(60.0)
        try:
            with ServePlane(runtime) as plane:
                endpoint = plane.start_background()
                code = main(
                    [
                        "query",
                        "--endpoint", endpoint,
                        "--query", "SELECT TOTAL FROM ALL",
                        "--repeat", "2",
                    ]
                )
            out = capsys.readouterr().out
            assert code == 0
            assert "plan: cloud FlowDB" in out
            assert "plan: cache (cloud)" in out  # repeat hit the cache
            assert re.search(r"Score\(packets=\d+", out)
            assert "server_errors=0" in out
        finally:
            runtime.shutdown()

"""Standing queries: ``SUBSCRIBE`` grammar, the delta-maintaining
registry, wire envelopes, and the bit-identity contract.

The load-bearing property in this file: a delta-maintained view is
``to_wire``-identical to re-executing the query from scratch — after
every epoch close, after random join/leave reconfiguration, across a
level split/merge, and across a crash-restart drill.  Everything else
(cursors, callbacks, cancellation, HTTP long-poll) is plumbing around
that contract.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.client import FlowQLClient, HTTPSubscription
from repro.errors import FlowQLPlanningError, WireSchemaError
from repro.faults import FaultPlan, RestartDrill
from repro.flows.records import Score
from repro.flowql.executor import FlowQLResult
from repro.flowql.parser import parse
from repro.runtime.config import LevelConfig
from repro.query.subscriptions import (
    MODE_DELTA,
    MODE_INIT,
    MODE_REBUILD,
    SubscriptionUpdate,
)
from repro.runtime.presets import network_4level_runtime
from repro.serve import ServePlane, wire
from repro.simulation.traffic import TrafficConfig, TrafficGenerator

EPOCH = 60.0
ROUTER1 = "network1/region1/router1"
ROUTER2 = "network1/region1/router2"


def build_runtime(routers=2, regions=1, faults=None):
    return network_4level_runtime(
        networks=1,
        regions_per_network=regions,
        routers_per_region=routers,
        retain_partitions=True,
        faults=faults,
    )


def drive(runtime, epochs, start=0, flows=100, seed=7):
    """Ingest ``epochs`` epochs of traffic and close each one."""
    for epoch in range(start, start + epochs):
        sites = runtime.ingest_sites()  # recompute: reconfigs re-key
        generator = TrafficGenerator(
            TrafficConfig(sites=tuple(sites), flows_per_epoch=flows),
            seed=seed + epoch,
        )
        for site in sites:
            runtime.ingest(site, generator.epoch(site, epoch))
        runtime.close_epoch((epoch + 1) * EPOCH)


def cold(runtime, text):
    """Re-execute ``text`` from scratch, bypassing the result cache."""
    planner = runtime.planner
    saved, planner.cache = planner.cache, None
    try:
        return planner.execute(text).result
    finally:
        planner.cache = saved


def sample_update(seq=1, mode=MODE_DELTA):
    return SubscriptionUpdate(
        subscription_id="sub-9",
        seq=seq,
        epoch=120.0,
        generation=3,
        mode=mode,
        result=FlowQLResult(
            operator="top_k",
            rows=[("10.0.0.1:443 -> *", 10, 4096, 2)],
        ),
        route="federated",
        shipped_bytes=512,
        changed=True,
        degraded=False,
    )


# ---------------------------------------------------------------------------
# grammar


class TestSubscribeGrammar:
    def test_subscribe_prefix_parses(self):
        query = parse("SUBSCRIBE SELECT TOTAL FROM ALL")
        assert query.subscribe is True
        assert query.select.name == "total"

    def test_bare_select_is_not_a_subscription(self):
        assert parse("SELECT TOTAL FROM ALL").subscribe is False

    def test_subscribe_composes_with_full_grammar(self):
        query = parse(
            "SUBSCRIBE SELECT TOPK(5) FROM ALL AT "
            f"{ROUTER1} WHERE dst_port = 443 BY bytes LIMIT 3"
        )
        assert query.subscribe is True
        assert query.select.name == "topk"
        assert query.limit == 3

    def test_registry_strips_the_subscribe_flag(self):
        runtime = build_runtime()
        drive(runtime, 1)
        subscription = runtime.subscribe("SUBSCRIBE SELECT TOTAL FROM ALL")
        assert subscription.query.subscribe is False  # plain, plannable


# ---------------------------------------------------------------------------
# wire schema


class TestSubscriptionWire:
    def test_update_round_trips_through_json(self):
        update = sample_update()
        clone = SubscriptionUpdate.from_wire(
            json.loads(json.dumps(update.to_wire()))
        )
        assert clone == update

    def test_malformed_update_raises_wire_error(self):
        with pytest.raises(WireSchemaError):
            SubscriptionUpdate.from_wire({"seq": 1})

    def test_subscribed_envelope_round_trip(self):
        update = sample_update(mode=MODE_INIT)
        body = json.loads(
            json.dumps(wire.encode_subscribed("sub-9", update))
        )
        subscription_id, first = wire.decode_subscribed(body)
        assert subscription_id == "sub-9"
        assert first == update

    def test_subscribed_envelope_with_pending_registration(self):
        subscription_id, first = wire.decode_subscribed(
            wire.encode_subscribed("sub-3", None)
        )
        assert subscription_id == "sub-3"
        assert first is None

    def test_updates_envelope_round_trip(self):
        updates = [sample_update(seq=4), sample_update(seq=5)]
        body = json.loads(
            json.dumps(wire.encode_updates(updates, cursor=5, resync=True))
        )
        decoded, cursor, resync = wire.decode_updates(body)
        assert decoded == updates
        assert cursor == 5
        assert resync is True

    def test_envelope_kinds_are_checked(self):
        body = wire.encode_updates([], cursor=0, resync=False)
        with pytest.raises(WireSchemaError):
            wire.decode_subscribed(body)


# ---------------------------------------------------------------------------
# registry semantics


class TestRegistrySemantics:
    def test_registration_materializes_immediately(self):
        runtime = build_runtime()
        drive(runtime, 1)
        subscription = runtime.subscribe("SUBSCRIBE SELECT TOTAL FROM ALL")
        first = subscription.latest()
        assert first is not None
        assert first.mode == MODE_INIT and first.seq == 1
        assert first.result.scalar == (
            runtime.query("SELECT TOTAL FROM ALL").scalar
        )

    def test_empty_hierarchy_stays_pending_then_materializes(self):
        runtime = build_runtime()
        subscription = runtime.subscribe("SUBSCRIBE SELECT TOTAL FROM ALL")
        assert subscription.latest() is None  # nothing to materialize
        drive(runtime, 1)
        first = subscription.latest()
        assert first is not None and first.mode == MODE_INIT

    def test_every_close_publishes_with_contiguous_seqs(self):
        runtime = build_runtime()
        drive(runtime, 1)
        subscription = runtime.subscribe("SUBSCRIBE SELECT TOTAL FROM ALL")
        drive(runtime, 3, start=1)
        assert [u.seq for u in subscription.updates] == [1, 2, 3, 4]
        assert [u.mode for u in subscription.updates][1:] == (
            [MODE_DELTA] * 3
        )
        assert subscription.delta_refreshes == 3

    def test_quiet_epoch_publishes_unchanged_snapshot(self):
        runtime = build_runtime()
        drive(runtime, 1)
        subscription = runtime.subscribe("SUBSCRIBE SELECT TOTAL FROM ALL")
        grown = subscription.latest()
        runtime.close_epoch(2 * EPOCH)  # close with zero new traffic
        quiet = subscription.latest()
        assert quiet.seq == grown.seq + 1
        assert quiet.changed is False
        assert quiet.result == grown.result

    def test_callback_fires_and_exceptions_are_contained(self):
        runtime = build_runtime()
        drive(runtime, 1)
        seen = []

        def boom(update):
            seen.append(update.seq)
            raise RuntimeError("subscriber bug")

        subscription = runtime.subscribe(
            "SUBSCRIBE SELECT TOTAL FROM ALL", on_update=boom
        )
        drive(runtime, 1, start=1)  # must not blow up close_epoch
        assert seen == [1, 2]
        assert subscription.callback_errors == 2

    def test_cancel_stops_updates(self):
        runtime = build_runtime()
        drive(runtime, 1)
        registry = runtime.planner.subscriptions
        subscription = runtime.subscribe("SUBSCRIBE SELECT TOTAL FROM ALL")
        subscription.cancel()
        assert subscription.active is False
        drive(runtime, 1, start=1)
        assert subscription.seq == 1  # nothing published after cancel
        assert registry.census()["active"] == 0

    def test_cursor_semantics_and_ring_resync(self):
        runtime = build_runtime()
        drive(runtime, 1)
        subscription = runtime.subscribe("SUBSCRIBE SELECT TOTAL FROM ALL")
        drive(runtime, 2, start=1)
        pending, resynced = subscription.updates_since(1)
        assert [u.seq for u in pending] == [2, 3]
        assert resynced is False
        # simulate the ring aging past the cursor
        subscription.updates.popleft()
        subscription.updates.popleft()
        pending, resynced = subscription.updates_since(1)
        assert [u.seq for u in pending] == [3]
        assert resynced is True  # the gap outgrew the replay ring

    def test_wait_for_timeout_and_unknown_id(self):
        runtime = build_runtime()
        drive(runtime, 1)
        registry = runtime.planner.subscriptions
        subscription = runtime.subscribe("SUBSCRIBE SELECT TOTAL FROM ALL")
        updates, resynced, known = registry.wait_for(
            subscription.id, subscription.seq, timeout_s=0.05
        )
        assert (updates, resynced, known) == ([], False, True)
        assert registry.wait_for("sub-none", 0, 0.0) == ([], False, False)

    def test_census_names_every_subscription(self):
        runtime = build_runtime()
        drive(runtime, 1)
        subscription = runtime.subscribe(
            f"SUBSCRIBE SELECT TOPK(3) FROM ALL AT {ROUTER1} BY bytes"
        )
        census = runtime.planner.subscriptions.census()
        assert census["active"] == 1
        assert subscription.id in census["subscriptions"]
        assert census["updates_published"] >= 1


# ---------------------------------------------------------------------------
# the bit-identity contract


IDENTITY_QUERIES = (
    "SELECT TOTAL FROM ALL",
    "SELECT TOPK(5) FROM ALL BY bytes",
    f"SELECT TOPK(3) FROM ALL AT {ROUTER1} BY bytes",
    "SELECT GROUPBY(dst_port, 8) FROM ALL BY bytes",
    "SELECT TOTAL FROM TIME(120, 240) VS TIME(0, 120)",
)


class TestDeltaIdentity:
    def assert_identical(self, runtime, subscription, text):
        try:
            expected = cold(runtime, text)
        except FlowQLPlanningError:
            # re-execution can't answer right now (window not covered
            # yet, or a reconfig re-keyed the sites): the subscription
            # must be quiet, not serving what re-execution cannot
            assert subscription.views is None
            return
        update = subscription.latest()
        assert update is not None
        assert update.result.to_wire() == expected.to_wire()

    @pytest.mark.parametrize("text", IDENTITY_QUERIES)
    def test_identical_after_every_close(self, text):
        runtime = build_runtime()
        drive(runtime, 1)
        subscription = runtime.subscribe("SUBSCRIBE " + text)
        for epoch in range(1, 5):
            drive(runtime, 1, start=epoch)
            self.assert_identical(runtime, subscription, text)
        assert subscription.delta_refreshes > 0  # deltas, not rebuilds

    def test_identical_past_site_fold_compression(self):
        """Identity must survive the per-site fold outgrowing the
        partition node budget (the cold combine starts compressing).

        The maintained fold replays the cold combine's exact operation
        sequence, so its compressions land at the same points and the
        grouped answer stays bit-identical — this pins the regression
        where a flat uncompressed view drifted above the cold answer
        once compression set in.
        """
        text = f"SELECT GROUPBY(dst_port, 8) FROM ALL AT {ROUTER1} BY bytes"
        runtime = build_runtime()
        drive(runtime, 1, flows=150)
        subscription = runtime.subscribe("SUBSCRIBE " + text)
        for epoch in range(1, 12):
            drive(runtime, 1, start=epoch, flows=150)
            self.assert_identical(runtime, subscription, text)
        # the horizon must actually cross the onset, or this pins nothing
        folds = [
            fold
            for view in subscription.views
            for groups in view.site_trees.values()
            for fold in groups.values()
        ]
        assert any(fold.compressions > 0 for fold in folds)
        assert subscription.rebuilds == 0
        assert subscription.delta_refreshes == 11

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        text=st.sampled_from(IDENTITY_QUERIES[:2]),
        ops=st.lists(
            st.sampled_from(
                ["epoch", "join", "leave", "split", "merge"]
            ),
            min_size=2,
            max_size=5,
        ),
    )
    def test_identical_after_random_reconfig(self, text, ops):
        runtime = build_runtime()
        drive(runtime, 1)
        subscription = runtime.subscribe("SUBSCRIBE " + text)
        joined = []
        pod_live = False
        epoch = 1
        for op in ops:
            if op == "join" and not pod_live:
                site = f"network1/region1/router{9 + len(joined)}"
                runtime.site_join(site)
                joined.append(site)
            elif op == "leave" and joined:
                runtime.site_leave(joined.pop())
            elif op == "split" and not pod_live and not joined:
                runtime.level_split(
                    "router",
                    "pod",
                    {"pod1": [ROUTER1, ROUTER2]},
                    config=LevelConfig(
                        aggregator="flowtree", node_budget=2048
                    ),
                )
                pod_live = True
            elif op == "merge" and pod_live:
                runtime.level_merge("pod")
                pod_live = False
            drive(runtime, 1, start=epoch)
            epoch += 1
            self.assert_identical(runtime, subscription, text)

    def test_identical_across_split_and_merge(self):
        text = f"SELECT TOPK(3) FROM ALL AT {ROUTER1} BY bytes"
        runtime = build_runtime()
        drive(runtime, 1)
        subscription = runtime.subscribe("SUBSCRIBE " + text)
        runtime.level_split(
            "router",
            "pod",
            {"pod1": [ROUTER1, ROUTER2]},
            config=LevelConfig(aggregator="flowtree", node_budget=2048),
        )
        # the split re-keyed the AT site: the query no longer plans, so
        # the subscription goes quiet rather than serving a stale view
        drive(runtime, 1, start=1)
        assert subscription.latest().seq == 1  # no update published
        runtime.level_merge("pod")
        drive(runtime, 1, start=2)  # original labels are back
        self.assert_identical(runtime, subscription, text)

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        boundary=st.integers(min_value=1, max_value=3),
        epochs=st.integers(min_value=4, max_value=5),
    )
    def test_identical_across_restart_drill(self, boundary, epochs):
        """A crash-restart re-ids FlowDB entries: the folded-prefix
        check must force a rebuild, never a silent wrong delta."""
        text = "SELECT TOTAL FROM ALL"
        plan = FaultPlan(restarts=[RestartDrill("cloud", boundary)])
        runtime = build_runtime(faults=plan)
        drive(runtime, 1)
        subscription = runtime.subscribe("SUBSCRIBE " + text)
        for epoch in range(1, epochs):
            drive(runtime, 1, start=epoch)
            self.assert_identical(runtime, subscription, text)
        assert runtime._restarts == 1
        assert subscription.rebuilds >= 1

    def test_generation_bump_forces_rebuild(self):
        runtime = build_runtime()
        drive(runtime, 1)
        subscription = runtime.subscribe("SUBSCRIBE SELECT TOTAL FROM ALL")
        runtime.site_join("network1/region1/router9")
        drive(runtime, 1, start=1)
        rebuilt = subscription.latest()
        assert rebuilt.mode == MODE_REBUILD
        assert rebuilt.result.to_wire() == cold(
            runtime, "SELECT TOTAL FROM ALL"
        ).to_wire()

    def test_federated_deltas_ship_less_than_reexecution(self):
        """The point of the feature: maintaining the view costs the
        fresh partitions only, not the whole window again."""
        text = f"SELECT TOPK(5) FROM ALL AT {ROUTER1} BY bytes"
        runtime = build_runtime()
        drive(runtime, 1)
        subscription = runtime.subscribe("SUBSCRIBE " + text)
        seeded = subscription.shipped_bytes_total
        deltas = []
        for epoch in range(1, 4):
            drive(runtime, 1, start=epoch)
            update = subscription.latest()
            assert update.mode == MODE_DELTA
            deltas.append(update.shipped_bytes)
            reexecuted = cold(runtime, text)
            full = runtime.planner.last_plan.shipped_bytes
            assert update.result.to_wire() == reexecuted.to_wire()
            assert 0 < update.shipped_bytes < full
        assert subscription.shipped_bytes_total == seeded + sum(deltas)


# ---------------------------------------------------------------------------
# HTTP long-poll plumbing


class TestSubscribeOverHTTP:
    def test_subscribe_poll_resume_cancel(self):
        runtime = build_runtime()
        drive(runtime, 1)
        with ServePlane(runtime) as plane:
            endpoint = plane.start_background()
            with FlowQLClient(
                endpoint=endpoint, client_id="standing"
            ) as client:
                handle = client.subscribe("SUBSCRIBE SELECT TOTAL FROM ALL")
                first = handle.latest()
                assert first is not None and first.mode == MODE_INIT

                drive(runtime, 2, start=1)
                batch = handle.poll(wait_s=10.0)
                assert [u.seq for u in batch] == [2, 3]
                assert handle.cursor == 3
                remote = client.query("SELECT TOTAL FROM ALL")
                assert batch[-1].result.to_wire() == (
                    remote.result.to_wire()
                )

                # a reconnect at an old cursor replays exactly the gap
                resumed = HTTPSubscription(client, handle.id, first)
                replay = resumed.poll(wait_s=0.0)
                assert [u.seq for u in replay] == [2, 3]
                assert resumed.resynced is False

                handle.cancel()
                assert handle.poll(wait_s=0.0) == []
                # the server really dropped it: a fresh handle 404s
                orphan = HTTPSubscription(client, handle.id, None)
                assert orphan.poll(wait_s=0.0) == []
                assert orphan.cancelled is True

                census = client.health()
                assert census["subscriptions"]["active"] == 0
        runtime.shutdown()

    def test_poll_timeout_returns_empty_batch(self):
        runtime = build_runtime()
        drive(runtime, 1)
        with ServePlane(runtime) as plane:
            endpoint = plane.start_background()
            with FlowQLClient(
                endpoint=endpoint, client_id="patient"
            ) as client:
                handle = client.subscribe("SUBSCRIBE SELECT TOTAL FROM ALL")
                assert handle.poll(wait_s=0.2) == []  # no new close
                assert handle.cancelled is False
        runtime.shutdown()

"""Unit tests for scores and flow/packet records."""

import pytest

from repro.flows.records import EpochStats, FlowRecord, PacketRecord, Score


class TestScore:
    def test_addition(self):
        assert Score(1, 2, 3) + Score(4, 5, 6) == Score(5, 7, 9)

    def test_subtraction_and_negation(self):
        assert Score(5, 7, 9) - Score(4, 5, 6) == Score(1, 2, 3)
        assert -Score(1, 2, 3) == Score(-1, -2, -3)

    def test_zero_identity(self):
        s = Score(3, 4, 5)
        assert s + Score.zero() == s
        assert Score.zero().is_zero()
        assert not s.is_zero()

    def test_scale(self):
        assert Score(1, 100, 1).scale(10) == Score(10, 1000, 10)
        assert Score(3, 3, 3).scale(0.5) == Score(2, 2, 2)  # bankers' round

    def test_metric_lookup(self):
        s = Score(1, 2, 3)
        assert s.metric("packets") == 1
        assert s.metric("bytes") == 2
        assert s.metric("flows") == 3
        with pytest.raises(ValueError):
            s.metric("nope")


class TestFlowRecord:
    def test_score(self, make_key):
        record = FlowRecord(
            key=make_key(), packets=10, bytes=1000, first_seen=0.0,
            last_seen=5.0,
        )
        assert record.score() == Score(10, 1000, 1)
        assert record.duration == 5.0

    def test_rejects_negative_duration(self, make_key):
        with pytest.raises(ValueError):
            FlowRecord(
                key=make_key(), packets=1, bytes=1, first_seen=5.0,
                last_seen=0.0,
            )


class TestPacketRecord:
    def test_unsampled_score(self, make_key):
        packet = PacketRecord(key=make_key(), bytes=1500, timestamp=1.0)
        assert packet.score() == Score(1, 1500, 0)

    def test_sampled_score_rescales(self, make_key):
        packet = PacketRecord(
            key=make_key(), bytes=100, timestamp=1.0, sampled_1_in=10_000
        )
        score = packet.score()
        assert score.packets == 10_000
        assert score.bytes == 1_000_000
        assert score.flows == 0


class TestEpochStats:
    def test_observe_accumulates(self, make_key):
        stats = EpochStats()
        stats.observe(
            FlowRecord(
                key=make_key(), packets=2, bytes=200, first_seen=1.0,
                last_seen=2.0,
            )
        )
        stats.observe(
            FlowRecord(
                key=make_key(), packets=3, bytes=300, first_seen=0.5,
                last_seen=4.0,
            )
        )
        assert stats.records == 2
        assert stats.packets == 5
        assert stats.bytes == 500
        assert stats.start == 0.5
        assert stats.end == 4.0

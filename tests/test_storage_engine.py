"""Tests for the storage seam: codec framing, engines, segment log."""

import json
import os

import pytest

from repro.core.summary import TimeInterval
from repro.errors import StorageError
from repro.flowdb.db import FlowDB
from repro.flows.records import Score
from repro.flows.tree import Flowtree
from repro.storage import MemoryEngine, SegmentLogEngine, atomic_write_json
from repro.storage.codec import encode_record, read_payload, scan_records
from repro.storage.segment import MANIFEST_NAME, SEGMENT_DIR


def make_tree(policy, make_key, ports=(80, 443), salt=0):
    tree = Flowtree(policy, node_budget=None)
    for port in ports:
        tree.add(make_key(dst_port=port, src_port=1000 + salt),
                 Score(1, 100 * port, 1))
    return tree


def fill(engine, policy, make_key, epochs=2, sites=("a/r1", "b/r1")):
    """Append one summary per site per epoch and seal each epoch."""
    for epoch in range(epochs):
        interval = TimeInterval(epoch * 60.0, (epoch + 1) * 60.0)
        for site in sites:
            engine.append_summary(
                site, interval, make_tree(policy, make_key, salt=epoch)
            )
        engine.seal_epoch(epoch, meta={"closed_at": interval.end})
    engine.write_manifest({"epochs_closed": epochs})
    return epochs * len(sites)


class TestRecordFraming:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "seg.log"
        frames = [
            ({"location": f"site{i}", "start": 0.0, "end": 60.0},
             json.dumps({"i": i}).encode())
            for i in range(3)
        ]
        path.write_bytes(
            b"".join(encode_record(h, p) for h, p in frames)
        )
        with open(path, "rb") as handle:
            scanned = list(scan_records(handle))
        assert [h["location"] for h, _, _ in scanned] == [
            "site0", "site1", "site2"
        ]
        for (header, offset, length), (_, payload) in zip(scanned, frames):
            assert length == len(payload)
            assert read_payload(str(path), offset) == payload

    def test_truncated_tail_ends_scan_cleanly(self, tmp_path):
        path = tmp_path / "seg.log"
        whole = encode_record({"location": "a"}, b"payload-a")
        torn = encode_record({"location": "b"}, b"payload-b")
        path.write_bytes(whole + torn[: len(torn) - 7])
        with open(path, "rb") as handle:
            scanned = list(scan_records(handle))
        assert [h["location"] for h, _, _ in scanned] == ["a"]

    def test_corrupt_payload_fails_crc(self, tmp_path):
        path = tmp_path / "seg.log"
        frame = encode_record({"location": "a"}, b"payload-aaaa")
        # flip one payload byte; lengths and header stay intact
        corrupt = bytearray(frame)
        corrupt[-6] ^= 0xFF
        path.write_bytes(bytes(corrupt))
        with open(path, "rb") as handle:
            scanned = list(scan_records(handle))
        assert len(scanned) == 1  # scan reads headers only
        with pytest.raises(StorageError, match="CRC mismatch"):
            read_payload(str(path), scanned[0][1])

    def test_read_payload_at_bad_offset(self, tmp_path):
        path = tmp_path / "seg.log"
        path.write_bytes(encode_record({"location": "a"}, b"x"))
        with pytest.raises(StorageError):
            read_payload(str(path), 10_000)


class TestAtomicWriteJson:
    def test_replaces_and_fsyncs(self, tmp_path, monkeypatch):
        path = tmp_path / "doc.json"
        path.write_text("old")
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))
        )
        written = atomic_write_json(str(path), {"k": 1})
        assert json.loads(path.read_text()) == {"k": 1}
        assert written == len('{"k":1}')
        # once for the temp file, once for the directory
        assert len(synced) >= 2
        assert not (tmp_path / "doc.json.tmp").exists()


class TestMemoryEngine:
    def test_records_are_references(self, policy, make_key):
        engine = MemoryEngine()
        tree = make_tree(policy, make_key)
        engine.append_summary("a/r1", TimeInterval(0.0, 60.0), tree)
        record = next(engine.iter_summaries(policy))
        assert record.load() is tree  # zero serialization on this path

    def test_seal_and_shard_history(self, policy, make_key):
        engine = MemoryEngine()
        engine.record_shard("a/r1", 100)
        engine.record_shard("a/r1", 50)
        engine.seal_epoch(0)
        engine.seal_epoch(1)
        history = engine.sealed_epochs()
        assert history[0]["shards"] == {"a/r1": 150}
        assert "shards" not in history[1]

    def test_relabel_rewrites_records(self, policy, make_key):
        engine = MemoryEngine()
        engine.append_summary(
            "old", TimeInterval(0.0, 60.0), make_tree(policy, make_key)
        )
        engine.relabel("old", "new")
        assert next(engine.iter_summaries(policy)).location == "new"

    def test_stats_shape(self):
        stats = MemoryEngine().stats()
        assert stats["engine"] == "memory"
        assert stats["durable"] is False
        assert stats["records"] == 0
        assert stats["segments"] == 0


class TestSegmentLogEngine:
    def test_seal_writes_segment_per_epoch(self, policy, make_key, tmp_path):
        engine = SegmentLogEngine(str(tmp_path))
        total = fill(engine, policy, make_key, epochs=3)
        rows = engine.segments()
        assert len(rows) == 3
        assert sum(row["records"] for row in rows) == total
        assert engine.record_count() == total
        for row in rows:
            assert (tmp_path / SEGMENT_DIR / row["file"]).exists()

    def test_empty_epoch_seals_no_segment(self, tmp_path):
        engine = SegmentLogEngine(str(tmp_path))
        engine.seal_epoch(0)
        assert engine.segments() == []

    def test_reopen_recovers_lazily(self, policy, make_key, tmp_path):
        engine = SegmentLogEngine(str(tmp_path))
        db = FlowDB(engine=engine)
        for epoch in range(2):
            db.insert(
                "a/r1",
                TimeInterval(epoch * 60.0, (epoch + 1) * 60.0),
                make_tree(policy, make_key, salt=epoch),
            )
            engine.seal_epoch(epoch)
        engine.write_manifest({"epochs_closed": 2})
        original = db.merged_tree().to_dict()

        reopened = FlowDB(engine=SegmentLogEngine(str(tmp_path)))
        assert reopened.engine.read_manifest() == {"epochs_closed": 2}
        assert reopened.recover(policy) == 2
        stats = reopened.stats()
        assert stats["entries"] == 2
        assert stats["loaded_entries"] == 0  # payloads stay on disk
        assert reopened.merged_tree().to_dict() == original
        assert reopened.stats()["loaded_entries"] == 2

    def test_unlisted_segment_is_orphaned(self, policy, make_key, tmp_path):
        engine = SegmentLogEngine(str(tmp_path))
        fill(engine, policy, make_key, epochs=1)
        # a crash between segment write and manifest commit: the file
        # exists but no manifest names it
        stray = tmp_path / SEGMENT_DIR / "seg-00000099.log"
        stray.write_bytes(encode_record({"location": "x"}, b"{}"))
        reopened = SegmentLogEngine(str(tmp_path))
        assert reopened.stats()["orphan_segments"] == 1
        assert reopened.record_count() == 2  # orphan not recovered
        # the sequence steps past the orphan instead of reusing its name
        reopened.append_summary(
            "a/r1", TimeInterval(60.0, 120.0), make_tree(policy, make_key)
        )
        reopened.seal_epoch(1)
        assert reopened.segments()[-1]["file"] == "seg-00000100.log"

    def test_corrupt_manifest_rejected(self, tmp_path):
        SegmentLogEngine(str(tmp_path)).write_manifest({})
        (tmp_path / MANIFEST_NAME).write_text("{torn")
        with pytest.raises(StorageError, match="corrupt manifest"):
            SegmentLogEngine(str(tmp_path))

    def test_wrong_manifest_version_rejected(self, tmp_path):
        SegmentLogEngine(str(tmp_path)).write_manifest({})
        path = tmp_path / MANIFEST_NAME
        document = json.loads(path.read_text())
        document["format_version"] = 999
        path.write_text(json.dumps(document))
        with pytest.raises(StorageError, match="format version"):
            SegmentLogEngine(str(tmp_path))

    def test_manifest_names_missing_segment(self, policy, make_key,
                                            tmp_path):
        engine = SegmentLogEngine(str(tmp_path))
        fill(engine, policy, make_key, epochs=1)
        os.remove(tmp_path / SEGMENT_DIR / engine.segments()[0]["file"])
        reopened = SegmentLogEngine(str(tmp_path))
        with pytest.raises(StorageError, match="missing segment"):
            list(reopened.iter_summaries(policy))

    def test_relabel_chains_and_compact_makes_physical(
        self, policy, make_key, tmp_path
    ):
        engine = SegmentLogEngine(str(tmp_path))
        fill(engine, policy, make_key, epochs=2, sites=("a", "b"))
        engine.relabel("a", "mid")
        engine.relabel("mid", "final")  # chain: a -> final
        locations = {r.location for r in engine.iter_summaries(policy)}
        assert locations == {"final", "b"}
        assert engine.stats()["relabels_pending"] == 2

        result = engine.compact()
        assert result["segments_removed"] == 2
        assert result["dropped_records"] == 0
        assert engine.stats()["relabels_pending"] == 0
        rows = engine.segments()
        assert len(rows) == 1 and rows[0]["compacted"] is True
        # physical now: a fresh open with no relabel map reads new names
        reopened = SegmentLogEngine(str(tmp_path))
        assert {
            r.location for r in reopened.iter_summaries(policy)
        } == {"final", "b"}
        # superseded files are gone
        files = os.listdir(tmp_path / SEGMENT_DIR)
        assert files == [rows[0]["file"]]

    def test_compact_drops_corrupt_records(self, policy, make_key,
                                           tmp_path):
        engine = SegmentLogEngine(str(tmp_path))
        fill(engine, policy, make_key, epochs=1, sites=("a", "b"))
        seg_path = tmp_path / SEGMENT_DIR / engine.segments()[0]["file"]
        blob = bytearray(seg_path.read_bytes())
        # corrupt the last record's payload (CRC is the final 4 bytes)
        blob[-8] ^= 0xFF
        seg_path.write_bytes(bytes(blob))
        result = engine.compact()
        assert result["dropped_records"] == 1
        assert engine.record_count() == 1

    def test_auto_compaction_at_threshold(self, policy, make_key,
                                          tmp_path):
        engine = SegmentLogEngine(str(tmp_path), compact_threshold=3)
        fill(engine, policy, make_key, epochs=5, sites=("a",))
        assert engine.stats()["compactions"] >= 1
        assert len(engine.segments()) <= 3
        assert engine.record_count() == 5

    def test_compact_threshold_validated(self, tmp_path):
        with pytest.raises(StorageError):
            SegmentLogEngine(str(tmp_path), compact_threshold=1)

    def test_shards_recorded_in_segment_row(self, policy, make_key,
                                            tmp_path):
        engine = SegmentLogEngine(str(tmp_path))
        engine.record_shard("a", 42)
        fill(engine, policy, make_key, epochs=1, sites=("a",))
        assert engine.segments()[0]["shards"] == {"a": 42}


class TestFlowDBEngineSeam:
    def test_default_engine_is_memory(self):
        assert isinstance(FlowDB().engine, MemoryEngine)

    def test_insert_logs_to_engine(self, policy, make_key):
        db = FlowDB()
        db.insert("a/r1", TimeInterval(0.0, 60.0),
                  make_tree(policy, make_key))
        assert db.engine.record_count() == 1

    def test_memory_recover_rebuilds_index(self, policy, make_key):
        db = FlowDB()
        for site in ("a/r1", "b/r1"):
            db.insert(site, TimeInterval(0.0, 60.0),
                      make_tree(policy, make_key))
        before = db.merged_tree().to_dict()
        assert db.recover(policy) == 2
        assert db.merged_tree().to_dict() == before

    def test_relabel_moves_index_and_engine(self, policy, make_key):
        db = FlowDB()
        db.insert("old", TimeInterval(0.0, 60.0),
                  make_tree(policy, make_key))
        assert db.relabel("old", "new") == 1
        assert db.locations() == ["new"]
        assert db.relabel("ghost", "other") == 0
        assert db.relabel("new", "new") == 0  # self-rename short-circuits
        record = next(db.engine.iter_summaries(policy))
        assert record.location == "new"

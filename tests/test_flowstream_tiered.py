"""Tests for the tiered (router → region → cloud) Flowstream."""

import pytest

from repro.errors import PlacementError
from repro.flowstream.system import Flowstream
from repro.flowstream.tiered import TieredFlowstream
from repro.simulation.traffic import TrafficConfig, TrafficGenerator

SITES = [
    "region1/router1",
    "region1/router2",
    "region2/router1",
    "region2/router2",
]


@pytest.fixture(scope="module")
def generator():
    return TrafficGenerator(
        TrafficConfig(sites=tuple(SITES), flows_per_epoch=600), seed=31
    )


@pytest.fixture()
def loaded(generator):
    system = TieredFlowstream(
        sites=SITES, router_node_budget=4096, region_node_budget=4096
    )
    for epoch in range(2):
        for site in SITES:
            system.ingest(site, generator.epoch(site, epoch))
        system.close_epoch((epoch + 1) * 60.0)
    return system


class TestConstruction:
    def test_region_stores_shared(self):
        system = TieredFlowstream(sites=SITES)
        assert sorted(system.region_stores) == ["region1", "region2"]
        assert len(system.router_stores) == 4

    def test_needs_region_router_shape(self):
        with pytest.raises(PlacementError):
            TieredFlowstream(sites=["lonesite"])
        with pytest.raises(PlacementError):
            TieredFlowstream(sites=[])

    def test_unknown_site(self):
        system = TieredFlowstream(sites=SITES)
        with pytest.raises(PlacementError):
            system.ingest("region9/router9", [])


class TestDataPath:
    def test_regions_indexed_in_flowdb(self, loaded):
        assert sorted(loaded.db.locations()) == ["region1", "region2"]
        assert len(loaded.db) == 2 * 2  # regions x epochs

    def test_total_mass_preserved_through_tiers(self, loaded, generator):
        expected_flows = 0
        for epoch in range(2):
            for site in SITES:
                expected_flows += len(generator.epoch(site, epoch))
        result = loaded.query("SELECT TOTAL FROM ALL")
        assert result.scalar.flows == expected_flows

    def test_regional_queries(self, loaded, generator):
        per_region = loaded.query("SELECT TOTAL FROM ALL AT region1")
        full = loaded.query("SELECT TOTAL FROM ALL")
        assert 0 < per_region.scalar.bytes < full.scalar.bytes

    def test_wan_accounting(self, loaded):
        region_out = loaded.stats.level("region").summary_bytes_out
        assert loaded.wan_bytes() == region_out
        assert region_out > 0


class TestTieringEffect:
    def test_region_merge_reduces_wan_vs_flat(self, generator):
        """Merging at the region tier dedups shared generalized nodes,
        so fewer summary bytes cross the WAN than in the flat design
        (with equal tree budgets)."""
        flat = Flowstream(sites=SITES, node_budget=4096)
        tiered = TieredFlowstream(
            sites=SITES, router_node_budget=4096, region_node_budget=4096
        )
        for epoch in range(2):
            for site in SITES:
                flat.ingest(site, generator.epoch(site, epoch))
                tiered.ingest(site, generator.epoch(site, epoch))
            flat.close_epoch((epoch + 1) * 60.0)
            tiered.close_epoch((epoch + 1) * 60.0)
        assert tiered.wan_bytes() < flat.wan_summary_bytes()
        # and both systems agree on the global totals
        assert (
            tiered.query("SELECT TOTAL FROM ALL").scalar
            == flat.query("SELECT TOTAL FROM ALL").scalar
        )


class TestTieredPrivacy:
    def test_region_guard_applies_on_wan_hop(self, generator):
        from repro.datastore.privacy import (
            ExportRule,
            PrivacyGuard,
            PrivacyPolicy,
        )

        system = TieredFlowstream(
            sites=SITES, router_node_budget=2048, region_node_budget=2048
        )
        guard = PrivacyGuard(
            PrivacyPolicy(default=ExportRule(min_ip_prefix=16))
        )
        for store in system.region_stores.values():
            store.privacy = guard
        for site in SITES:
            system.ingest(site, generator.epoch(site, 0))
        system.close_epoch(60.0)
        assert guard.audit_log  # exports were audited
        for entry in system.db.entries():
            for node in entry.tree.nodes():
                key = entry.tree.key_of(node)
                assert key.feature_level("src_ip") <= 16
                assert key.feature_level("dst_ip") <= 16
        # aggregate answers survive anonymization
        total = system.query("SELECT TOTAL FROM ALL").scalar
        expected = sum(len(generator.epoch(site, 0)) for site in SITES)
        assert total.flows == expected

    def test_region_stores_keep_full_detail_locally(self, generator):
        from repro.datastore.privacy import (
            ExportRule,
            PrivacyGuard,
            PrivacyPolicy,
        )

        system = TieredFlowstream(
            sites=SITES[:2], router_node_budget=4096,
            region_node_budget=None,
        )
        guard = PrivacyGuard(
            PrivacyPolicy(default=ExportRule(min_ip_prefix=8))
        )
        for store in system.region_stores.values():
            store.privacy = guard
        records = generator.epoch(SITES[0], 0)
        system.ingest(SITES[0], records)
        system.close_epoch(60.0)
        region_store = system.region_stores["region1"]
        partition = region_store.catalog.all()[0]
        # the region's own stored partition answers host-level queries
        assert partition.summary.payload.query(records[0].key).bytes > 0


class TestSubtreeExport:
    def test_subtree_extraction(self, policy, make_key):
        from repro.flows.records import Score
        from repro.flows.tree import Flowtree

        tree = Flowtree(policy, node_budget=None)
        inside = make_key(src_ip="10.1.2.3")
        inside2 = make_key(src_ip="10.9.9.9", src_port=555)
        outside = make_key(src_ip="99.0.0.1")
        tree.add(inside, Score(1, 100, 1))
        tree.add(inside2, Score(1, 50, 1))
        tree.add(outside, Score(1, 900, 1))
        prefix = make_key(src_ip="10.0.0.0").with_levels((0, 8, 0, 0, 0))
        partial = tree.subtree(prefix)
        assert partial.query(inside).bytes == 100
        assert partial.query(inside2).bytes == 50
        assert partial.query(outside).bytes == 0
        assert partial.total().bytes == 150

    def test_subtree_missing_prefix_is_empty(self, policy, make_key):
        from repro.flows.records import Score
        from repro.flows.tree import Flowtree

        tree = Flowtree(policy, node_budget=None)
        tree.add(make_key(src_ip="99.0.0.1"), Score(1, 900, 1))
        prefix = make_key(src_ip="10.0.0.0").with_levels((0, 8, 0, 0, 0))
        assert tree.subtree(prefix).total().is_zero()

    def test_subtree_off_chain_key(self, policy, make_key):
        from repro.flows.records import Score
        from repro.flows.tree import Flowtree

        tree = Flowtree(policy, node_budget=None)
        key = make_key(src_ip="10.1.2.3")
        tree.add(key, Score(1, 100, 1))
        # off-chain pattern: src/8 + dst/8 both set is not canonical
        pattern = key.with_levels((0, 8, 8, 0, 0))
        partial = tree.subtree(pattern)
        assert partial.total().bytes == 100


class TestTierStatsRemoved:
    """The deprecation cycle is over: VolumeStats is the only stats API."""

    def test_tier_stats_alias_removed(self):
        import repro.flowstream.tiered as tiered_module

        with pytest.raises(AttributeError):
            tiered_module.TierStats

    def test_per_level_alias_attributes_removed(self):
        from repro.runtime.stats import VolumeStats

        stats = VolumeStats(["router", "region"])
        for legacy in ("router_summary_bytes", "region_summary_bytes"):
            with pytest.raises(AttributeError):
                getattr(stats, legacy)

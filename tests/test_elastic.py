"""Elastic topology: live reconfiguration with mass conservation.

The paper's Sec. V.A self-adaptation, as a testable contract.  The
hierarchy is a mutable, generation-versioned :class:`TopologyModel`;
``site_join``/``site_leave``/``level_split``/``level_merge``/
``migrate_store`` reshape it live between epoch closes, migrating
stranded summary state over the (possibly faulty) fabric.  The
anchor property: **root mass is conserved across arbitrary
reconfiguration sequences with a nonzero-drop fault plan running** —
migrations that cannot be delivered park as pending forwards and
redeliver on later closes, delayed but never lost.  A run that issues
zero reconfig ops never bumps the generation and stays bit-identical
to the pre-elastic runtime (pinned by check_regression's exact WAN
and mass comparisons, and spot-checked here).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlacementError
from repro.faults import FaultPlan, ReconfigDrill
from repro.runtime.config import LevelConfig
from repro.runtime.presets import network_4level_runtime, tiered_runtime
from repro.simulation.traffic import TrafficConfig, TrafficGenerator

SITES = ["east/r1", "east/r2", "west/r3"]


def make_runtime(**kwargs):
    return tiered_runtime(sites=list(SITES), **kwargs)


def traffic(sites=None, flows=120, seed=11):
    return TrafficGenerator(
        TrafficConfig(sites=tuple(sites or SITES), flows_per_epoch=flows),
        seed=seed,
    )


def ingest_epoch(runtime, generator, epoch, origin=None):
    """Feed one epoch into every current ingest site.

    ``origin`` maps a renamed site back to its trace label so the
    record count stays a pure function of (sites, epoch).
    """
    for site in runtime.ingest_sites():
        label = (origin or {}).get(site, site)
        runtime.ingest(site, generator.epoch(label, epoch))


def drain(runtime, start_close=10):
    """Close empty epochs until every parked export is delivered."""
    closes = 0
    while runtime.pending_exports() and closes < 12:
        closes += 1
        runtime.close_epoch((start_close + closes) * 60.0)
    assert runtime.pending_exports() == 0
    return closes


def root_flows(runtime):
    runtime.inject_faults(None)
    return runtime.query("SELECT TOTAL FROM ALL").scalar.flows


class TestGenerationVersioning:
    def test_static_run_stays_generation_zero(self):
        runtime = make_runtime()
        generator = traffic()
        for epoch in range(2):
            ingest_epoch(runtime, generator, epoch)
            runtime.close_epoch((epoch + 1) * 60.0)
        assert runtime.model.generation == 0
        assert runtime.model.ledger.op_counts == {}

    def test_each_op_bumps_generation(self):
        runtime = make_runtime()
        assert runtime.site_join("east/r9").location.path == "cloud/east/r9"
        assert runtime.model.generation == 1
        runtime.site_leave("east/r9")
        assert runtime.model.generation == 2
        runtime.migrate_store("east/r1", "west")
        assert runtime.model.generation == 3
        counts = runtime.model.ledger.op_counts
        assert counts == {
            "site_join": 1, "site_leave": 1, "migrate_store": 1
        }

    def test_generation_bump_notifies_subscribers(self):
        runtime = make_runtime()
        seen = []
        runtime.model.subscribe(lambda model, op: seen.append(op))
        runtime.site_join("west/r4")
        assert seen == ["site_join"]

    def test_query_cache_invalidated_by_reconfig(self):
        runtime = make_runtime()
        generator = traffic()
        ingest_epoch(runtime, generator, 0)
        runtime.close_epoch(60.0)
        runtime.query("SELECT TOTAL FROM ALL")
        hits_before = runtime.planner.cache.hits
        runtime.query("SELECT TOTAL FROM ALL")
        assert runtime.planner.cache.hits == hits_before + 1
        runtime.site_join("east/r9")
        # same text, new topology: must miss, not serve the stale entry
        runtime.query("SELECT TOTAL FROM ALL")
        assert runtime.planner.cache.hits == hits_before + 1


class TestSiteJoin:
    def test_joined_site_is_provisioned_and_ingestible(self):
        runtime = make_runtime()
        node = runtime.site_join("east/r9")
        assert node.level.name == "router"
        assert "east/r9" in runtime.ingest_sites()
        generator = traffic(sites=SITES + ["east/r9"])
        ingest_epoch(runtime, generator, 0)
        runtime.close_epoch(60.0)
        assert root_flows(runtime) == 120 * 4

    def test_join_under_unknown_parent_rejected(self):
        runtime = make_runtime()
        with pytest.raises(PlacementError):
            runtime.site_join("nowhere/r9")

    def test_duplicate_join_rejected(self):
        runtime = make_runtime()
        with pytest.raises(PlacementError):
            runtime.site_join("east/r1")


class TestSiteLeave:
    def test_live_mass_migrates_to_sibling(self):
        runtime = make_runtime()
        generator = traffic()
        ingest_epoch(runtime, generator, 0)
        moved = runtime.site_leave("east/r2", now=30.0)
        assert moved > 0
        assert runtime.model.ledger.migrated_summaries >= 1
        assert "east/r2" not in runtime.ingest_sites()
        runtime.close_epoch(60.0)
        assert root_flows(runtime) == 120 * 3

    def test_closed_epoch_history_survives_via_replicas(self):
        runtime = make_runtime()
        generator = traffic()
        ingest_epoch(runtime, generator, 0)
        runtime.close_epoch(60.0)
        before = root_flows(runtime)
        runtime.site_leave("east/r2")
        assert root_flows(runtime) == before

    def test_root_cannot_leave(self):
        runtime = make_runtime()
        with pytest.raises(PlacementError):
            runtime.site_leave("")

    def test_outage_parks_migration_then_redelivers(self):
        plan = FaultPlan.from_spec("outage=east:0-2")
        runtime = make_runtime(faults=plan)
        generator = traffic()
        ingest_epoch(runtime, generator, 0)
        moved = runtime.site_leave("east/r2", now=30.0)
        assert moved == 0
        assert len(runtime.model.ledger.pending) == 1
        runtime.close_epoch(60.0)
        drain(runtime)
        assert runtime.model.ledger.pending == []
        assert root_flows(runtime) == 120 * 3


class TestLevelSplitMerge:
    def test_split_rekeys_sites_and_conserves_mass(self):
        runtime = make_runtime()
        generator = traffic()
        ingest_epoch(runtime, generator, 0)
        runtime.close_epoch(60.0)
        created = runtime.level_split(
            "router", "pod", {"pod1": ["east/r1", "east/r2"]},
            config=LevelConfig(aggregator="flowtree", node_budget=2048),
        )
        assert [node.location.path for node in created] == [
            "cloud/east/pod1"
        ]
        assert sorted(runtime.ingest_sites()) == [
            "east/pod1/r1", "east/pod1/r2", "west/r3"
        ]
        assert root_flows(runtime) == 120 * 3
        # the re-keyed sites keep ingesting; the new tier exports too
        origin = {"east/pod1/r1": "east/r1", "east/pod1/r2": "east/r2"}
        ingest_epoch(runtime, generator, 1, origin=origin)
        runtime.close_epoch(120.0)
        assert root_flows(runtime) == 120 * 6

    def test_merge_restores_shape_and_conserves_mass(self):
        runtime = make_runtime()
        generator = traffic()
        runtime.level_split(
            "router", "pod", {"pod1": ["east/r1", "east/r2"]},
            config=LevelConfig(aggregator="flowtree", node_budget=2048),
        )
        origin = {"east/pod1/r1": "east/r1", "east/pod1/r2": "east/r2"}
        ingest_epoch(runtime, generator, 0, origin=origin)
        runtime.close_epoch(60.0)
        runtime.level_merge("pod", now=60.0)
        assert sorted(runtime.ingest_sites()) == sorted(SITES)
        assert "pod" not in [
            spec.name for spec in runtime.hierarchy.levels()
        ]
        assert root_flows(runtime) == 120 * 3
        ingest_epoch(runtime, generator, 1)
        runtime.close_epoch(120.0)
        assert root_flows(runtime) == 120 * 6

    def test_split_validates_groups(self):
        runtime = make_runtime()
        with pytest.raises(PlacementError):
            runtime.level_split("router", "pod", {})
        with pytest.raises(PlacementError):
            runtime.level_split(
                "router", "pod", {"p": ["east/r1", "west/r3"]}
            )
        with pytest.raises(PlacementError):
            runtime.level_split("router", "router", {"p": ["east/r1"]})


class TestMigrateStore:
    def test_rekeys_stores_and_pending_queues(self):
        plan = FaultPlan.from_spec("outage=east/r1:0-2")
        runtime = make_runtime(faults=plan)
        generator = traffic()
        ingest_epoch(runtime, generator, 0)
        runtime.close_epoch(60.0)  # r1's export parks under the outage
        assert runtime.pending_exports() == 1
        renames = runtime.migrate_store("east/r1", "west", now=70.0)
        assert renames == {"cloud/east/r1": "cloud/west/r1"}
        assert "west/r1" in runtime.ingest_sites()
        # the parked export re-delivers toward the *new* parent
        drain(runtime)
        assert root_flows(runtime) == 120 * 3

    def test_collision_rejected_before_any_mutation(self):
        runtime = make_runtime()
        runtime.site_join("west/r1")
        nodes_before = len(runtime.hierarchy.nodes())
        with pytest.raises(PlacementError):
            runtime.migrate_store("east/r1", "west")
        assert len(runtime.hierarchy.nodes()) == nodes_before
        assert "east/r1" in runtime.ingest_sites()


class TestAdaptiveBudgets:
    def test_pressure_grows_budget_within_clamps(self):
        runtime = tiered_runtime(
            sites=list(SITES), router_node_budget=64, region_node_budget=64
        )
        runtime.enable_adaptive_budgets()
        generator = traffic(flows=2000)
        for epoch in range(2):
            ingest_epoch(runtime, generator, epoch)
            runtime.close_epoch((epoch + 1) * 60.0)
        assert runtime.levels["router"].node_budget > 64
        assert runtime.model.ledger.op_counts.get("budget_resize", 0) >= 1
        assert runtime.model.generation == 0  # resizes don't bump

    def test_idle_level_shrinks_but_respects_min(self):
        runtime = tiered_runtime(sites=list(SITES))
        runtime.levels["router"].min_node_budget = 4096
        runtime.enable_adaptive_budgets()
        generator = traffic(flows=10)
        for epoch in range(3):
            ingest_epoch(runtime, generator, epoch)
            runtime.close_epoch((epoch + 1) * 60.0)
        assert runtime.levels["router"].node_budget == 4096

    def test_budget_floor_never_violates_chain_depth(self):
        runtime = tiered_runtime(sites=list(SITES))
        runtime.enable_adaptive_budgets()
        floor = runtime.policy.depth + 1
        tuner = runtime._budget_tuner
        proposed = tuner.propose(
            "router", budget=8, pressure=0.0, fullness=0.0, floor=floor,
            min_budget=1, max_budget=None,
        )
        assert proposed is None or proposed >= floor


class TestReconfigDrills:
    def test_drill_fires_once_after_named_epoch(self):
        plan = FaultPlan.from_spec("reconfig=leave:east/r2:0")
        runtime = make_runtime(faults=plan)
        generator = traffic()
        ingest_epoch(runtime, generator, 0)
        runtime.close_epoch(60.0)
        assert runtime.model.generation == 1
        assert "east/r2" not in runtime.ingest_sites()
        ingest_epoch(runtime, generator, 1)
        runtime.close_epoch(120.0)
        assert runtime.model.generation == 1  # not re-applied
        assert root_flows(runtime) == 120 * 3 + 120 * 2

    def test_spec_round_trip(self):
        plan = FaultPlan.from_spec(
            "reconfig=migrate:east/r1>west:2,reconfig=join:east/r9:0"
        )
        assert plan.reconfigs == [
            ReconfigDrill("migrate", "east/r1", 2, "west"),
            ReconfigDrill("join", "east/r9", 0),
        ]
        assert "reconfig[east/r1>west]=migrate@2" in plan.describe()

    @pytest.mark.parametrize(
        "spec",
        [
            "reconfig=explode:east/r1:0",
            "reconfig=leave:east/r1",
            "reconfig=migrate:east/r1:2",
            "reconfig=leave:east/r1:-1",
        ],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(PlacementError):
            FaultPlan.from_spec(spec)


class TestParallelPoolResync:
    def test_pool_reforks_on_generation_change(self):
        runtime = make_runtime(parallel=2)
        try:
            generator = traffic()
            ingest_epoch(runtime, generator, 0)
            runtime.close_epoch(60.0)
            runtime.site_join("east/r4")
            extended = traffic(sites=SITES + ["east/r4"])
            ingest_epoch(runtime, extended, 1)
            assert runtime._pool.generation == runtime.model.generation
            assert "east/r4" in runtime._pool.sites
            runtime.close_epoch(120.0)
            assert root_flows(runtime) == 120 * 3 + 120 * 4
        finally:
            runtime.shutdown()

    def test_mid_epoch_pool_mass_survives_reconfig(self):
        runtime = make_runtime(parallel=2)
        try:
            generator = traffic()
            ingest_epoch(runtime, generator, 0)  # lands in worker shards
            runtime.site_leave("east/r2", now=30.0)
            runtime.close_epoch(60.0)
            assert root_flows(runtime) == 120 * 3
        finally:
            runtime.shutdown()


OPS = st.lists(
    st.sampled_from(["join", "leave", "split", "merge", "migrate", "close"]),
    min_size=1,
    max_size=7,
)


class TestMassConservationProperty:
    @given(ops=OPS, drop=st.sampled_from([0.0, 0.3]), seed=st.integers(0, 7))
    @settings(max_examples=25, deadline=None)
    def test_root_mass_conserved_across_reconfig_sequences(
        self, ops, drop, seed
    ):
        """The anchor property: arbitrary reconfig sequences under a
        nonzero-drop fault plan never lose mass — migrations and
        exports may park, but recovery closes deliver everything."""
        plan = FaultPlan(seed=seed, drop_probability=drop)
        runtime = make_runtime(faults=plan)
        generator = traffic()
        joined = 0
        ingested = 0
        clock = 0.0
        ingest_epoch(runtime, generator, 0)
        ingested += 120 * len(runtime.ingest_sites())
        for op in ops:
            sites = runtime.ingest_sites()
            level_names = [spec.name for spec in runtime.hierarchy.levels()]
            if op == "join":
                joined += 1
                runtime.site_join(f"west/grown{joined}")
            elif op == "leave":
                leavable = [
                    site for site in sites if site.startswith("west/grown")
                ]
                if leavable:
                    runtime.site_leave(leavable[0], now=clock)
            elif op == "split":
                members = [
                    site for site in sites
                    if site in ("east/r1", "east/r2")
                ]
                if "pod" not in level_names and members:
                    runtime.level_split(
                        "router", "pod", {"pod1": members},
                        config=LevelConfig(
                            aggregator="flowtree", node_budget=2048
                        ),
                    )
            elif op == "merge":
                if "pod" in level_names:
                    runtime.level_merge("pod", now=clock)
            elif op == "migrate":
                if "east/r2" in sites:
                    runtime.migrate_store("east/r2", "west", now=clock)
                elif "west/r2" in sites:
                    runtime.migrate_store("west/r2", "east", now=clock)
            else:
                clock += 60.0
                runtime.close_epoch(clock)
        clock += 60.0
        runtime.close_epoch(clock)
        runtime.inject_faults(None)
        closes = 0
        while runtime.pending_exports() and closes < 12:
            closes += 1
            clock += 60.0
            runtime.close_epoch(clock)
        assert runtime.pending_exports() == 0
        assert runtime.model.ledger.pending == []
        assert root_flows(runtime) == ingested


class TestZeroReconfigIdentity:
    def test_four_level_preset_unchanged_by_elastic_seam(self):
        """Same preset, same trace: mass, WAN bytes, and volume stats
        must not depend on the elastic machinery existing."""
        outcomes = []
        for _ in range(2):
            runtime = network_4level_runtime(
                networks=1, regions_per_network=2, routers_per_region=2
            )
            generator = TrafficGenerator(
                TrafficConfig(
                    sites=tuple(runtime.ingest_sites()), flows_per_epoch=150
                ),
                seed=7,
            )
            for epoch in range(2):
                for site in runtime.ingest_sites():
                    runtime.ingest(site, generator.epoch(site, epoch))
                runtime.close_epoch((epoch + 1) * 60.0)
            outcomes.append(
                (
                    runtime.query("SELECT TOTAL FROM ALL").scalar,
                    runtime.wan_bytes(),
                    runtime.stats.epochs_closed,
                    runtime.model.generation,
                )
            )
        assert outcomes[0] == outcomes[1]
        assert outcomes[0][3] == 0

"""Tests for FlowDB save/load and the FlowQL LIMIT clause."""

import json

import pytest

from repro.core.summary import TimeInterval
from repro.errors import FlowQLSyntaxError, SchemaMismatchError, StorageError
from repro.flowdb.db import FlowDB
from repro.flowdb.persistence import load_flowdb, save_flowdb
from repro.flowql.executor import FlowQLExecutor
from repro.flowql.parser import parse
from repro.flows.flowkey import SRC_DST, GeneralizationPolicy
from repro.flows.records import Score
from repro.flows.tree import Flowtree


@pytest.fixture()
def loaded_db(policy, make_key):
    db = FlowDB()
    for epoch in range(2):
        for site in ("a/r1", "b/r1"):
            tree = Flowtree(policy, node_budget=None)
            for port in (80, 443, 53):
                tree.add(
                    make_key(dst_port=port, src_port=1000 + epoch),
                    Score(1, 100 * port, 1),
                )
            db.insert(
                location=site,
                interval=TimeInterval(epoch * 60.0, (epoch + 1) * 60.0),
                tree=tree,
            )
    return db


class TestPersistence:
    def test_roundtrip(self, loaded_db, policy, tmp_path):
        path = str(tmp_path / "flowdb.json")
        written = save_flowdb(loaded_db, path)
        assert written == 4
        restored = load_flowdb(path, policy)
        assert restored.stats() == loaded_db.stats()
        assert restored.locations() == loaded_db.locations()
        original = FlowQLExecutor(loaded_db).execute("SELECT TOTAL FROM ALL")
        reloaded = FlowQLExecutor(restored).execute("SELECT TOTAL FROM ALL")
        assert original.scalar == reloaded.scalar

    def test_queries_identical_after_reload(self, loaded_db, policy,
                                            tmp_path):
        path = str(tmp_path / "flowdb.json")
        save_flowdb(loaded_db, path)
        restored = load_flowdb(path, policy)
        for text in (
            "SELECT TOPK(5) FROM ALL BY bytes",
            "SELECT GROUPBY(dst_port, 16) FROM TIME(0, 60) AT a/r1",
        ):
            assert (
                FlowQLExecutor(loaded_db).execute(text).rows
                == FlowQLExecutor(restored).execute(text).rows
            )

    def test_missing_file(self, policy, tmp_path):
        with pytest.raises(StorageError):
            load_flowdb(str(tmp_path / "nope.json"), policy)

    def test_corrupt_file(self, policy, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(StorageError):
            load_flowdb(str(path), policy)

    def test_wrong_version(self, loaded_db, policy, tmp_path):
        path = tmp_path / "flowdb.json"
        save_flowdb(loaded_db, str(path))
        document = json.loads(path.read_text())
        document["format_version"] = 999
        path.write_text(json.dumps(document))
        with pytest.raises(StorageError):
            load_flowdb(str(path), policy)

    def test_wrong_policy(self, loaded_db, tmp_path):
        path = str(tmp_path / "flowdb.json")
        save_flowdb(loaded_db, path)
        other = GeneralizationPolicy.default_for(SRC_DST)
        with pytest.raises(SchemaMismatchError):
            load_flowdb(path, other)

    def test_budget_override(self, loaded_db, policy, tmp_path):
        path = str(tmp_path / "flowdb.json")
        save_flowdb(loaded_db, path)
        restored = load_flowdb(path, policy, merge_node_budget=128)
        assert restored.merge_node_budget == 128

    def test_empty_db_roundtrip(self, policy, tmp_path):
        path = str(tmp_path / "empty.json")
        assert save_flowdb(FlowDB(), path) == 0
        assert len(load_flowdb(path, policy)) == 0


class TestDurableSave:
    def test_save_fsyncs_before_and_after_rename(self, loaded_db,
                                                 tmp_path, monkeypatch):
        import os

        events = []
        real_fsync, real_replace = os.fsync, os.replace
        monkeypatch.setattr(
            os, "fsync",
            lambda fd: (events.append("fsync"), real_fsync(fd))[1],
        )
        monkeypatch.setattr(
            os, "replace",
            lambda a, b: (events.append("rename"), real_replace(a, b))[1],
        )
        save_flowdb(loaded_db, str(tmp_path / "flowdb.json"))
        # temp file fsynced before the rename, directory after it
        rename_at = events.index("rename")
        assert "fsync" in events[:rename_at]
        assert "fsync" in events[rename_at + 1:]

    def test_no_temp_file_left_behind(self, loaded_db, tmp_path):
        save_flowdb(loaded_db, str(tmp_path / "flowdb.json"))
        leftovers = [p for p in tmp_path.iterdir() if "tmp" in p.name]
        assert leftovers == []


class TestV1Migration:
    def test_migrate_v1_snapshot_into_segment_log(self, loaded_db, policy,
                                                  tmp_path):
        from repro.storage import SegmentLogEngine

        snapshot = str(tmp_path / "flowdb.json")
        save_flowdb(loaded_db, snapshot)

        data_dir = str(tmp_path / "data")
        migrated = load_flowdb(
            snapshot, policy, engine=SegmentLogEngine(data_dir)
        )
        assert migrated.engine.record_count() == len(loaded_db)
        migrated.engine.seal_epoch(0)
        migrated.engine.write_manifest({"migrated_from": "format-v1"})

        # the migrated store reopens from disk with the v1 content
        reopened = FlowDB(engine=SegmentLogEngine(data_dir))
        assert reopened.recover(policy) == len(loaded_db)
        assert (
            reopened.merged_tree().to_dict()
            == loaded_db.merged_tree().to_dict()
        )

    def test_migration_without_engine_stays_in_memory(self, loaded_db,
                                                      policy, tmp_path):
        from repro.storage.engine import MemoryEngine

        snapshot = str(tmp_path / "flowdb.json")
        save_flowdb(loaded_db, snapshot)
        restored = load_flowdb(snapshot, policy)
        assert isinstance(restored.engine, MemoryEngine)


class TestPendingQueueState:
    def make_queue(self, policy, make_key, count=3):
        from repro.core.summary import (
            DataSummary, Location, SummaryMeta,
        )
        from repro.faults.pending import PendingExport, PendingExportQueue

        queue = PendingExportQueue()
        for index in range(count):
            tree = Flowtree(policy, node_budget=None)
            tree.add(make_key(dst_port=80 + index), Score(1, 100, 1))
            summary = DataSummary(
                kind="flowtree",
                meta=SummaryMeta(
                    interval=TimeInterval(0.0, 60.0),
                    location=Location("a/r1"),
                ),
                payload=tree,
                size_bytes=1000 + index,
            )
            queue.park(
                PendingExport(
                    export_id=f"exp-{index}",
                    kind="forward",
                    summary=summary,
                    items=10 + index,
                    size_bytes=1000 + index,
                    origin="a/r1",
                    label=f"agg-{index}",
                    created_at=60.0,
                    attempts=index,
                )
            )
        queue.mark_delivered("exp-done")
        return queue

    def roundtrip(self, queue, policy):
        from repro.faults.pending import PendingExportQueue
        from repro.storage import decode_summary, encode_summary

        state = json.loads(json.dumps(queue.to_state(encode_summary)))
        return PendingExportQueue.from_state(
            state, lambda record: decode_summary(record, policy)
        )

    def test_roundtrip_preserves_order_ids_and_bytes(self, policy,
                                                     make_key):
        queue = self.make_queue(policy, make_key)
        restored = self.roundtrip(queue, policy)
        assert [e.export_id for e in restored.entries] == [
            e.export_id for e in queue.entries
        ]
        assert [e.attempts for e in restored.entries] == [0, 1, 2]
        assert restored.pending_bytes == queue.pending_bytes
        assert restored.pending_items == queue.pending_items
        assert restored._queued_ids == queue._queued_ids
        assert restored._delivered_ids == queue._delivered_ids

    def test_restored_queue_still_dedups(self, policy, make_key):
        from repro.faults.pending import PendingExport

        queue = self.make_queue(policy, make_key)
        restored = self.roundtrip(queue, policy)
        duplicate = PendingExport(
            export_id="exp-0", kind="forward", summary=None, items=1,
            size_bytes=1, origin="a/r1", label="agg", created_at=60.0,
        )
        assert restored.park(duplicate) is False  # still queued
        delivered = PendingExport(
            export_id="exp-done", kind="forward", summary=None, items=1,
            size_bytes=1, origin="a/r1", label="agg", created_at=60.0,
        )
        assert restored.park(delivered) is False  # already delivered

    def test_non_durable_entries_skipped_and_counted(self, policy,
                                                     make_key):
        from repro.core.summary import (
            DataSummary, Location, SummaryMeta,
        )
        from repro.faults.pending import PendingExport
        from repro.storage import encode_summary

        queue = self.make_queue(policy, make_key, count=1)
        queue.park(
            PendingExport(
                export_id="exp-raw", kind="forward",
                summary=DataSummary(
                    kind="rawstore",
                    meta=SummaryMeta(
                        interval=TimeInterval(0.0, 60.0),
                        location=Location("a/r1"),
                    ),
                    payload={"rows": []},
                    size_bytes=10,
                ),
                items=1, size_bytes=10, origin="a/r1", label="raw",
                created_at=60.0,
            )
        )
        state = queue.to_state(encode_summary)
        assert state["skipped"] == 1
        restored = self.roundtrip(queue, policy)
        assert len(restored) == 1
        # the skipped id must not linger as queued: the entry is gone,
        # so a future park of the same id must be allowed again
        assert "exp-raw" not in restored._queued_ids


class TestLimitClause:
    def test_parse_limit(self):
        query = parse("SELECT TOPK(10) FROM ALL LIMIT 3")
        assert query.limit == 3

    def test_limit_truncates_rows(self, loaded_db):
        executor = FlowQLExecutor(loaded_db)
        unlimited = executor.execute("SELECT GROUPBY(dst_port, 16) FROM ALL")
        limited = executor.execute(
            "SELECT GROUPBY(dst_port, 16) FROM ALL LIMIT 1"
        )
        assert len(unlimited.rows) == 3
        assert len(limited.rows) == 1
        assert limited.rows[0] == unlimited.rows[0]

    def test_limit_after_metric(self, loaded_db):
        result = FlowQLExecutor(loaded_db).execute(
            "SELECT TOPK(10) FROM ALL BY packets LIMIT 2"
        )
        assert len(result.rows) == 2

    def test_invalid_limit(self):
        with pytest.raises(FlowQLSyntaxError):
            parse("SELECT TOPK(10) FROM ALL LIMIT 0")
        with pytest.raises(FlowQLSyntaxError):
            parse("SELECT TOPK(10) FROM ALL LIMIT x")

    def test_limit_on_scalar_is_noop(self, loaded_db):
        result = FlowQLExecutor(loaded_db).execute(
            "SELECT TOTAL FROM ALL LIMIT 5"
        )
        assert result.scalar is not None

"""Tests for FlowDB save/load and the FlowQL LIMIT clause."""

import json

import pytest

from repro.core.summary import TimeInterval
from repro.errors import FlowQLSyntaxError, SchemaMismatchError, StorageError
from repro.flowdb.db import FlowDB
from repro.flowdb.persistence import load_flowdb, save_flowdb
from repro.flowql.executor import FlowQLExecutor
from repro.flowql.parser import parse
from repro.flows.flowkey import SRC_DST, GeneralizationPolicy
from repro.flows.records import Score
from repro.flows.tree import Flowtree


@pytest.fixture()
def loaded_db(policy, make_key):
    db = FlowDB()
    for epoch in range(2):
        for site in ("a/r1", "b/r1"):
            tree = Flowtree(policy, node_budget=None)
            for port in (80, 443, 53):
                tree.add(
                    make_key(dst_port=port, src_port=1000 + epoch),
                    Score(1, 100 * port, 1),
                )
            db.insert(
                location=site,
                interval=TimeInterval(epoch * 60.0, (epoch + 1) * 60.0),
                tree=tree,
            )
    return db


class TestPersistence:
    def test_roundtrip(self, loaded_db, policy, tmp_path):
        path = str(tmp_path / "flowdb.json")
        written = save_flowdb(loaded_db, path)
        assert written == 4
        restored = load_flowdb(path, policy)
        assert restored.stats() == loaded_db.stats()
        assert restored.locations() == loaded_db.locations()
        original = FlowQLExecutor(loaded_db).execute("SELECT TOTAL FROM ALL")
        reloaded = FlowQLExecutor(restored).execute("SELECT TOTAL FROM ALL")
        assert original.scalar == reloaded.scalar

    def test_queries_identical_after_reload(self, loaded_db, policy,
                                            tmp_path):
        path = str(tmp_path / "flowdb.json")
        save_flowdb(loaded_db, path)
        restored = load_flowdb(path, policy)
        for text in (
            "SELECT TOPK(5) FROM ALL BY bytes",
            "SELECT GROUPBY(dst_port, 16) FROM TIME(0, 60) AT a/r1",
        ):
            assert (
                FlowQLExecutor(loaded_db).execute(text).rows
                == FlowQLExecutor(restored).execute(text).rows
            )

    def test_missing_file(self, policy, tmp_path):
        with pytest.raises(StorageError):
            load_flowdb(str(tmp_path / "nope.json"), policy)

    def test_corrupt_file(self, policy, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(StorageError):
            load_flowdb(str(path), policy)

    def test_wrong_version(self, loaded_db, policy, tmp_path):
        path = tmp_path / "flowdb.json"
        save_flowdb(loaded_db, str(path))
        document = json.loads(path.read_text())
        document["format_version"] = 999
        path.write_text(json.dumps(document))
        with pytest.raises(StorageError):
            load_flowdb(str(path), policy)

    def test_wrong_policy(self, loaded_db, tmp_path):
        path = str(tmp_path / "flowdb.json")
        save_flowdb(loaded_db, path)
        other = GeneralizationPolicy.default_for(SRC_DST)
        with pytest.raises(SchemaMismatchError):
            load_flowdb(path, other)

    def test_budget_override(self, loaded_db, policy, tmp_path):
        path = str(tmp_path / "flowdb.json")
        save_flowdb(loaded_db, path)
        restored = load_flowdb(path, policy, merge_node_budget=128)
        assert restored.merge_node_budget == 128

    def test_empty_db_roundtrip(self, policy, tmp_path):
        path = str(tmp_path / "empty.json")
        assert save_flowdb(FlowDB(), path) == 0
        assert len(load_flowdb(path, policy)) == 0


class TestLimitClause:
    def test_parse_limit(self):
        query = parse("SELECT TOPK(10) FROM ALL LIMIT 3")
        assert query.limit == 3

    def test_limit_truncates_rows(self, loaded_db):
        executor = FlowQLExecutor(loaded_db)
        unlimited = executor.execute("SELECT GROUPBY(dst_port, 16) FROM ALL")
        limited = executor.execute(
            "SELECT GROUPBY(dst_port, 16) FROM ALL LIMIT 1"
        )
        assert len(unlimited.rows) == 3
        assert len(limited.rows) == 1
        assert limited.rows[0] == unlimited.rows[0]

    def test_limit_after_metric(self, loaded_db):
        result = FlowQLExecutor(loaded_db).execute(
            "SELECT TOPK(10) FROM ALL BY packets LIMIT 2"
        )
        assert len(result.rows) == 2

    def test_invalid_limit(self):
        with pytest.raises(FlowQLSyntaxError):
            parse("SELECT TOPK(10) FROM ALL LIMIT 0")
        with pytest.raises(FlowQLSyntaxError):
            parse("SELECT TOPK(10) FROM ALL LIMIT x")

    def test_limit_on_scalar_is_noop(self, loaded_db):
        result = FlowQLExecutor(loaded_db).execute(
            "SELECT TOTAL FROM ALL LIMIT 5"
        )
        assert result.scalar is not None

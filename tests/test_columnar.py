"""Differential tests for columnar batches and the vectorized walk.

The contract under test is bit-exactness: encoding records columnar and
ingesting them through :meth:`Flowtree.ingest_columnar` must produce
*the same tree* — node for node, seq for seq, compression for
compression — as the scalar ``add_many`` over the same records in the
same order, for any budget and any interleaving of chunk boundaries.
"""

from __future__ import annotations

import random
from typing import List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchemaMismatchError
from repro.flows.columnar import (
    HAVE_NUMPY,
    ColumnarBatch,
    ColumnarEncodeError,
)
from repro.flows.features import Feature
from repro.flows.flowkey import FIVE_TUPLE, FeatureSchema, GeneralizationPolicy
from repro.flows.records import FlowRecord, PacketRecord
from repro.flows.tree import Flowtree

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="columnar batches need numpy"
)

SCHEMA = FeatureSchema(
    "columnar_pair", (Feature("hi", bits=8), Feature("lo", bits=8))
)
POLICY = GeneralizationPolicy.default_for(SCHEMA)


def make_records(
    count: int, seed: int, alphabet: int = 40
) -> List[FlowRecord]:
    """Deterministic records over a small key alphabet (forces dups)."""
    rng = random.Random(seed)
    records = []
    for i in range(count):
        key = SCHEMA.key(
            hi=rng.randrange(min(alphabet, 256)),
            lo=rng.randrange(min(alphabet, 256)),
        )
        packets = rng.randrange(1, 50)
        records.append(
            FlowRecord(
                key=key,
                packets=packets,
                bytes=packets * rng.randrange(64, 1500),
                first_seen=float(i),
                last_seen=float(i) + rng.uniform(0, 9),
            )
        )
    return records


def tree_state(tree: Flowtree):
    return (tree.snapshot_state(), tree._next_seq, tree._compressions)


class TestEncodeDecode:
    @given(
        count=st.integers(min_value=0, max_value=120),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    @settings(max_examples=30, deadline=None)
    def test_round_trip(self, count, seed):
        records = make_records(count, seed)
        batch = ColumnarBatch.encode(records, SCHEMA)
        assert len(batch) == count
        assert batch.decode(SCHEMA) == records

    def test_five_tuple_round_trip(self, random_flows):
        records = random_flows(count=150, seed=3)
        batch = ColumnarBatch.encode(records, FIVE_TUPLE)
        assert batch.decode(FIVE_TUPLE) == records

    def test_pack_unpack_round_trip(self):
        records = make_records(90, seed=11)
        batch = ColumnarBatch.encode(records, SCHEMA)
        buf = bytearray(ColumnarBatch.packed_nbytes(128, batch.arity))
        written = batch.pack_into(buf)
        assert written <= len(buf)
        clone = ColumnarBatch.unpack_from(SCHEMA.name, buf)
        assert clone.decode(SCHEMA) == records

    def test_rejects_packet_records(self, make_key):
        packet = PacketRecord(key=make_key(), bytes=64, timestamp=0.0)
        with pytest.raises(ColumnarEncodeError):
            ColumnarBatch.encode([packet], FIVE_TUPLE)

    def test_rejects_generalized_keys(self):
        record = make_records(1, seed=0)[0]
        general = FlowRecord(
            key=record.key.generalize("hi", 4),
            packets=1,
            bytes=100,
            first_seen=0.0,
            last_seen=0.0,
        )
        with pytest.raises(ColumnarEncodeError):
            ColumnarBatch.encode([general], SCHEMA)

    def test_rejects_oversized_counters(self):
        record = make_records(1, seed=0)[0]
        huge = FlowRecord(
            key=record.key,
            packets=1,
            bytes=2**70,  # unbounded python int; int64 would wrap
            first_seen=0.0,
            last_seen=0.0,
        )
        with pytest.raises(ColumnarEncodeError):
            ColumnarBatch.encode([huge], SCHEMA)

    def test_schema_mismatch(self):
        batch = ColumnarBatch.encode(make_records(5, seed=1), SCHEMA)
        with pytest.raises(SchemaMismatchError):
            batch.decode(FIVE_TUPLE)


class TestVectorizedIngestDifferential:
    @given(
        count=st.integers(min_value=1, max_value=400),
        seed=st.integers(min_value=0, max_value=2**20),
        alphabet=st.sampled_from([6, 25, 120]),
        budget=st.sampled_from([None, 24, 64, 256]),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_scalar_bit_for_bit(self, count, seed, alphabet, budget):
        records = make_records(count, seed, alphabet=alphabet)
        scalar = Flowtree(POLICY, node_budget=budget)
        scalar.add_many((r.key, r.score()) for r in records)
        vectorized = Flowtree(POLICY, node_budget=budget)
        vectorized.ingest_columnar(ColumnarBatch.encode(records, SCHEMA))
        assert tree_state(vectorized) == tree_state(scalar)

    @given(
        seed=st.integers(min_value=0, max_value=2**20),
        split=st.integers(min_value=1, max_value=299),
    )
    @settings(max_examples=20, deadline=None)
    def test_chunked_finalize_matches_one_batch(self, seed, split):
        """Slot-sized chunks of one logical batch compress identically."""
        records = make_records(300, seed, alphabet=30)
        scalar = Flowtree(POLICY, node_budget=48)
        scalar.add_many((r.key, r.score()) for r in records)
        chunked = Flowtree(POLICY, node_budget=48)
        chunked.ingest_columnar(
            ColumnarBatch.encode(records[:split], SCHEMA), finalize=False
        )
        chunked.ingest_columnar(
            ColumnarBatch.encode(records[split:], SCHEMA), finalize=True
        )
        assert tree_state(chunked) == tree_state(scalar)

    def test_five_tuple_traffic_matches_scalar(self, traffic_generator):
        policy = GeneralizationPolicy.default_for(FIVE_TUPLE)
        records = traffic_generator.epoch("region1/router1", 0)
        for budget in (None, 512):
            scalar = Flowtree(policy, node_budget=budget)
            scalar.add_many((r.key, r.score()) for r in records)
            vectorized = Flowtree(policy, node_budget=budget)
            vectorized.ingest_columnar(
                ColumnarBatch.encode(records, FIVE_TUPLE)
            )
            assert tree_state(vectorized) == tree_state(scalar)

    def test_empty_batch_is_noop(self):
        tree = Flowtree(POLICY, node_budget=64)
        assert tree.ingest_columnar(ColumnarBatch.encode([], SCHEMA)) == 0
        assert tree.node_count == 1


class LowBitsFeature(Feature):
    """A feature with custom masking (keeps *low* bits, not high)."""

    def mask(self, value: int, level: int) -> int:
        if level == 0:
            return 0
        return value & ((1 << level) - 1)


class TestCustomMaskFallback:
    def test_falls_back_to_scalar_closures(self):
        schema = FeatureSchema(
            "custom_mask_pair",
            (LowBitsFeature("a", bits=8), Feature("b", bits=8)),
        )
        policy = GeneralizationPolicy.default_for(schema)
        assert policy.bitmask_rows() is None
        rng = random.Random(9)
        records = [
            FlowRecord(
                key=schema.key(a=rng.randrange(32), b=rng.randrange(32)),
                packets=1,
                bytes=rng.randrange(64, 1500),
                first_seen=float(i),
                last_seen=float(i),
            )
            for i in range(200)
        ]
        scalar = Flowtree(policy, node_budget=64)
        scalar.add_many((r.key, r.score()) for r in records)
        fallback = Flowtree(policy, node_budget=64)
        fallback.ingest_columnar(ColumnarBatch.encode(records, schema))
        assert tree_state(fallback) == tree_state(scalar)

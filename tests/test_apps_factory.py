"""Tests for the smart-factory applications."""

import pytest

from repro.apps.predictive_maintenance import (
    FAILURE_VIBRATION,
    PredictiveMaintenanceApp,
)
from repro.apps.process_mining import ProcessMiningApp
from repro.apps.supply_chain import SupplyChainApp
from repro.control.manager import Manager
from repro.core.summary import LineageLog, Location
from repro.datastore.storage import RoundRobinStorage
from repro.datastore.store import DataStore
from repro.simulation.factory import MachineState, build_factory


def drive_factory(workload, manager, app, hours, step_seconds=30.0,
                  epoch_seconds=600.0):
    """Feed vibration/temperature readings, closing epochs and running
    the app at epoch boundaries."""
    store = manager.stores()[0]
    t = 0.0
    end = hours * 3600.0
    next_epoch = epoch_seconds
    while t < end:
        t += step_seconds
        for machine in workload.machines:
            for sensor in machine.sensors:
                reading = sensor.reading_at(t)
                store.ingest(sensor.sensor_id, reading, t,
                             size_bytes=reading.size_bytes)
        if t >= next_epoch:
            manager.close_epochs(t)
            app.on_epoch(manager, t)
            next_epoch += epoch_seconds


@pytest.fixture()
def setup():
    workload = build_factory(lines=1, machines_per_line=3, seed=11)
    # accelerate wear so failures land inside a short simulation
    for index, machine in enumerate(workload.machines):
        machine.wear_rate_per_hour = 0.25 + 0.05 * index
    manager = Manager()
    store = DataStore(workload.root, RoundRobinStorage(10**8))
    manager.register_store(store)
    return workload, manager


class TestPredictiveMaintenance:
    def test_without_app_machines_fail(self, setup):
        workload, manager = setup
        for machine in workload.machines:
            machine.wear_at(6 * 3600.0)
        assert any(
            machine.state is MachineState.FAILED
            for machine in workload.machines
        )

    def test_app_schedules_maintenance_before_failure(self, setup):
        workload, manager = setup
        app = PredictiveMaintenanceApp(
            workload, bin_seconds=60.0, horizon_seconds=2 * 3600.0
        )
        app.deploy(manager)
        drive_factory(workload, manager, app, hours=6)
        assert app.decisions, "app never scheduled maintenance"
        # every machine survived: maintenance preempted failure
        assert all(
            machine.state is not MachineState.FAILED
            for machine in workload.machines
        )
        assert all(not machine.failures for machine in workload.machines)

    def test_decisions_carry_predictions(self, setup):
        workload, manager = setup
        app = PredictiveMaintenanceApp(
            workload, bin_seconds=60.0, horizon_seconds=2 * 3600.0
        )
        app.deploy(manager)
        drive_factory(workload, manager, app, hours=5)
        for decision in app.decisions:
            assert decision.predicted_failure_in <= 2 * 3600.0
            assert decision.trend_slope > 0

    def test_reports_emitted(self, setup):
        workload, manager = setup
        app = PredictiveMaintenanceApp(
            workload, bin_seconds=60.0, horizon_seconds=2 * 3600.0
        )
        app.deploy(manager)
        drive_factory(workload, manager, app, hours=5)
        kinds = {report.kind for report in app.reports}
        assert kinds == {"maintenance-scheduled"}

    def test_failure_vibration_constant(self):
        # the signature must exceed the healthy baseline
        assert FAILURE_VIBRATION > 2.0


class TestProcessMining:
    def test_finds_most_worn_machine(self, setup):
        workload, manager = setup
        # make machine 3 degrade far faster than the others
        workload.machines[0].wear_rate_per_hour = 0.01
        workload.machines[1].wear_rate_per_hour = 0.01
        workload.machines[2].wear_rate_per_hour = 0.30
        app = ProcessMiningApp(workload, bin_seconds=300.0)
        app.deploy(manager)
        drive_factory(workload, manager, app, hours=3)
        assert app.line_reports
        latest = app.line_reports[-1]
        assert latest.worst_machine == workload.machines[2].machine_id
        assert latest.spread > 0

    def test_health_in_unit_range(self, setup):
        workload, manager = setup
        app = ProcessMiningApp(workload, bin_seconds=300.0)
        app.deploy(manager)
        drive_factory(workload, manager, app, hours=2)
        for snapshot in app.line_reports:
            assert 0.0 <= snapshot.worst_health <= 1.0
            assert 0.0 <= snapshot.mean_health <= 1.0


class TestProcessMiningEvents:
    def test_event_log_report(self, setup):
        from repro.simulation.production import ProductionLineSimulator

        workload, manager = setup
        machines = workload.lines["line1"]
        machines[1].wear = 0.9
        simulator = ProductionLineSimulator(
            machines, base_processing_seconds=10.0, wear_gain=3.0, seed=2
        )
        events = simulator.run(until=3600.0, interarrival_seconds=30.0)
        app = ProcessMiningApp(workload)
        report = app.mine_events("line1", events, now=3600.0)
        assert report.kind == "line-process-analysis"
        assert report.body["bottleneck"] == machines[1].machine_id
        assert report.body["potential_speedup"] > 0.2
        assert report.body["throughput_per_hour"] > 0


class TestSupplyChain:
    def test_trace_back_and_forward(self):
        lineage = LineageLog()
        ingest = lineage.record(
            "ingest", location=Location("hq/factory1/line1"), timestamp=0.0
        )
        aggregate = lineage.record(
            "aggregate",
            inputs=[ingest.lineage_id],
            location=Location("hq/factory1"),
            timestamp=60.0,
        )
        merge = lineage.record(
            "merge",
            inputs=[aggregate.lineage_id],
            location=Location("hq"),
            timestamp=120.0,
        )
        app = SupplyChainApp(lineage)
        back = app.trace_back(merge.lineage_id, now=130.0)
        assert {r.lineage_id for r in back.steps} == {
            ingest.lineage_id, aggregate.lineage_id, merge.lineage_id,
        }
        assert back.locations == ["hq", "hq/factory1", "hq/factory1/line1"]
        forward = app.trace_forward(ingest.lineage_id, now=140.0)
        assert {r.lineage_id for r in forward.steps} == {
            aggregate.lineage_id, merge.lineage_id,
        }
        assert len(app.reports) == 2

    def test_no_requirements(self):
        app = SupplyChainApp(LineageLog())
        assert app.requirements() == []
        assert app.on_epoch(Manager(), 0.0) == []

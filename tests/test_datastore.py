"""Tests for the data store: ingest, epochs, queries, federation."""

import pytest

from repro.core.flowtree import FlowtreePrimitive
from repro.core.primitive import QueryRequest
from repro.core.summary import Location
from repro.core.timebin import TimeBinStatistics
from repro.datastore.aggregator import Aggregator, prefix_filter
from repro.datastore.storage import RoundRobinStorage
from repro.datastore.store import DataStore
from repro.datastore.triggers import RawTrigger, SummaryTrigger
from repro.errors import StorageError
from repro.hierarchy.network import NetworkFabric
from repro.hierarchy.topology import network_monitoring_hierarchy

LOC1 = Location("cloud/network/region1/router1")
LOC2 = Location("cloud/network/region2/router1")


@pytest.fixture()
def fabric():
    return NetworkFabric(
        network_monitoring_hierarchy(regions=2, routers_per_region=1)
    )


@pytest.fixture()
def store(fabric):
    return DataStore(LOC1, RoundRobinStorage(10**7), fabric=fabric)


@pytest.fixture()
def flow_store(store, policy):
    store.install_aggregator(
        Aggregator("ft", FlowtreePrimitive(LOC1, policy, node_budget=1024))
    )
    return store


def fill_epochs(store, random_flows, epochs=3, per_epoch=100):
    for epoch in range(epochs):
        for record in random_flows(per_epoch, seed=epoch, epoch=epoch):
            store.ingest("flows", record, record.first_seen, size_bytes=48)
        store.close_epoch((epoch + 1) * 60.0)


class TestAggregators:
    def test_install_and_duplicate(self, store, policy):
        store.install_aggregator(
            Aggregator("a", FlowtreePrimitive(LOC1, policy))
        )
        with pytest.raises(StorageError):
            store.install_aggregator(
                Aggregator("a", FlowtreePrimitive(LOC1, policy))
            )

    def test_remove(self, store, policy):
        store.install_aggregator(
            Aggregator("a", FlowtreePrimitive(LOC1, policy))
        )
        store.remove_aggregator("a")
        with pytest.raises(StorageError):
            store.aggregator("a")
        with pytest.raises(StorageError):
            store.remove_aggregator("a")

    def test_stream_routing(self, store):
        vibration = Aggregator(
            "vib",
            TimeBinStatistics(LOC1, bin_seconds=1.0),
            stream_filter=prefix_filter("machine1/vibration"),
        )
        temperature = Aggregator(
            "temp",
            TimeBinStatistics(LOC1, bin_seconds=1.0),
            stream_filter=prefix_filter("machine1/temperature"),
        )
        store.install_aggregator(vibration)
        store.install_aggregator(temperature)
        store.ingest("machine1/vibration", 2.0, 0.5)
        store.ingest("machine1/vibration", 2.1, 0.6)
        store.ingest("machine1/temperature", 45.0, 0.5)
        assert vibration.items_this_epoch == 2
        assert temperature.items_this_epoch == 1

    def test_item_projection(self, store):
        class Reading:
            value = 7.5

        aggregator = Aggregator(
            "x",
            TimeBinStatistics(LOC1),
            item_of=lambda reading: reading.value,
        )
        store.install_aggregator(aggregator)
        store.ingest("s", Reading(), 0.0)
        stats = aggregator.primitive.query(QueryRequest("stats", {}))
        assert stats.mean == 7.5


class TestEpochs:
    def test_close_creates_partitions(self, flow_store, random_flows):
        fill_epochs(flow_store, random_flows, epochs=2)
        assert len(flow_store.catalog) == 2
        partitions = flow_store.catalog.for_aggregator("ft")
        assert partitions[0].summary.kind == "flowtree"
        assert partitions[0].summary.meta.lineage_id is not None

    def test_idle_aggregators_skip_partitions(self, flow_store):
        created = flow_store.close_epoch(60.0)
        assert created == []

    def test_lineage_recorded(self, flow_store, random_flows):
        fill_epochs(flow_store, random_flows, epochs=1)
        partition = flow_store.catalog.all()[0]
        record = flow_store.lineage.get(partition.summary.meta.lineage_id)
        assert record.operation == "aggregate"
        assert record.location == LOC1


class TestTriggers:
    def test_raw_trigger_on_ingest(self, flow_store, make_key, random_flows):
        fired = []
        flow_store.install_raw_trigger(
            RawTrigger("big-flow", predicate=lambda r: r.bytes > 10**9)
        )
        flow_store.subscribe_triggers(fired.append)
        from repro.flows.records import FlowRecord

        small = FlowRecord(
            key=make_key(), packets=1, bytes=100, first_seen=0, last_seen=1
        )
        big = FlowRecord(
            key=make_key(), packets=1, bytes=2 * 10**9, first_seen=0,
            last_seen=1,
        )
        flow_store.ingest("flows", small, 0.0)
        flow_store.ingest("flows", big, 1.0)
        assert len(fired) == 1
        assert fired[0].trigger_id == "big-flow"

    def test_summary_trigger_on_epoch(self, flow_store, random_flows):
        fired = []
        flow_store.install_summary_trigger(
            SummaryTrigger(
                "any-traffic",
                predicate=lambda s: s.payload.total().flows > 0,
                aggregator="ft",
            )
        )
        flow_store.subscribe_triggers(fired.append)
        fill_epochs(flow_store, random_flows, epochs=1)
        assert len(fired) == 1


class TestQueries:
    def test_live_query(self, flow_store, random_flows):
        for record in random_flows(50):
            flow_store.ingest("flows", record, record.first_seen)
        result = flow_store.query("ft", QueryRequest("total", {}))
        assert result.used_live
        assert result.value.flows == 50

    def test_window_query_merges_partitions(self, flow_store, random_flows):
        fill_epochs(flow_store, random_flows, epochs=3)
        result = flow_store.query(
            "ft", QueryRequest("total", {}), start=0.0, end=120.0, now=200.0
        )
        assert result.value.flows == 200
        assert len(result.partitions_used) == 2

    def test_window_query_records_accesses(self, flow_store, random_flows):
        fill_epochs(flow_store, random_flows, epochs=2)
        flow_store.query(
            "ft", QueryRequest("total", {}), start=0.0, end=120.0, now=130.0
        )
        for partition in flow_store.catalog.all():
            assert len(partition.accesses) == 1
            assert not partition.accesses[0].remote

    def test_query_unknown_aggregator(self, store):
        with pytest.raises(StorageError):
            store.query("nope", QueryRequest("total", {}))

    def test_window_without_data_falls_back_to_live(
        self, flow_store, random_flows
    ):
        for record in random_flows(10):
            flow_store.ingest("flows", record, record.first_seen)
        result = flow_store.query(
            "ft", QueryRequest("total", {}), start=0.0, end=60.0, now=60.0
        )
        assert result.used_live
        assert result.value.flows == 10


class TestFederation:
    def make_pair(self, fabric, policy):
        s1 = DataStore(LOC1, RoundRobinStorage(10**7), fabric=fabric)
        s2 = DataStore(LOC2, RoundRobinStorage(10**7), fabric=fabric)
        s1.install_aggregator(
            Aggregator("ft1", FlowtreePrimitive(LOC1, policy))
        )
        s2.install_aggregator(
            Aggregator("ft2", FlowtreePrimitive(LOC2, policy))
        )
        s1.add_peer(s2)
        return s1, s2

    def test_remote_query_ships_result(self, fabric, policy, random_flows):
        s1, s2 = self.make_pair(fabric, policy)
        for record in random_flows(40):
            s2.ingest("flows", record, record.first_seen, size_bytes=48)
        s2.close_epoch(60.0)
        result = s1.query_federated(
            "ft2", QueryRequest("total", {}), start=0.0, end=60.0, now=70.0
        )
        assert result.source == "remote"
        assert result.value.flows == 40
        assert result.shipped_bytes > 0
        assert result.latency > 0
        assert fabric.total_bytes() > 0
        # the producer recorded a remote access
        assert s2.catalog.all()[0].remote_access_count() == 1

    def test_replica_serves_locally(self, fabric, policy, random_flows):
        s1, s2 = self.make_pair(fabric, policy)
        for record in random_flows(40):
            s2.ingest("flows", record, record.first_seen, size_bytes=48)
        s2.close_epoch(60.0)
        partition = s2.catalog.all()[0]
        s2.replicate_partition(partition.partition_id, s1, now=65.0)
        fabric.reset_accounting()
        result = s1.query_federated(
            "ft2", QueryRequest("total", {}), start=0.0, end=60.0, now=70.0
        )
        assert result.source == "replica"
        assert result.value.flows == 40
        assert fabric.total_bytes() == 0  # no WAN traffic

    def test_replication_lineage(self, fabric, policy, random_flows):
        s1, s2 = self.make_pair(fabric, policy)
        for record in random_flows(10):
            s2.ingest("flows", record, record.first_seen)
        s2.close_epoch(60.0)
        partition = s2.catalog.all()[0]
        s2.replicate_partition(partition.partition_id, s1, now=61.0)
        assert partition.replicated_to == [LOC1.path]
        replica = s1.replicas.all()[0]
        record = s2.lineage.get(replica.summary.meta.lineage_id)
        assert record.operation == "replicate"

    def test_federated_unknown_everywhere(self, fabric, policy):
        s1, s2 = self.make_pair(fabric, policy)
        with pytest.raises(StorageError):
            s1.query_federated("ghost", QueryRequest("total", {}))


class TestCompositeQueries:
    def test_subqueries_routed_per_aggregator(self, fabric, policy,
                                              random_flows):
        s1 = DataStore(LOC1, RoundRobinStorage(10**7), fabric=fabric)
        s2 = DataStore(LOC2, RoundRobinStorage(10**7), fabric=fabric)
        s1.add_peer(s2)
        s1.install_aggregator(
            Aggregator(
                "local_ft",
                FlowtreePrimitive(LOC1, policy),
                stream_filter=prefix_filter("flows"),
            )
        )
        s1.install_aggregator(
            Aggregator(
                "temps",
                TimeBinStatistics(LOC1, bin_seconds=1.0),
                stream_filter=prefix_filter("temps"),
            )
        )
        s2.install_aggregator(
            Aggregator("remote_ft", FlowtreePrimitive(LOC2, policy))
        )
        for record in random_flows(30):
            s1.ingest("flows", record, record.first_seen)
            s2.ingest("flows", record, record.first_seen)
        for t in range(10):
            s1.ingest("temps", float(t), float(t))
        results = s1.query_composite(
            {
                "traffic": ("local_ft", QueryRequest("total", {})),
                "temperature": ("temps", QueryRequest("stats", {})),
                "peer_traffic": ("remote_ft", QueryRequest("total", {})),
            },
            now=60.0,
        )
        assert results["traffic"].value.flows == 30
        assert results["traffic"].source == "local"
        assert results["temperature"].value.count == 10
        assert results["peer_traffic"].value.flows == 30
        assert results["peer_traffic"].source == "remote"

    def test_composite_mixes_live_and_history(self, flow_store,
                                              random_flows):
        fill_epochs(flow_store, random_flows, epochs=2)
        for record in random_flows(10, seed=99, epoch=2):
            flow_store.ingest("flows", record, record.first_seen)
        results = flow_store.query_composite(
            {"history": ("ft", QueryRequest("total", {}))},
            start=0.0,
            end=120.0,
            now=130.0,
        )
        assert results["history"].value.flows == 200


class TestExport:
    def test_export_combines_into_parent(self, fabric, policy, random_flows):
        child = DataStore(LOC1, RoundRobinStorage(10**7), fabric=fabric)
        parent_loc = Location("cloud/network/region1")
        parent = DataStore(parent_loc, RoundRobinStorage(10**7), fabric=fabric)
        child.install_aggregator(
            Aggregator("ft", FlowtreePrimitive(LOC1, policy))
        )
        parent.install_aggregator(
            Aggregator("ft", FlowtreePrimitive(parent_loc, policy))
        )
        for record in random_flows(30):
            child.ingest("flows", record, record.first_seen)
        duration = child.export_summaries("ft", parent, now=60.0)
        assert duration is not None and duration > 0
        total = parent.aggregator("ft").primitive.query(
            QueryRequest("total", {})
        )
        assert total.flows == 30

    def test_export_nothing_when_idle(self, fabric, policy):
        child = DataStore(LOC1, RoundRobinStorage(10**7), fabric=fabric)
        parent = DataStore(
            Location("cloud/network/region1"),
            RoundRobinStorage(10**7),
            fabric=fabric,
        )
        child.install_aggregator(
            Aggregator("ft", FlowtreePrimitive(LOC1, policy))
        )
        assert child.export_summaries("ft", parent, now=1.0) is None

"""Tests for partitions, the three storage strategies, and recombination."""

import pytest

from repro.core.summary import DataSummary, Location, SummaryMeta, TimeInterval
from repro.datastore.partitions import Partition, PartitionCatalog
from repro.datastore.recombine import combine_summaries
from repro.datastore.storage import (
    ExpirationStorage,
    HierarchicalStorage,
    RoundRobinStorage,
)
from repro.errors import PartitionNotFoundError, StorageError
from repro.flows.records import Score
from repro.flows.tree import Flowtree

LOC = Location("cloud/region1/router1")


def make_partition(
    index: int,
    size: int = 1000,
    aggregator: str = "agg",
    created_at: float = None,
):
    created = created_at if created_at is not None else float(index * 60)
    summary = DataSummary(
        kind="sample",
        meta=SummaryMeta(
            TimeInterval(created, created + 60.0), LOC
        ),
        payload=[],
        size_bytes=size,
        attrs={"rate": 1.0},
    )
    return Partition(
        partition_id=f"{aggregator}-{index}",
        aggregator=aggregator,
        summary=summary,
        created_at=created,
    )


def flowtree_partition(policy, index, flows, aggregator="ft"):
    tree = Flowtree(policy, node_budget=None)
    for record in flows:
        tree.add_flow(record)
    created = float(index * 60)
    summary = DataSummary(
        kind="flowtree",
        meta=SummaryMeta(TimeInterval(created, created + 60.0), LOC),
        payload=tree,
        size_bytes=tree.estimated_size_bytes(),
        attrs={"nodes": tree.node_count},
    )
    return Partition(
        partition_id=f"{aggregator}-{index}",
        aggregator=aggregator,
        summary=summary,
        created_at=created,
    )


class TestCatalog:
    def test_add_get_remove(self):
        catalog = PartitionCatalog()
        partition = make_partition(0)
        catalog.add(partition)
        assert catalog.get(partition.partition_id) is partition
        assert partition.partition_id in catalog
        removed = catalog.remove(partition.partition_id)
        assert removed is partition
        with pytest.raises(PartitionNotFoundError):
            catalog.get(partition.partition_id)

    def test_oldest_first_by_created_at(self):
        catalog = PartitionCatalog()
        catalog.add(make_partition(5))
        catalog.add(make_partition(1))
        catalog.add(make_partition(3))
        assert [p.created_at for p in catalog.all()] == [60.0, 180.0, 300.0]

    def test_in_interval(self):
        catalog = PartitionCatalog()
        for i in range(5):
            catalog.add(make_partition(i))
        window = catalog.in_interval("agg", start=90.0, end=200.0)
        assert [p.partition_id for p in window] == ["agg-1", "agg-2", "agg-3"]

    def test_for_aggregator(self):
        catalog = PartitionCatalog()
        catalog.add(make_partition(0, aggregator="a"))
        catalog.add(make_partition(1, aggregator="b"))
        assert len(catalog.for_aggregator("a")) == 1

    def test_access_recording(self):
        partition = make_partition(0)
        partition.record_access(10.0, 500, remote=True)
        partition.record_access(20.0, 300, remote=False)
        assert partition.remote_bytes_served() == 500
        assert partition.remote_access_count() == 1


class TestExpiration:
    def test_expires_by_age(self):
        storage = ExpirationStorage(ttl_seconds=120.0)
        catalog = PartitionCatalog()
        evicted = []
        for i in range(4):
            evicted += storage.admit(make_partition(i), catalog, now=float(i * 60))
        # admits at t=120/t=180 already purge partitions aged >= 120 s
        assert {p.partition_id for p in evicted} == {"agg-0", "agg-1"}
        evicted += storage.maintain(catalog, now=300.0)
        assert {p.partition_id for p in evicted} == {
            "agg-0", "agg-1", "agg-2", "agg-3",
        }
        assert all(300.0 - p.created_at < 120.0 for p in catalog.all())

    def test_invalid_ttl(self):
        with pytest.raises(StorageError):
            ExpirationStorage(0)

    def test_no_pressure(self):
        storage = ExpirationStorage(60.0)
        assert storage.pressure(PartitionCatalog()) == 0.0


class TestRoundRobin:
    def test_evicts_oldest_over_budget(self):
        storage = RoundRobinStorage(budget_bytes=2500)
        catalog = PartitionCatalog()
        evicted = []
        for i in range(4):
            evicted += storage.admit(
                make_partition(i, size=1000), catalog, now=float(i)
            )
        assert len(catalog) == 2
        assert [p.partition_id for p in evicted] == ["agg-0", "agg-1"]

    def test_keeps_at_least_one(self):
        storage = RoundRobinStorage(budget_bytes=10)
        catalog = PartitionCatalog()
        storage.admit(make_partition(0, size=1000), catalog, now=0.0)
        assert len(catalog) == 1

    def test_pressure(self):
        storage = RoundRobinStorage(budget_bytes=2000)
        catalog = PartitionCatalog()
        storage.admit(make_partition(0, size=1000), catalog, now=0.0)
        assert storage.pressure(catalog) == 0.5


class TestHierarchical:
    def test_compacts_instead_of_dropping(self, policy, random_flows):
        storage = HierarchicalStorage(
            budget_bytes=30_000, merge_group=2, shrink=0.4
        )
        catalog = PartitionCatalog()
        for i in range(6):
            partition = flowtree_partition(
                policy, i, random_flows(60, seed=i, epoch=i)
            )
            storage.admit(partition, catalog, now=float(i * 60))
        assert storage.compactions > 0
        # either the budget is met, or everything has been folded into a
        # single partition that cannot shrink further (never dropped)
        assert catalog.total_bytes() <= 30_000 or len(catalog) == 1
        # history is never dropped outright: total mass is preserved
        total = Score.zero()
        for partition in catalog.all():
            total = total + partition.summary.payload.total()
        expected = Score.zero()
        for i in range(6):
            for record in random_flows(60, seed=i, epoch=i):
                expected = expected + record.score()
        assert total == expected

    def test_compacted_interval_spans_inputs(self, policy, random_flows):
        storage = HierarchicalStorage(
            budget_bytes=15_000, merge_group=4, shrink=0.3
        )
        catalog = PartitionCatalog()
        for i in range(8):
            storage.admit(
                flowtree_partition(policy, i, random_flows(50, seed=i, epoch=i)),
                catalog,
                now=float(i * 60),
            )
        oldest = catalog.all()[0]
        assert oldest.summary.meta.interval.duration > 60.0

    def test_validation(self):
        with pytest.raises(StorageError):
            HierarchicalStorage(0)
        with pytest.raises(StorageError):
            HierarchicalStorage(100, merge_group=1)
        with pytest.raises(StorageError):
            HierarchicalStorage(100, shrink=1.0)


class TestRecombine:
    def test_mixed_kinds_rejected(self, policy, random_flows):
        a = flowtree_partition(policy, 0, random_flows(5)).summary
        b = make_partition(1).summary
        with pytest.raises(StorageError):
            combine_summaries([a, b])

    def test_empty_rejected(self):
        with pytest.raises(StorageError):
            combine_summaries([])

    def test_flowtree_combiner_merges_and_shrinks(self, policy, random_flows):
        a = flowtree_partition(policy, 0, random_flows(80, seed=1)).summary
        b = flowtree_partition(policy, 1, random_flows(80, seed=2)).summary
        combined = combine_summaries([a, b], shrink=0.3)
        assert combined.kind == "flowtree"
        assert combined.payload.total() == (
            a.payload.total() + b.payload.total()
        )
        assert combined.payload.node_count < (
            a.payload.node_count + b.payload.node_count
        )

    def test_flowtree_combiner_no_shrink(self, policy, random_flows):
        a = flowtree_partition(policy, 0, random_flows(40, seed=1)).summary
        combined = combine_summaries([a], shrink=1.0)
        assert combined.payload.total() == a.payload.total()

    def test_unknown_kind(self):
        bad = DataSummary(
            kind="mystery",
            meta=SummaryMeta(TimeInterval(0, 1), LOC),
            payload=None,
            size_bytes=0,
        )
        with pytest.raises(StorageError):
            combine_summaries([bad])

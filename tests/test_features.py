"""Unit tests for flow features (parsing, masking, rendering)."""

import pytest

from repro.errors import GranularityError, SchemaError
from repro.flows.features import (
    Feature,
    IPv4Feature,
    PortFeature,
    ProtocolFeature,
    format_ipv4,
    parse_ipv4,
)


class TestIPv4Parsing:
    def test_roundtrip(self):
        for text in ("0.0.0.0", "10.0.0.1", "255.255.255.255", "192.168.1.5"):
            assert format_ipv4(parse_ipv4(text)) == text

    def test_known_value(self):
        assert parse_ipv4("10.0.0.1") == (10 << 24) | 1

    def test_rejects_short(self):
        with pytest.raises(SchemaError):
            parse_ipv4("10.0.0")

    def test_rejects_long(self):
        with pytest.raises(SchemaError):
            parse_ipv4("10.0.0.1.2")

    def test_rejects_out_of_range_octet(self):
        with pytest.raises(SchemaError):
            parse_ipv4("10.0.0.256")

    def test_rejects_non_numeric(self):
        with pytest.raises(SchemaError):
            parse_ipv4("a.b.c.d")


class TestFeatureMasking:
    def test_full_level_is_identity(self):
        feature = IPv4Feature("ip")
        value = parse_ipv4("203.0.113.7")
        assert feature.mask(value, 32) == value

    def test_level_zero_is_wildcard(self):
        feature = IPv4Feature("ip")
        assert feature.mask(parse_ipv4("203.0.113.7"), 0) == 0

    def test_prefix_mask(self):
        feature = IPv4Feature("ip")
        assert feature.mask(parse_ipv4("203.0.113.7"), 24) == parse_ipv4(
            "203.0.113.0"
        )
        assert feature.mask(parse_ipv4("203.0.113.7"), 8) == parse_ipv4(
            "203.0.0.0"
        )

    def test_mask_is_idempotent(self):
        feature = IPv4Feature("ip")
        value = parse_ipv4("198.51.100.99")
        once = feature.mask(value, 16)
        assert feature.mask(once, 16) == once

    def test_masks_nest(self):
        """mask(mask(v, a), b) == mask(v, b) whenever b <= a."""
        feature = IPv4Feature("ip")
        value = parse_ipv4("198.51.100.99")
        for a in (32, 24, 16):
            for b in (16, 8, 0):
                if b <= a:
                    assert feature.mask(feature.mask(value, a), b) == (
                        feature.mask(value, b)
                    )

    def test_level_out_of_range(self):
        feature = PortFeature("port")
        with pytest.raises(GranularityError):
            feature.mask(80, 17)
        with pytest.raises(GranularityError):
            feature.mask(80, -1)

    def test_port_mask(self):
        feature = PortFeature("port")
        # keeping the top 8 of 16 bits zeroes the low byte
        assert feature.mask(0x1234, 8) == 0x1200


class TestValidation:
    def test_value_out_of_range(self):
        feature = PortFeature("port")
        with pytest.raises(SchemaError):
            feature.validate(1 << 16)
        with pytest.raises(SchemaError):
            feature.validate(-1)

    def test_non_int_rejected(self):
        feature = PortFeature("port")
        with pytest.raises(SchemaError):
            feature.validate("80")

    def test_generic_parse(self):
        feature = Feature("f", bits=8)
        assert feature.parse("200") == 200
        with pytest.raises(SchemaError):
            feature.parse("300")
        with pytest.raises(SchemaError):
            feature.parse("abc")


class TestRendering:
    def test_ipv4_render_levels(self):
        feature = IPv4Feature("ip")
        value = parse_ipv4("10.1.2.3")
        assert feature.render(value, 32) == "10.1.2.3"
        assert feature.render(feature.mask(value, 24), 24) == "10.1.2.0/24"
        assert feature.render(0, 0) == "*"

    def test_protocol_names(self):
        feature = ProtocolFeature()
        assert feature.parse("tcp") == 6
        assert feature.parse("UDP") == 17
        assert feature.parse("icmp") == 1
        assert feature.render(6, 8) == "tcp"
        assert feature.render(99, 8) == "99"
        assert feature.render(0, 0) == "*"

    def test_protocol_numeric_parse(self):
        feature = ProtocolFeature()
        assert feature.parse("47") == 47

    def test_generic_render(self):
        feature = PortFeature("port")
        assert feature.render(443, 16) == "443"
        assert feature.render(0x1200, 8) == "4608/8"

"""Tests for ski-rental replication policies, the predictor, and engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flowtree import FlowtreePrimitive
from repro.core.summary import Location
from repro.datastore.aggregator import Aggregator
from repro.datastore.storage import RoundRobinStorage
from repro.datastore.store import DataStore
from repro.errors import ReplicationError
from repro.hierarchy.network import NetworkFabric
from repro.hierarchy.topology import network_monitoring_hierarchy
from repro.replication.engine import (
    AdaptiveReplicationEngine,
    offline_optimal_cost,
    simulate_policy_on_trace,
)
from repro.replication.predictor import AccessPredictor
from repro.replication.ski_rental import (
    AlwaysReplicate,
    BreakEvenPolicy,
    CountThresholdPolicy,
    DistributionAwarePolicy,
    NeverReplicate,
    PartitionAccessState,
    PercentThresholdPolicy,
    RandomizedSkiRental,
)
from repro.simulation.querytrace import (
    AccessEvent,
    QueryTraceConfig,
    QueryTraceGenerator,
)


def state(partition_bytes=1000, shipped=0, accesses=0):
    s = PartitionAccessState("p", partition_bytes=partition_bytes)
    s.shipped_bytes = shipped
    s.access_count = accesses
    return s


class TestPolicies:
    def test_never_always(self):
        assert not NeverReplicate().should_replicate(state(shipped=10**9))
        assert AlwaysReplicate().should_replicate(state())

    def test_count_threshold(self):
        policy = CountThresholdPolicy(3)
        assert not policy.should_replicate(state(accesses=2))
        assert policy.should_replicate(state(accesses=3))
        with pytest.raises(ReplicationError):
            CountThresholdPolicy(0)

    def test_percent_threshold(self):
        policy = PercentThresholdPolicy(50.0)
        assert not policy.should_replicate(state(shipped=499))
        assert policy.should_replicate(state(shipped=500))

    def test_break_even(self):
        policy = BreakEvenPolicy()
        assert not policy.should_replicate(state(shipped=999))
        assert policy.should_replicate(state(shipped=1000))

    def test_randomized_threshold_in_range(self):
        policy = RandomizedSkiRental(seed=1)
        for i in range(50):
            fraction = policy._threshold_fraction(f"p{i}")
            assert 0.0 <= fraction <= 1.0
        # threshold is sticky per partition
        assert policy._threshold_fraction("p0") == (
            policy._threshold_fraction("p0")
        )

    def test_distribution_aware_falls_back_to_break_even(self):
        policy = DistributionAwarePolicy(min_observations=5)
        assert not policy.should_replicate(state(shipped=999))
        assert policy.should_replicate(state(shipped=1000))

    def test_distribution_aware_never_buys_for_tiny_demands(self):
        policy = DistributionAwarePolicy(min_observations=3)
        for _ in range(20):
            policy.observe_completed(10)  # demand << cost (1000)
        assert policy.optimal_threshold(1000) == float("inf")
        assert not policy.should_replicate(state(shipped=900))

    def test_distribution_aware_buys_early_for_huge_demands(self):
        policy = DistributionAwarePolicy(min_observations=3)
        for _ in range(20):
            policy.observe_completed(100_000)  # demand >> cost
        threshold = policy.optimal_threshold(1000)
        assert threshold < 100_000
        assert policy.should_replicate(
            state(partition_bytes=1000, shipped=int(threshold) + 1)
        )


@settings(max_examples=60, deadline=None)
@given(
    results=st.lists(
        st.integers(min_value=1, max_value=2000), min_size=1, max_size=50
    ),
    cost=st.integers(min_value=100, max_value=5000),
)
def test_break_even_is_2_competitive(results, cost):
    """On any single-partition sequence, break-even pays <= 2x OPT + one
    result (the access that crosses the threshold)."""
    trace = [
        AccessEvent(float(i), "p", result) for i, result in enumerate(results)
    ]
    costs = simulate_policy_on_trace(trace, BreakEvenPolicy(), cost)
    optimal = offline_optimal_cost(trace, cost)
    assert costs.total_bytes <= 2 * optimal + max(results)


class TestTraceSimulation:
    @pytest.fixture()
    def trace(self):
        return QueryTraceGenerator(
            QueryTraceConfig(
                partitions=150,
                partition_bytes=5_000_000,
                mean_result_bytes=800_000,
            ),
            seed=5,
        ).trace()

    def test_never_cost_is_pure_shipping(self, trace):
        costs = simulate_policy_on_trace(trace, NeverReplicate(), 5_000_000)
        assert costs.replication_bytes == 0
        assert costs.shipped_bytes == sum(e.result_bytes for e in trace)

    def test_always_cost_is_one_ship_plus_copy_each(self, trace):
        costs = simulate_policy_on_trace(trace, AlwaysReplicate(), 5_000_000)
        partitions = len({e.partition_id for e in trace})
        assert costs.replications == partitions
        assert costs.accesses_served_locally == len(trace) - partitions

    def test_offline_optimal_is_lower_bound(self, trace):
        optimal = offline_optimal_cost(trace, 5_000_000)
        for policy in (
            NeverReplicate(),
            AlwaysReplicate(),
            BreakEvenPolicy(),
            CountThresholdPolicy(3),
            PercentThresholdPolicy(50),
            RandomizedSkiRental(seed=2),
            DistributionAwarePolicy(),
        ):
            costs = simulate_policy_on_trace(trace, policy, 5_000_000)
            assert costs.total_bytes >= optimal

    def test_break_even_bound_on_full_trace(self, trace):
        optimal = offline_optimal_cost(trace, 5_000_000)
        costs = simulate_policy_on_trace(trace, BreakEvenPolicy(), 5_000_000)
        # per-partition overshoot is bounded by one result; globally a
        # little slack over 2x
        assert costs.competitive_ratio(optimal) < 2.5

    def test_adaptive_beats_naive_heuristics(self, trace):
        adaptive = simulate_policy_on_trace(
            trace, DistributionAwarePolicy(), 5_000_000
        )
        always = simulate_policy_on_trace(trace, AlwaysReplicate(), 5_000_000)
        count3 = simulate_policy_on_trace(
            trace, CountThresholdPolicy(3), 5_000_000
        )
        assert adaptive.total_bytes < always.total_bytes
        assert adaptive.total_bytes < count3.total_bytes

    def test_per_partition_sizes(self, trace):
        sizes = {e.partition_id: 1_000_000 for e in trace}
        costs = simulate_policy_on_trace(
            trace, BreakEvenPolicy(), 5_000_000, partition_sizes=sizes
        )
        # smaller partitions are cheaper to buy: more replications
        base = simulate_policy_on_trace(trace, BreakEvenPolicy(), 5_000_000)
        assert costs.replications > base.replications


class TestPredictor:
    def test_lifecycle(self):
        predictor = AccessPredictor(completion_timeout=100.0)
        predictor.record_access("p1", 500, time=0.0)
        predictor.record_access("p1", 300, time=10.0)
        assert predictor.spent("p1") == 800
        assert predictor.expected_remaining("p1") is None  # no history yet
        finished = predictor.sweep(now=200.0)
        assert finished == ["p1"]
        assert predictor.completed_demands == [800]

    def test_conditional_expectation(self):
        predictor = AccessPredictor(completion_timeout=1.0)
        for demand in (100, 200, 300, 400):
            predictor.record_access(f"p{demand}", demand, time=0.0)
        predictor.sweep(now=10.0)
        predictor.record_access("live", 150, time=20.0)
        # demands above 150: 200, 300, 400 -> E[remaining] = mean(50,150,250)
        assert predictor.expected_remaining("live") == pytest.approx(150.0)

    def test_exceed_probability(self):
        predictor = AccessPredictor(completion_timeout=1.0)
        for demand in (100, 200, 300, 400):
            predictor.record_access(f"p{demand}", demand, time=0.0)
        predictor.sweep(now=10.0)
        predictor.record_access("live", 150, time=20.0)
        assert predictor.exceed_probability("live", 250) == pytest.approx(
            2 / 3
        )

    def test_unseen_partition(self):
        predictor = AccessPredictor()
        assert predictor.spent("ghost") == 0
        assert predictor.exceed_probability("ghost", 10) == 0.0


class TestEngineWithStores:
    def test_engine_replicates_after_break_even(self, policy, random_flows):
        hierarchy = network_monitoring_hierarchy(
            regions=2, routers_per_region=1
        )
        fabric = NetworkFabric(hierarchy)
        producer_loc = Location("cloud/network/region1/router1")
        consumer_loc = Location("cloud/network/region2/router1")
        producer = DataStore(
            producer_loc, RoundRobinStorage(10**8), fabric=fabric
        )
        consumer = DataStore(
            consumer_loc, RoundRobinStorage(10**8), fabric=fabric
        )
        producer.add_peer(consumer)
        producer.install_aggregator(
            Aggregator("ft", FlowtreePrimitive(producer_loc, policy))
        )
        for record in random_flows(100):
            producer.ingest("flows", record, record.first_seen)
        producer.close_epoch(60.0)
        partition = producer.catalog.all()[0]
        engine = AdaptiveReplicationEngine(BreakEvenPolicy())
        chunk = partition.size_bytes // 3 + 1
        replicated = []
        for i in range(4):
            replicated.append(
                engine.on_remote_access(
                    producer, consumer, partition.partition_id, chunk,
                    now=70.0 + i,
                )
            )
        assert replicated == [False, False, True, False]
        assert len(consumer.replicas) == 1
        assert engine.replication_bytes == partition.size_bytes
        assert engine.outcomes[0].destination == consumer_loc.path

    def test_complete_partition_feeds_policy(self):
        policy_obj = DistributionAwarePolicy(min_observations=1)
        engine = AdaptiveReplicationEngine(policy_obj)
        engine._states["p"] = PartitionAccessState("p", 1000)
        engine._states["p"].record(700)
        engine.complete_partition("p")
        assert policy_obj._history == [700]

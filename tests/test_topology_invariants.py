"""Hypothesis invariants for the mutable :class:`Hierarchy`.

The elastic-topology refactor made the hierarchy a live, mutable
structure: ``add_site``/``remove``/``graft`` reshape it between epoch
closes, with ``reindex`` keeping the location index coherent.  These
properties pin the structural contract under arbitrary construction
and mutation sequences:

* ``from_site_paths`` covers every requested site exactly once, shares
  prefixes, and labels depths consistently;
* the location index is always exactly the DFS walk (after any
  mutation sequence);
* parent/child links stay mutually consistent and every location path
  equals its parent's path plus its own final segment;
* ``path_between`` routes are valid tree walks: consecutive nodes are
  parent/child pairs, endpoints match, and the route is symmetric in
  length.
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.core.summary import Location
from repro.errors import PlacementError
from repro.hierarchy.topology import Hierarchy, LevelSpec

_NAME = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=4)
_SITE_PATHS = st.lists(
    st.lists(_NAME, min_size=1, max_size=3).map("/".join),
    min_size=1,
    max_size=8,
    unique=True,
)


def _assert_structurally_sound(hierarchy: Hierarchy) -> None:
    """The shared invariant bundle checked after every operation."""
    nodes = hierarchy.nodes()
    # the index is exactly the DFS walk, with unique paths
    paths = [node.location.path for node in nodes]
    assert len(set(paths)) == len(paths)
    assert set(hierarchy._by_location) == set(paths)
    for node in nodes:
        assert hierarchy.node(node.location) is node
        # parent/child links are mutual and paths nest
        for child in node.children:
            assert child.parent is node
            assert child.location.path == (
                f"{node.location.path}/{child.location.parts[-1]}"
            )
        if node.parent is not None:
            assert node in node.parent.children
    assert nodes[0] is hierarchy.root
    assert hierarchy.root.parent is None


class TestFromSitePaths:
    @given(sites=_SITE_PATHS)
    @settings(max_examples=60, deadline=None)
    def test_covers_every_site_and_shares_prefixes(self, sites):
        hierarchy = Hierarchy.from_site_paths(sites)
        _assert_structurally_sound(hierarchy)
        root = hierarchy.root.location.path
        for site in sites:
            assert Location(f"{root}/{site}") in hierarchy
        # levels are a pure function of depth
        for node in hierarchy.nodes():
            depth = len(node.ancestors())
            expected = "cloud" if depth == 0 else f"level{depth}"
            assert node.level.name == expected

    @given(sites=_SITE_PATHS)
    @settings(max_examples=30, deadline=None)
    def test_idempotent_over_duplicate_prefixes(self, sites):
        doubled = list(sites) + list(sites)
        a = Hierarchy.from_site_paths(sites)
        b = Hierarchy.from_site_paths(doubled)
        assert sorted(n.location.path for n in a.nodes()) == sorted(
            n.location.path for n in b.nodes()
        )


class TestPathBetween:
    @given(sites=_SITE_PATHS, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_routes_are_valid_tree_walks(self, sites, data):
        hierarchy = Hierarchy.from_site_paths(sites)
        nodes = hierarchy.nodes()
        a = data.draw(st.sampled_from(nodes), label="origin")
        b = data.draw(st.sampled_from(nodes), label="destination")
        route = hierarchy.path_between(a.location, b.location)
        assert route[0] is a and route[-1] is b
        for left, right in zip(route, route[1:]):
            assert left.parent is right or right.parent is left
        # symmetric length, and a self-route is the single node
        back = hierarchy.path_between(b.location, a.location)
        assert len(back) == len(route)
        assert hierarchy.path_between(a.location, a.location) == [a]


def _mutation_ops(draw, hierarchy: Hierarchy) -> None:
    """Apply one random structural mutation, mirroring the elastic ops."""
    op = draw(st.sampled_from(["add", "remove", "graft"]))
    nodes = hierarchy.nodes()
    if op == "add" or len(nodes) == 1:
        parent = draw(st.sampled_from(nodes))
        name = draw(_NAME)
        if any(
            child.location.parts[-1] == name for child in parent.children
        ):
            with pytest.raises(PlacementError):
                hierarchy.add_site(
                    parent.location, name, LevelSpec("grown", None)
                )
        else:
            hierarchy.add_site(parent.location, name, LevelSpec("grown", None))
        return
    victim = draw(
        st.sampled_from([node for node in nodes if node.parent is not None])
    )
    if op == "remove":
        hierarchy.remove(victim.location)
        return
    # graft: move the subtree under a node outside it (if any exists)
    subtree = {id(member) for member in victim.walk()}
    candidates = [
        node
        for node in nodes
        if id(node) not in subtree
        and not any(
            child.location.parts[-1] == victim.location.parts[-1]
            and id(child) not in subtree
            for child in node.children
        )
    ]
    if not candidates:
        return
    new_parent = draw(st.sampled_from(candidates))
    detached = hierarchy.remove(victim.location)
    renames = hierarchy.graft(detached, new_parent.location)
    # the rename map covers exactly the moved subtree, old -> new
    assert set(renames.values()) == {
        member.location.path for member in detached.walk()
    }
    assert renames[list(renames)[0]].startswith(new_parent.location.path)


class TestMutationInvariants:
    @given(sites=_SITE_PATHS, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_sound_after_arbitrary_mutations(self, sites, data):
        hierarchy = Hierarchy.from_site_paths(sites)
        steps = data.draw(st.integers(min_value=1, max_value=6), label="steps")
        for _ in range(steps):
            _mutation_ops(data.draw, hierarchy)
            _assert_structurally_sound(hierarchy)

    @given(sites=_SITE_PATHS, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_remove_then_graft_preserves_subtree_shape(self, sites, data):
        hierarchy = Hierarchy.from_site_paths(sites)
        movable = [n for n in hierarchy.nodes() if n.parent is not None]
        victim = data.draw(st.sampled_from(movable), label="victim")
        shape = [
            node.location.path[len(victim.location.path):]
            for node in victim.walk()
        ]
        size_before = len(hierarchy.nodes())
        subtree_size = len(list(victim.walk()))
        detached = hierarchy.remove(victim.location)
        assert len(hierarchy.nodes()) == size_before - subtree_size
        # graft back where it came from: shape and total size restore
        parent = hierarchy.node(
            Location("/".join(victim.location.parts[:-1]))
        )
        hierarchy.graft(detached, parent.location)
        _assert_structurally_sound(hierarchy)
        assert len(hierarchy.nodes()) == size_before
        assert [
            node.location.path[len(victim.location.path):]
            for node in victim.walk()
        ] == shape

    def test_cannot_remove_root_or_graft_attached(self):
        hierarchy = Hierarchy.from_site_paths(["a/b", "a/c"])
        with pytest.raises(PlacementError):
            hierarchy.remove(hierarchy.root.location)
        attached = hierarchy.node(Location("cloud/a/b"))
        with pytest.raises(PlacementError):
            hierarchy.graft(attached, hierarchy.root.location)

    def test_duplicate_graft_name_rejected(self):
        hierarchy = Hierarchy.from_site_paths(["a/x", "b/x"])
        detached = hierarchy.remove(Location("cloud/a/x"))
        with pytest.raises(PlacementError):
            hierarchy.graft(detached, Location("cloud/b"))
        # the hierarchy is still sound after the refused graft
        _assert_structurally_sound(hierarchy)

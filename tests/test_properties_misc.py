"""Property-based tests for metadata algebra and storage invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.summary import (
    DataSummary,
    Location,
    SummaryMeta,
    TimeInterval,
)
from repro.datastore.partitions import Partition, PartitionCatalog
from repro.datastore.storage import RoundRobinStorage
from repro.replication.engine import (
    offline_optimal_cost,
    simulate_policy_on_trace,
)
from repro.replication.ski_rental import BreakEvenPolicy, RandomizedSkiRental
from repro.simulation.querytrace import AccessEvent

# ---------------------------------------------------------------------------
# intervals

interval_strategy = st.builds(
    lambda a, b: TimeInterval(min(a, b), max(a, b)),
    st.floats(min_value=0, max_value=1e6, allow_nan=False),
    st.floats(min_value=0, max_value=1e6, allow_nan=False),
)


@settings(max_examples=100, deadline=None)
@given(a=interval_strategy, b=interval_strategy)
def test_interval_overlap_is_symmetric(a, b):
    assert a.overlaps(b) == b.overlaps(a)


@settings(max_examples=100, deadline=None)
@given(a=interval_strategy, b=interval_strategy)
def test_interval_union_covers_both(a, b):
    union = a.union(b)
    assert union.start <= a.start and union.start <= b.start
    assert union.end >= a.end and union.end >= b.end
    assert union.duration >= max(a.duration, b.duration)


@settings(max_examples=100, deadline=None)
@given(interval=interval_strategy)
def test_interval_self_relations(interval):
    if interval.duration > 0:
        assert interval.overlaps(interval)
        assert interval.contains(interval.start)
    assert not interval.contains(interval.end)


# ---------------------------------------------------------------------------
# locations

segment = st.text(
    alphabet="abcdefghij0123456789", min_size=1, max_size=4
)
path_strategy = st.lists(segment, min_size=1, max_size=5).map(
    lambda parts: Location("/".join(["root"] + parts))
)


@settings(max_examples=100, deadline=None)
@given(a=path_strategy, b=path_strategy)
def test_common_ancestor_properties(a, b):
    ancestor = a.common_ancestor(b)
    for location in (a, b):
        assert (
            ancestor == location or ancestor.is_ancestor_of(location)
        )
    # the common ancestor is the deepest such location: one segment
    # deeper on either path no longer covers both
    assert ancestor.level <= min(a.level, b.level)


@settings(max_examples=100, deadline=None)
@given(location=path_strategy)
def test_parent_chain_terminates_at_root(location):
    seen = 0
    probe = location
    while probe is not None:
        seen += 1
        assert seen <= location.level + 1
        probe = probe.parent
    assert seen == location.level + 1


@settings(max_examples=100, deadline=None)
@given(a=path_strategy, b=path_strategy)
def test_meta_combined_is_combinable_superset(a, b):
    meta_a = SummaryMeta(TimeInterval(0, 10), a)
    meta_b = SummaryMeta(TimeInterval(5, 15), b)
    assert meta_a.combinable_with(meta_b)  # shared time
    combined = meta_a.combined(meta_b)
    assert combined.interval == TimeInterval(0, 15)


# ---------------------------------------------------------------------------
# storage invariants

sizes_strategy = st.lists(
    st.integers(min_value=100, max_value=50_000), min_size=1, max_size=40
)


def make_partition(index: int, size: int) -> Partition:
    created = float(index * 60)
    return Partition(
        partition_id=f"p{index}",
        aggregator="agg",
        summary=DataSummary(
            kind="sample",
            meta=SummaryMeta(
                TimeInterval(created, created + 60.0), Location("x/y")
            ),
            payload=[],
            size_bytes=size,
            attrs={"rate": 1.0},
        ),
        created_at=created,
    )


@settings(max_examples=60, deadline=None)
@given(sizes=sizes_strategy, budget=st.integers(min_value=1_000,
                                                max_value=200_000))
def test_round_robin_never_exceeds_budget_with_multiple_partitions(
    sizes, budget
):
    storage = RoundRobinStorage(budget_bytes=budget)
    catalog = PartitionCatalog()
    for index, size in enumerate(sizes):
        storage.admit(make_partition(index, size), catalog, now=float(index))
        assert len(catalog) >= 1
        if len(catalog) > 1:
            assert catalog.total_bytes() <= budget
    # retention is a suffix: whatever survives is the newest run
    retained = [p.created_at for p in catalog.all()]
    assert retained == sorted(retained)
    if retained:
        newest = max(p.created_at for p in catalog.all())
        assert newest == (len(sizes) - 1) * 60.0


@settings(max_examples=60, deadline=None)
@given(sizes=sizes_strategy)
def test_round_robin_eviction_count_conservation(sizes):
    storage = RoundRobinStorage(budget_bytes=60_000)
    catalog = PartitionCatalog()
    evicted = []
    for index, size in enumerate(sizes):
        evicted += storage.admit(
            make_partition(index, size), catalog, now=float(index)
        )
    assert len(evicted) + len(catalog) == len(sizes)


# ---------------------------------------------------------------------------
# replication cost accounting

results_strategy = st.lists(
    st.integers(min_value=1, max_value=5_000), min_size=1, max_size=60
)


@settings(max_examples=60, deadline=None)
@given(results=results_strategy, cost=st.integers(min_value=500,
                                                  max_value=20_000))
def test_trace_cost_accounting_consistent(results, cost):
    trace = [AccessEvent(float(i), "p", r) for i, r in enumerate(results)]
    costs = simulate_policy_on_trace(trace, BreakEvenPolicy(), cost)
    assert costs.total_bytes == costs.shipped_bytes + costs.replication_bytes
    assert costs.accesses == len(results)
    assert costs.replications in (0, 1)
    assert costs.replication_bytes == costs.replications * cost
    assert (
        costs.accesses_served_locally == 0
        or costs.replications == 1
    )


@settings(max_examples=60, deadline=None)
@given(results=results_strategy, cost=st.integers(min_value=500,
                                                  max_value=20_000),
       seed=st.integers(min_value=0, max_value=100))
def test_randomized_never_buys_before_shipping(results, cost, seed):
    trace = [AccessEvent(float(i), "p", r) for i, r in enumerate(results)]
    costs = simulate_policy_on_trace(
        trace, RandomizedSkiRental(seed=seed), cost
    )
    optimal = offline_optimal_cost(trace, cost)
    assert costs.total_bytes >= optimal
    if costs.replications:
        assert costs.shipped_bytes > 0  # the threshold is never negative

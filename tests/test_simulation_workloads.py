"""Tests for the workload generators: sensors, factory, traffic, traces."""

import math

import pytest

from repro.core.summary import Location
from repro.simulation.events import Simulator
from repro.simulation.factory import (
    FAILURE_WEAR,
    Machine,
    MachineState,
    build_factory,
)
from repro.simulation.querytrace import QueryTraceConfig, QueryTraceGenerator
from repro.simulation.sensors import (
    BYTES_3D_CAMERA_PER_HOUR,
    BYTES_HD_CAMERA_PER_HOUR,
    Actuator,
    CameraSensor,
    ScalarSensor,
)
from repro.simulation.traffic import TrafficConfig, TrafficGenerator

LOC = Location("hq/factory1/line1/machine1")


class TestSensors:
    def test_scalar_sensor_rate(self):
        sensor = ScalarSensor("s1", LOC, rate_hz=10.0, value_fn=lambda t: t)
        sim = Simulator()
        readings = []
        sensor.attach(sim, readings.append, until=2.0)
        sim.run()
        # 20 firings expected; float step accumulation may drop the one
        # landing exactly on the boundary
        assert len(readings) in (19, 20)

    def test_scalar_sensor_noise_determinism(self):
        a = ScalarSensor(
            "s", LOC, 1.0, lambda t: 5.0, noise_std=1.0, seed=42
        )
        b = ScalarSensor(
            "s", LOC, 1.0, lambda t: 5.0, noise_std=1.0, seed=42
        )
        assert a.reading_at(1.0).value == b.reading_at(1.0).value

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            ScalarSensor("s", LOC, 0.0, lambda t: 0.0)

    def test_camera_rates_match_paper(self):
        camera_3d = CameraSensor("c3d", LOC, BYTES_3D_CAMERA_PER_HOUR)
        camera_hd = CameraSensor("chd", LOC, BYTES_HD_CAMERA_PER_HOUR)
        # 52 GB/h and 17.5 GB/h as cited in Section II.A
        assert camera_3d.bytes_per_second() == pytest.approx(52e9 / 3600)
        assert camera_hd.bytes_per_second() == pytest.approx(17.5e9 / 3600)
        assert camera_3d.bytes_per_frame > camera_hd.bytes_per_frame

    def test_camera_reading_is_opaque(self):
        camera = CameraSensor("c", LOC)
        reading = camera.reading_at(0.0)
        assert math.isnan(reading.value)
        assert reading.size_bytes > 0

    def test_actuator_records_latency(self):
        actuator = Actuator("a1", LOC)
        actuator.actuate("stop", issued_at=1.0, received_at=1.5, source="r")
        assert actuator.commands[0].latency == 0.5


class TestMachine:
    def test_wear_accumulates_and_fails(self):
        machine = Machine("m", LOC, wear_rate_per_hour=0.5, seed=1)
        assert machine.wear_at(3600.0) == pytest.approx(0.5)
        machine.wear_at(2 * 3600.0)
        assert machine.state is MachineState.FAILED
        assert machine.wear == FAILURE_WEAR
        assert len(machine.failures) == 1

    def test_failed_machine_stops_wearing(self):
        machine = Machine("m", LOC, wear_rate_per_hour=1.0, seed=1)
        machine.wear_at(3 * 3600.0)
        assert machine.state is MachineState.FAILED
        wear = machine.wear
        machine.wear_at(10 * 3600.0)
        assert machine.wear == wear

    def test_maintenance_resets(self):
        machine = Machine("m", LOC, wear_rate_per_hour=0.5, seed=1)
        machine.wear_at(3600.0)
        machine.perform_maintenance(3600.0)
        assert machine.wear == 0.0
        assert machine.state is MachineState.RUNNING
        assert machine.maintenances == [3600.0]

    def test_vibration_grows_with_wear(self):
        machine = Machine("m", LOC, wear_rate_per_hour=0.2, seed=1)
        early = machine._vibration_at(0.0)
        late = machine._vibration_at(4 * 3600.0)
        assert late > early


class TestFactory:
    def test_build_is_deterministic(self):
        a = build_factory(seed=3)
        b = build_factory(seed=3)
        assert [m.wear_rate_per_hour for m in a.machines] == [
            m.wear_rate_per_hour for m in b.machines
        ]

    def test_structure(self):
        factory = build_factory(lines=2, machines_per_line=4)
        assert len(factory.lines) == 2
        assert len(factory.machines) == 8
        assert factory.sensor_count() == 8 * 2 + 2  # 2 sensors/machine + cams

    def test_raw_rate_dominated_by_cameras(self):
        factory = build_factory()
        camera_rate = sum(c.bytes_per_second() for c in factory.cameras)
        assert factory.raw_bytes_per_second() > camera_rate
        assert camera_rate / factory.raw_bytes_per_second() > 0.99

    def test_attach_streams_readings(self):
        factory = build_factory(lines=1, machines_per_line=2)
        sim = Simulator()
        readings = []
        factory.attach(sim, readings.append, until=5.0)
        sim.run()
        assert readings
        assert all(r.size_bytes > 0 for r in readings)


class TestTraffic:
    def test_epoch_deterministic(self, traffic_generator):
        a = traffic_generator.epoch("region1/router1", 0)
        b = traffic_generator.epoch("region1/router1", 0)
        assert [(r.key, r.bytes) for r in a] == [(r.key, r.bytes) for r in b]

    def test_epochs_differ(self, traffic_generator):
        a = traffic_generator.epoch("region1/router1", 0)
        b = traffic_generator.epoch("region1/router1", 1)
        assert [(r.key, r.bytes) for r in a] != [(r.key, r.bytes) for r in b]

    def test_sites_differ(self, traffic_generator):
        a = traffic_generator.epoch("region1/router1", 0)
        b = traffic_generator.epoch("region2/router1", 0)
        assert [r.key for r in a] != [r.key for r in b]

    def test_timestamps_inside_epoch(self, traffic_generator):
        epoch_seconds = traffic_generator.config.epoch_seconds
        for record in traffic_generator.epoch("region1/router1", 2):
            assert 2 * epoch_seconds <= record.first_seen
            assert record.last_seen <= 3 * epoch_seconds

    def test_destinations_inside_site_prefix(self, traffic_generator):
        prefix = traffic_generator.internal_prefix("region1/router1")
        for record in traffic_generator.epoch("region1/router1", 0):
            assert record.key.feature_value("dst_ip") & 0xFFFFFF00 == prefix

    def test_popularity_skew(self):
        generator = TrafficGenerator(
            TrafficConfig(flows_per_epoch=5000), seed=1
        )
        records = generator.epoch("region1/router1", 0)
        sources = {}
        for record in records:
            src = record.key.feature_value("src_ip")
            sources[src] = sources.get(src, 0) + 1
        counts = sorted(sources.values(), reverse=True)
        # Zipf-ish: the top source must beat the median source many times
        assert counts[0] >= 10 * counts[len(counts) // 2]

    def test_sampling_thins_flows(self):
        dense = TrafficGenerator(
            TrafficConfig(flows_per_epoch=500, sample_1_in=1), seed=5
        )
        sampled = TrafficGenerator(
            TrafficConfig(flows_per_epoch=500, sample_1_in=100), seed=5
        )
        dense_records = dense.epoch("region1/router1", 0)
        sampled_records = sampled.epoch("region1/router1", 0)
        assert len(sampled_records) < len(dense_records) / 2

    def test_packet_epoch_sampling(self):
        generator = TrafficGenerator(
            TrafficConfig(flows_per_epoch=2000), seed=3
        )
        packets = generator.packet_epoch(
            "region1/router1", 0, sample_1_in=100
        )
        assert packets
        times = [p.timestamp for p in packets]
        assert times == sorted(times)
        assert all(p.sampled_1_in == 100 for p in packets)

    def test_packet_estimates_unbiased(self, policy):
        """A Flowtree fed sampled packets estimates the flow-level
        ground truth within sampling noise."""
        from repro.flows.tree import Flowtree

        generator = TrafficGenerator(
            TrafficConfig(flows_per_epoch=4000), seed=9
        )
        flows = generator.epoch("region1/router1", 0)
        truth_bytes = sum(r.bytes for r in flows)
        tree = Flowtree(policy, node_budget=None)
        for packet in generator.packet_epoch(
            "region1/router1", 0, sample_1_in=50
        ):
            tree.add_packet(packet)
        estimate = tree.total().bytes
        assert 0.7 * truth_bytes < estimate < 1.3 * truth_bytes

    def test_packet_epoch_ignores_flow_sampling(self):
        """Flow-level thinning must not bias the packet view."""
        thinned = TrafficGenerator(
            TrafficConfig(flows_per_epoch=500, sample_1_in=100), seed=4
        )
        dense = TrafficGenerator(
            TrafficConfig(flows_per_epoch=500, sample_1_in=1), seed=4
        )
        a = thinned.packet_epoch("region1/router1", 0, sample_1_in=10)
        b = dense.packet_epoch("region1/router1", 0, sample_1_in=10)
        assert [(p.key, p.bytes) for p in a] == [(p.key, p.bytes) for p in b]

    def test_ddos_epoch_adds_attack(self, traffic_generator):
        normal = traffic_generator.epoch("region1/router1", 0)
        attacked = traffic_generator.ddos_epoch(
            "region1/router1", 0, attack_flows=500
        )
        assert len(attacked) == len(normal) + 500
        victim = traffic_generator.internal_prefix("region1/router1") | 1
        attack_records = [
            r for r in attacked if r.key.feature_value("dst_ip") == victim
        ]
        assert len(attack_records) >= 500


class TestQueryTrace:
    def test_deterministic(self):
        a = QueryTraceGenerator(seed=9).trace()
        b = QueryTraceGenerator(seed=9).trace()
        assert a == b

    def test_time_ordered(self):
        trace = QueryTraceGenerator(seed=1).trace()
        times = [event.time for event in trace]
        assert times == sorted(times)

    def test_every_partition_appears(self):
        config = QueryTraceConfig(partitions=50)
        trace = QueryTraceGenerator(config, seed=2).trace()
        assert len({e.partition_id for e in trace}) == 50

    def test_heavy_tail(self):
        config = QueryTraceConfig(
            partitions=500, run_length_distribution="pareto",
            run_length_param=1.2,
        )
        histogram = QueryTraceGenerator(config, seed=3).run_length_histogram()
        lengths = sorted(histogram)
        assert max(lengths) > 10 * min(lengths)

    def test_unknown_distribution(self):
        config = QueryTraceConfig(run_length_distribution="nope")
        with pytest.raises(ValueError):
            QueryTraceGenerator(config).trace()

    def test_all_distributions_produce_positive_runs(self):
        for dist, param in (
            ("geometric", 1.0),
            ("pareto", 1.5),
            ("lognormal", 0.8),
        ):
            config = QueryTraceConfig(
                partitions=20,
                run_length_distribution=dist,
                run_length_param=param,
            )
            for run in QueryTraceGenerator(config, seed=4).partition_runs().values():
                assert len(run) >= 1
                assert all(e.result_bytes >= 1024 for e in run)

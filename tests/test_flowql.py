"""Tests for the FlowQL lexer, parser, and executor."""

import pytest

from repro.core.summary import TimeInterval
from repro.errors import FlowQLPlanningError, FlowQLSyntaxError
from repro.flowdb.db import FlowDB
from repro.flowql.ast import TimeSpec
from repro.flowql.executor import FlowQLExecutor
from repro.flowql.lexer import tokenize
from repro.flowql.parser import parse
from repro.flows.records import Score
from repro.flows.tree import Flowtree


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT select SeLeCt")
        assert all(t.kind == "KEYWORD" for t in tokens[:-1])

    def test_ip_with_mask(self):
        tokens = tokenize("10.0.0.0/8")
        assert tokens[0].kind == "IP"
        assert tokens[0].text == "10.0.0.0/8"

    def test_plain_ip(self):
        assert tokenize("192.168.1.1")[0].kind == "IP"

    def test_number_vs_ip(self):
        tokens = tokenize("443 10.5")
        assert tokens[0].kind == "NUMBER"
        assert tokens[1].kind == "NUMBER"

    def test_site_path_is_ident(self):
        token = tokenize("region1/router1")[0]
        assert token.kind == "IDENT"

    def test_quoted_string(self):
        token = tokenize("'weird site'")[0]
        assert token.kind == "IDENT"
        assert token.text == "weird site"

    def test_unexpected_character(self):
        with pytest.raises(FlowQLSyntaxError) as exc:
            tokenize("SELECT @")
        assert exc.value.position == 7

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "EOF"


class TestParser:
    def test_minimal_query(self):
        query = parse("SELECT TOTAL FROM ALL")
        assert query.select.name == "total"
        assert query.time == TimeSpec.all()
        assert query.metric == "bytes"

    def test_full_query(self):
        query = parse(
            "SELECT TOPK(10) FROM TIME(0, 3600) AT region1/router1, "
            "region2/router1 WHERE src_ip = 10.0.0.0/8 AND dst_port = 443 "
            "BY packets"
        )
        assert query.select.name == "topk"
        assert query.select.args == [10.0]
        assert query.time == TimeSpec(0.0, 3600.0)
        assert query.sites == ["region1/router1", "region2/router1"]
        assert len(query.where) == 2
        assert query.where[0].feature == "src_ip"
        assert query.where[0].mask == 8
        assert query.where[1].value == "443"
        assert query.metric == "packets"

    def test_vs_clause(self):
        query = parse("SELECT TOPK(3) FROM TIME(60,120) VS TIME(0,60)")
        assert query.vs_time == TimeSpec(0.0, 60.0)

    def test_groupby_args(self):
        query = parse("SELECT GROUPBY(src_ip, 8) FROM ALL")
        assert query.select.args == ["src_ip", 8.0]

    def test_unknown_operator(self):
        with pytest.raises(FlowQLSyntaxError):
            parse("SELECT FROBNICATE FROM ALL")

    def test_wrong_arity(self):
        with pytest.raises(FlowQLSyntaxError):
            parse("SELECT TOPK FROM ALL")
        with pytest.raises(FlowQLSyntaxError):
            parse("SELECT TOTAL(5) FROM ALL")

    def test_empty_time_window(self):
        with pytest.raises(FlowQLSyntaxError):
            parse("SELECT TOTAL FROM TIME(60, 60)")

    def test_bad_metric(self):
        with pytest.raises(FlowQLSyntaxError):
            parse("SELECT TOTAL FROM ALL BY gigabytes")

    def test_trailing_garbage(self):
        with pytest.raises(FlowQLSyntaxError):
            parse("SELECT TOTAL FROM ALL EXTRA")


@pytest.fixture()
def loaded_db(policy, make_key):
    db = FlowDB()
    for epoch in range(3):
        for site in ("region1/router1", "region2/router1"):
            tree = Flowtree(policy, node_budget=None)
            tree.add(
                make_key(src_ip="10.0.0.1", dst_port=443),
                Score(10, 1000 * (epoch + 1), 1),
            )
            tree.add(
                make_key(src_ip="11.0.0.1", dst_port=80),
                Score(5, 500, 1),
            )
            db.insert(
                location=site,
                interval=TimeInterval(epoch * 60.0, (epoch + 1) * 60.0),
                tree=tree,
            )
    return db


class TestExecutor:
    def test_total(self, loaded_db):
        result = FlowQLExecutor(loaded_db).execute("SELECT TOTAL FROM ALL")
        # 2 sites x 3 epochs x (1000+2000+3000 + 3x500)
        assert result.scalar.bytes == 2 * (6000 + 1500)

    def test_total_windowed(self, loaded_db):
        result = FlowQLExecutor(loaded_db).execute(
            "SELECT TOTAL FROM TIME(0, 60)"
        )
        assert result.scalar.bytes == 2 * 1500

    def test_site_filter(self, loaded_db):
        result = FlowQLExecutor(loaded_db).execute(
            "SELECT TOTAL FROM ALL AT region1/router1"
        )
        assert result.scalar.bytes == 7500

    def test_query_with_where(self, loaded_db):
        result = FlowQLExecutor(loaded_db).execute(
            "SELECT QUERY FROM ALL WHERE src_ip = 10.0.0.0/8"
        )
        assert result.scalar.bytes == 2 * 6000

    def test_query_requires_where(self, loaded_db):
        with pytest.raises(FlowQLPlanningError):
            FlowQLExecutor(loaded_db).execute("SELECT QUERY FROM ALL")

    def test_topk(self, loaded_db):
        result = FlowQLExecutor(loaded_db).execute(
            "SELECT TOPK(1) FROM ALL BY bytes"
        )
        assert len(result.rows) == 1
        assert result.rows[0][2] == 2 * 6000  # the heavy 443 flow

    def test_topk_with_where(self, loaded_db):
        result = FlowQLExecutor(loaded_db).execute(
            "SELECT TOPK(5) FROM ALL WHERE dst_port = 80"
        )
        assert all("dst_port=80" in row[0] for row in result.rows)

    def test_groupby(self, loaded_db):
        result = FlowQLExecutor(loaded_db).execute(
            "SELECT GROUPBY(dst_port, 16) FROM ALL"
        )
        by_bytes = {row[0]: row[2] for row in result.rows}
        assert len(by_bytes) == 2

    def test_above(self, loaded_db):
        result = FlowQLExecutor(loaded_db).execute(
            "SELECT ABOVE(11000) FROM ALL BY bytes"
        )
        assert result.rows  # aggregate nodes above 11 kB exist
        assert all(row[2] > 11000 for row in result.rows)

    def test_hhh_fractional_threshold(self, loaded_db):
        result = FlowQLExecutor(loaded_db).execute(
            "SELECT HHH(0.5) FROM ALL BY bytes"
        )
        assert result.rows

    def test_diff_between_epochs(self, loaded_db):
        result = FlowQLExecutor(loaded_db).execute(
            "SELECT QUERY FROM TIME(120, 180) VS TIME(0, 60) "
            "WHERE src_ip = 10.0.0.1"
        )
        # epoch 3 (3000B/site) minus epoch 1 (1000B/site)
        assert result.scalar.bytes == 2 * 2000

    def test_drilldown(self, loaded_db):
        result = FlowQLExecutor(loaded_db).execute(
            "SELECT DRILLDOWN FROM ALL WHERE src_ip = 10.0.0.0/8"
        )
        assert result.rows

    def test_unknown_site(self, loaded_db):
        with pytest.raises(FlowQLPlanningError):
            FlowQLExecutor(loaded_db).execute(
                "SELECT TOTAL FROM ALL AT nowhere/router9"
            )

    def test_empty_window(self, loaded_db):
        with pytest.raises(FlowQLPlanningError):
            FlowQLExecutor(loaded_db).execute(
                "SELECT TOTAL FROM TIME(9000, 9999)"
            )

    def test_query_counter(self, loaded_db):
        executor = FlowQLExecutor(loaded_db)
        executor.execute("SELECT TOTAL FROM ALL")
        executor.execute("SELECT TOTAL FROM ALL")
        assert executor.queries_executed == 2


class TestFlowDB:
    def test_insert_and_stats(self, loaded_db):
        stats = loaded_db.stats()
        assert stats["entries"] == 6
        assert stats["locations"] == 2
        assert len(loaded_db) == 6

    def test_time_span(self, loaded_db):
        span = loaded_db.time_span()
        assert span.start == 0.0
        assert span.end == 180.0
        assert FlowDB().time_span() is None

    def test_entries_window(self, loaded_db):
        entries = loaded_db.entries(start=60.0, end=120.0)
        assert len(entries) == 2
        assert all(e.interval.start == 60.0 for e in entries)

    def test_incompatible_policy_rejected(self, loaded_db):
        from repro.errors import SchemaMismatchError
        from repro.flows.flowkey import SRC_DST, GeneralizationPolicy

        other = Flowtree(GeneralizationPolicy.default_for(SRC_DST))
        with pytest.raises(SchemaMismatchError):
            loaded_db.insert("x", TimeInterval(0, 1), other)

    def test_insert_summary_kind_check(self, loaded_db):
        from repro.core.summary import DataSummary, Location, SummaryMeta
        from repro.errors import SchemaMismatchError

        bad = DataSummary(
            kind="sample",
            meta=SummaryMeta(TimeInterval(0, 1), Location("x")),
            payload=[],
            size_bytes=0,
        )
        with pytest.raises(SchemaMismatchError):
            loaded_db.insert_summary(bad)

"""Tests for the reactive query cache and its federation integration."""

import pytest

from repro.core.flowtree import FlowtreePrimitive
from repro.core.primitive import QueryRequest
from repro.core.summary import Location
from repro.datastore.aggregator import Aggregator
from repro.datastore.cache import QueryCache
from repro.datastore.storage import RoundRobinStorage
from repro.datastore.store import DataStore
from repro.hierarchy.network import NetworkFabric
from repro.hierarchy.topology import network_monitoring_hierarchy

LOC1 = Location("cloud/network/region1/router1")
LOC2 = Location("cloud/network/region2/router1")


class TestQueryCacheUnit:
    def test_hit_within_ttl(self):
        cache = QueryCache(ttl_seconds=10.0)
        key = cache.key_for("agg", QueryRequest("total", {}), 0.0, 60.0)
        assert cache.get(key, now=0.0) is None
        cache.put(key, "result", 42, now=0.0)
        entry = cache.get(key, now=5.0)
        assert entry is not None
        assert entry.value == "result"
        assert cache.hits == 1
        assert cache.misses == 1

    def test_expiry(self):
        cache = QueryCache(ttl_seconds=10.0)
        key = cache.key_for("agg", QueryRequest("total", {}), None, None)
        cache.put(key, "x", 1, now=0.0)
        assert cache.get(key, now=10.0) is None
        assert len(cache) == 0

    def test_different_params_different_keys(self):
        cache = QueryCache()
        a = cache.key_for("agg", QueryRequest("top_k", {"k": 5}), None, None)
        b = cache.key_for("agg", QueryRequest("top_k", {"k": 9}), None, None)
        assert a != b

    def test_uncacheable_params(self):
        cache = QueryCache()
        key = cache.key_for(
            "agg",
            QueryRequest("estimate_fraction", {"predicate": lambda x: x}),
            None,
            None,
        )
        assert key is None
        assert cache.uncacheable == 1
        # get/put with None keys are safe no-ops
        assert cache.get(None, now=0.0) is None
        cache.put(None, "x", 1, now=0.0)
        assert len(cache) == 0

    def test_expiry_boundary_is_exact(self):
        """The documented contract: ``now - stored_at == ttl_seconds``
        is already expired (live strictly *less than* the TTL)."""
        cache = QueryCache(ttl_seconds=10.0)
        key = cache.key_for("agg", QueryRequest("total", {}), None, None)
        cache.put(key, "x", 1, now=5.0)
        assert cache.get(key, now=14.999) is not None
        cache.put(key, "x", 1, now=5.0)
        assert cache.get(key, now=15.0) is None  # exactly ttl later
        assert len(cache) == 0

    def test_capacity_evicts_oldest(self):
        cache = QueryCache(max_entries=2)
        keys = [
            cache.key_for("agg", QueryRequest("top_k", {"k": k}), None, None)
            for k in range(3)
        ]
        for index, key in enumerate(keys):
            cache.put(key, index, 1, now=float(index))
        assert cache.get(keys[0], now=2.5) is None  # evicted
        assert cache.get(keys[2], now=2.5) is not None

    def test_overwrite_reinserts_at_the_back(self):
        """Re-storing a key must refresh its eviction position, or the
        insertion-ordered eviction would drop the *newest* data."""
        cache = QueryCache(max_entries=2)
        keys = [
            cache.key_for("agg", QueryRequest("top_k", {"k": k}), None, None)
            for k in range(3)
        ]
        cache.put(keys[0], "a", 1, now=0.0)
        cache.put(keys[1], "b", 1, now=1.0)
        cache.put(keys[0], "a2", 1, now=2.0)  # refresh: now newest
        cache.put(keys[2], "c", 1, now=3.0)  # evicts keys[1], not keys[0]
        assert cache.get(keys[1], now=3.5) is None
        entry = cache.get(keys[0], now=3.5)
        assert entry is not None and entry.value == "a2"

    def test_eviction_is_insertion_ordered_at_scale(self):
        """A full cache keeps exactly the most recent ``max_entries``
        keys (the O(1)-eviction ordering invariant)."""
        cache = QueryCache(max_entries=8)
        keys = [
            cache.key_for("agg", QueryRequest("top_k", {"k": k}), None, None)
            for k in range(40)
        ]
        for index, key in enumerate(keys):
            cache.put(key, index, 1, now=float(index))
        assert len(cache) == 8
        for key in keys[:-8]:
            assert cache.get(key, now=40.0) is None
        for index, key in enumerate(keys[-8:], start=32):
            entry = cache.get(key, now=40.0)
            assert entry is not None and entry.value == index

    def test_invalidate(self):
        cache = QueryCache()
        key = cache.key_for("agg", QueryRequest("total", {}), None, None)
        cache.put(key, "x", 1, now=0.0)
        assert cache.invalidate() == 1
        assert cache.get(key, now=0.1) is None

    def test_invalidate_open_keeps_closed_windows(self):
        """Epoch-scoped invalidation: only entries whose window was
        still open at the boundary are dropped."""
        cache = QueryCache()
        request = QueryRequest("total", {})
        closed = cache.key_for("agg", request, 0.0, 60.0)
        straddling = cache.key_for("agg", request, 60.0, 180.0)
        unbounded = cache.key_for("agg", request, 0.0, None)
        cache.put(closed, "a", 1, now=70.0, window=(0.0, 60.0))
        cache.put(straddling, "b", 1, now=70.0, window=(60.0, 180.0))
        cache.put(unbounded, "c", 1, now=70.0, window=(0.0, None))
        assert cache.invalidate_open(120.0) == 2
        entry = cache.get(closed, now=80.0)
        assert entry is not None and entry.value == "a"
        assert cache.get(straddling, now=80.0) is None
        assert cache.get(unbounded, now=80.0) is None

    def test_invalidate_open_boundary_is_inclusive(self):
        """A window ending exactly at the boundary is closed (survives);
        one ending just past it is open (dropped)."""
        cache = QueryCache()
        request = QueryRequest("total", {})
        at_boundary = cache.key_for("agg", request, 0.0, 120.0)
        past_boundary = cache.key_for("agg", request, 0.0, 120.001)
        cache.put(at_boundary, "a", 1, now=130.0, window=(0.0, 120.0))
        cache.put(past_boundary, "b", 1, now=130.0, window=(0.0, 120.001))
        assert cache.invalidate_open(120.0) == 1
        assert cache.get(at_boundary, now=130.0) is not None
        assert cache.get(past_boundary, now=130.0) is None

    def test_invalidate_window_drops_overlaps_only(self):
        """The late-delivery hook hits exactly the overlapping windows
        (half-open interval semantics: touching endpoints don't
        overlap)."""
        cache = QueryCache()
        request = QueryRequest("total", {})
        windows = [(0.0, 60.0), (60.0, 120.0), (120.0, 180.0)]
        keys = {}
        for start, end in windows:
            key = cache.key_for("agg", request, start, end)
            cache.put(key, (start, end), 1, now=200.0,
                      window=(start, end))
            keys[(start, end)] = key
        assert cache.invalidate_window(60.0, 120.0) == 1
        assert cache.get(keys[(0.0, 60.0)], now=210.0) is not None
        assert cache.get(keys[(60.0, 120.0)], now=210.0) is None
        assert cache.get(keys[(120.0, 180.0)], now=210.0) is not None

    def test_invalidate_window_none_bounds_are_unbounded(self):
        cache = QueryCache()
        request = QueryRequest("total", {})
        early = cache.key_for("agg", request, 0.0, 60.0)
        late = cache.key_for("agg", request, 60.0, 120.0)
        cache.put(early, "a", 1, now=130.0, window=(0.0, 60.0))
        cache.put(late, "b", 1, now=130.0, window=(60.0, 120.0))
        # everything before t=60 overlaps only the early window
        assert cache.invalidate_window(None, 60.0) == 1
        assert cache.get(early, now=140.0) is None
        assert cache.get(late, now=140.0) is not None


class TestFederatedCaching:
    @pytest.fixture()
    def pair(self, policy, random_flows):
        hierarchy = network_monitoring_hierarchy(
            regions=2, routers_per_region=1
        )
        fabric = NetworkFabric(hierarchy)
        producer = DataStore(LOC1, RoundRobinStorage(10**8), fabric=fabric)
        consumer = DataStore(LOC2, RoundRobinStorage(10**8), fabric=fabric)
        consumer.cache = QueryCache(ttl_seconds=30.0)
        producer.add_peer(consumer)
        producer.install_aggregator(
            Aggregator("ft", FlowtreePrimitive(LOC1, policy))
        )
        for record in random_flows(40):
            producer.ingest("flows", record, record.first_seen)
        producer.close_epoch(60.0)
        return producer, consumer, fabric

    def test_repeat_query_served_from_cache(self, pair):
        producer, consumer, fabric = pair
        request = QueryRequest("total", {})
        first = consumer.query_federated(
            "ft", request, start=0.0, end=60.0, now=70.0
        )
        assert first.source == "remote"
        wan_after_first = fabric.total_bytes()
        second = consumer.query_federated(
            "ft", request, start=0.0, end=60.0, now=75.0
        )
        assert second.source == "cache"
        assert second.value == first.value
        assert fabric.total_bytes() == wan_after_first  # no new WAN traffic
        assert consumer.cache.hits == 1

    def test_cache_expires_and_refetches(self, pair):
        producer, consumer, fabric = pair
        request = QueryRequest("total", {})
        consumer.query_federated("ft", request, start=0.0, end=60.0, now=70.0)
        stale = consumer.query_federated(
            "ft", request, start=0.0, end=60.0, now=70.0 + 31.0
        )
        assert stale.source == "remote"

    def test_different_windows_not_conflated(self, pair):
        producer, consumer, _ = pair
        request = QueryRequest("total", {})
        consumer.query_federated("ft", request, start=0.0, end=60.0, now=70.0)
        other = consumer.query_federated(
            "ft", request, start=0.0, end=30.0, now=71.0
        )
        assert other.source == "remote"  # distinct window, distinct key

    def test_cached_result_not_stale_across_epoch_boundary(self):
        """close_epoch invalidates the planner's cache: new data must
        show up in the very next query, never a stale cached answer."""
        from repro.runtime.presets import network_4level_runtime
        from repro.simulation.traffic import TrafficConfig, TrafficGenerator

        runtime = network_4level_runtime(
            networks=1, regions_per_network=1, routers_per_region=2,
            retain_partitions=True,
        )
        sites = runtime.ingest_sites()
        generator = TrafficGenerator(
            TrafficConfig(sites=tuple(sites), flows_per_epoch=120), seed=5
        )
        for site in sites:
            runtime.ingest(site, generator.epoch(site, 0))
        runtime.close_epoch(60.0)

        first = runtime.query("SELECT TOTAL FROM ALL")
        runtime.query("SELECT TOTAL FROM ALL")
        assert runtime.planner.last_plan.cache_hit  # warm within the epoch
        assert runtime.stats.queries_cached == 1

        for site in sites:
            runtime.ingest(site, generator.epoch(site, 1))
        runtime.close_epoch(120.0)  # boundary: cached answers are stale

        fresh = runtime.query("SELECT TOTAL FROM ALL")
        assert runtime.planner.last_plan.cache_hit is False
        assert runtime.stats.queries_cached == 1  # no stale hit
        assert fresh.scalar.bytes > first.scalar.bytes  # sees epoch 1

    def test_closed_window_repeats_survive_epoch_closes(self):
        """Epoch-scoped invalidation end to end: a federated query over
        a fully-closed historical window stays a zero-byte cache hit
        across later epoch closes — new epochs seal strictly later data
        and cannot change it."""
        from repro.runtime.presets import network_4level_runtime
        from repro.simulation.traffic import TrafficConfig, TrafficGenerator

        runtime = network_4level_runtime(
            networks=1, regions_per_network=1, routers_per_region=2,
            retain_partitions=True,
        )
        sites = runtime.ingest_sites()
        generator = TrafficGenerator(
            TrafficConfig(sites=tuple(sites), flows_per_epoch=120), seed=13
        )
        for site in sites:
            runtime.ingest(site, generator.epoch(site, 0))
        runtime.close_epoch(60.0)

        flowql = f"SELECT TOTAL FROM TIME(0, 60) AT {sites[0]}"
        first = runtime.query(flowql)
        assert first.plan.route == "federated"
        assert first.cache.hit is False

        for epoch in (1, 2):
            for site in sites:
                runtime.ingest(site, generator.epoch(site, epoch))
            runtime.close_epoch(60.0 * (epoch + 1))
            repeat = runtime.query(flowql)
            assert repeat.cache.hit  # survived the close
            assert repeat.scalar == first.scalar
            assert repeat.plan.shipped_bytes == 0

    def test_late_entry_reopens_closed_window(self):
        """An entry that lands with a *historical* interval (a parked
        root export finally redelivered) must re-invalidate the cached
        windows it overlaps at the next close — those answers changed
        even though their windows were closed."""
        from repro.core.summary import TimeInterval
        from repro.runtime.presets import network_4level_runtime
        from repro.simulation.traffic import TrafficConfig, TrafficGenerator

        runtime = network_4level_runtime(
            networks=1, regions_per_network=1, routers_per_region=2,
            retain_partitions=True,
        )
        sites = runtime.ingest_sites()
        generator = TrafficGenerator(
            TrafficConfig(sites=tuple(sites), flows_per_epoch=120), seed=23
        )
        for epoch in (0, 1):
            for site in sites:
                runtime.ingest(site, generator.epoch(site, epoch))
            runtime.close_epoch(60.0 * (epoch + 1))

        reopened = "SELECT TOTAL FROM TIME(0, 60)"
        untouched = "SELECT TOTAL FROM TIME(60, 120)"
        stale = runtime.query(reopened)
        runtime.query(untouched)
        assert runtime.query(reopened).cache.hit  # both warm
        assert runtime.query(untouched).cache.hit

        # a parked epoch-0 export redelivers late: _deliver_flowdb
        # inserts it with its original (historical) interval
        template = runtime.db.entries(None, None, None)[0]
        runtime.db.insert(
            location=template.location,
            interval=TimeInterval(5.0, 55.0),
            tree=template.tree.copy(),
        )
        for site in sites:
            runtime.ingest(site, generator.epoch(site, 2))
        runtime.close_epoch(180.0)

        fresh = runtime.query(reopened)
        assert fresh.cache.hit is False  # late arrival reopened it
        assert fresh.scalar.bytes > stale.scalar.bytes  # recovered mass
        assert runtime.query(untouched).cache.hit  # disjoint: survived

    def test_replica_promotion_retires_cached_plans_mid_window(self):
        """Promoting a partition to a root-side replica mid-window must
        change the cache key (the plan now reads locally): the stale
        pre-promotion entry may not be served."""
        from repro.runtime.presets import network_4level_runtime
        from repro.simulation.traffic import TrafficConfig, TrafficGenerator

        runtime = network_4level_runtime(
            networks=1, regions_per_network=1, routers_per_region=2,
            retain_partitions=True,
        )
        sites = runtime.ingest_sites()
        generator = TrafficGenerator(
            TrafficConfig(sites=tuple(sites), flows_per_epoch=120), seed=9
        )
        for site in sites:
            runtime.ingest(site, generator.epoch(site, 0))
        runtime.close_epoch(60.0)

        flowql = f"SELECT TOTAL FROM ALL AT {sites[0]}"
        first = runtime.query(flowql)
        assert first.plan.route == "federated"
        repeat = runtime.query(flowql)
        assert repeat.cache.hit  # warm before the promotion

        store = runtime.store_for(sites[0])
        for partition in store.catalog.all():
            store.replicate_partition(
                partition.partition_id, runtime.planner.replica_store,
                now=70.0,
            )
        promoted = runtime.query(flowql)
        assert promoted.cache.hit is False  # generation changed the key
        assert promoted.scalar == first.scalar
        read = promoted.plan.reads[0]
        assert read.replica_partitions  # and the replica actually served
        assert read.shipped_bytes == 0

    def test_caching_complements_replication(self, pair, policy):
        """Cache serves repeats of one query; the replica serves *any*
        query — the paper's reason to prefer replication."""
        producer, consumer, fabric = pair
        consumer.query_federated(
            "ft", QueryRequest("total", {}), start=0.0, end=60.0, now=70.0
        )
        partition = producer.catalog.all()[0]
        producer.replicate_partition(partition.partition_id, consumer,
                                     now=72.0)
        fresh = consumer.query_federated(
            "ft", QueryRequest("top_k", {"k": 3}), start=0.0, end=60.0,
            now=73.0,
        )
        assert fresh.source == "replica"  # never seen before, still local

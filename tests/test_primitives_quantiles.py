"""Unit and property tests for the KLL quantile sketch."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.primitive import AdaptationFeedback, QueryRequest
from repro.core.quantiles import KLLSketch, QuantilePrimitive
from repro.core.summary import Location
from repro.errors import GranularityError

LOC = Location("hq/factory1/line1")


class TestKLLSketch:
    def test_exact_when_small(self):
        sketch = KLLSketch(k=64)
        for value in range(1, 11):
            sketch.add(float(value))
        assert sketch.quantile(0.0) == 1.0
        assert sketch.quantile(1.0) == 10.0
        assert sketch.quantile(0.5) == pytest.approx(5.0, abs=1.0)

    def test_empty(self):
        sketch = KLLSketch()
        assert sketch.quantile(0.5) is None
        assert sketch.cdf(10.0) == 0.0

    def test_quantile_validation(self):
        sketch = KLLSketch()
        sketch.add(1.0)
        with pytest.raises(ValueError):
            sketch.quantile(-0.1)
        with pytest.raises(ValueError):
            sketch.quantile(1.1)
        with pytest.raises(GranularityError):
            KLLSketch(k=4)

    def test_bounded_footprint(self):
        sketch = KLLSketch(k=128, seed=1)
        for i in range(100_000):
            sketch.add(float(i))
        # sub-linear retention: ~k log(n/k) items, far below the stream
        assert sketch.retained() < 3000
        assert sketch.count == 100_000

    def test_rank_error_bounded(self):
        rng = random.Random(7)
        n = 50_000
        values = [rng.random() for _ in range(n)]
        sketch = KLLSketch(k=256, seed=1)
        for value in values:
            sketch.add(value)
        values.sort()
        for q in (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99):
            estimate = sketch.quantile(q)
            true_rank = q * n
            # locate the estimate's true rank
            import bisect

            estimated_rank = bisect.bisect_right(values, estimate)
            assert abs(estimated_rank - true_rank) < 0.03 * n, (
                f"quantile {q}: rank error "
                f"{abs(estimated_rank - true_rank) / n:.3f}"
            )

    def test_extremes_exact(self):
        sketch = KLLSketch(k=64, seed=2)
        rng = random.Random(3)
        low, high = -123.5, 987.25
        sketch.add(low)
        sketch.add(high)
        for _ in range(10_000):
            sketch.add(rng.uniform(0, 100))
        assert sketch.quantile(0.0) == low
        assert sketch.quantile(1.0) == high

    def test_merge_equivalent_to_union(self):
        rng = random.Random(11)
        a_values = [rng.gauss(0, 1) for _ in range(5000)]
        b_values = [rng.gauss(5, 1) for _ in range(5000)]
        a = KLLSketch(k=256, seed=1)
        b = KLLSketch(k=256, seed=2)
        union = KLLSketch(k=256, seed=3)
        for value in a_values:
            a.add(value)
            union.add(value)
        for value in b_values:
            b.add(value)
            union.add(value)
        a.merge(b)
        assert a.count == 10_000
        # compare by rank, not value: between the two modes the density
        # is near zero, so tiny rank errors translate to large value
        # gaps — rank error is the quantity KLL actually bounds
        import bisect

        all_values = sorted(a_values + b_values)
        for q in (0.25, 0.5, 0.75):
            estimate = a.quantile(q)
            rank = bisect.bisect_right(all_values, estimate)
            assert abs(rank - q * 10_000) < 0.05 * 10_000

    def test_cdf_monotone(self):
        sketch = KLLSketch(k=64, seed=4)
        rng = random.Random(5)
        for _ in range(2000):
            sketch.add(rng.random())
        previous = 0.0
        for value in (0.1, 0.3, 0.5, 0.7, 0.9):
            current = sketch.cdf(value)
            assert current >= previous
            previous = current


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=500,
    )
)
def test_kll_quantiles_within_range_property(values):
    sketch = KLLSketch(k=32, seed=1)
    for value in values:
        sketch.add(value)
    assert sketch.count == len(values)
    for q in (0.0, 0.25, 0.5, 0.75, 1.0):
        estimate = sketch.quantile(q)
        assert min(values) <= estimate <= max(values)


class TestQuantilePrimitive:
    def test_query_operators(self):
        primitive = QuantilePrimitive(LOC, k=64, seed=1)
        for i in range(1, 101):
            primitive.ingest(float(i), float(i))
        assert primitive.query(QueryRequest("count", {})) == 100
        median = primitive.query(QueryRequest("median", {}))
        assert 40 <= median <= 60
        q90 = primitive.query(QueryRequest("quantile", {"q": 0.9}))
        assert 80 <= q90 <= 100
        qs = primitive.query(
            QueryRequest("quantiles", {"qs": [0.1, 0.5, 0.9]})
        )
        assert qs == sorted(qs)
        assert primitive.query(QueryRequest("cdf", {"value": 50.0})) == (
            pytest.approx(0.5, abs=0.1)
        )

    def test_value_extractor(self):
        primitive = QuantilePrimitive(
            LOC, k=64, value_of=lambda reading: reading["v"]
        )
        primitive.ingest({"v": 42.0}, 0.0)
        assert primitive.query(QueryRequest("median", {})) == 42.0

    def test_combine(self):
        a = QuantilePrimitive(LOC, k=64, seed=1)
        b = QuantilePrimitive(LOC, k=64, seed=2)
        for i in range(100):
            a.ingest(float(i), float(i))
            b.ingest(float(i + 100), float(i))
        a.combine(b)
        assert a.sketch.count == 200
        median = a.query(QueryRequest("median", {}))
        assert 80 <= median <= 120

    def test_adapt(self):
        primitive = QuantilePrimitive(LOC, k=128)
        primitive.adapt(AdaptationFeedback(storage_pressure=0.9))
        assert primitive.sketch.k == 64

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            QuantilePrimitive(LOC).query(QueryRequest("nope", {}))

    def test_registry(self):
        from repro.core import default_registry

        primitive = default_registry().create("quantile", LOC, {"k": 32})
        assert primitive.sketch.k == 32

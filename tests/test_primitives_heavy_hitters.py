"""Unit and property tests for Space-Saving heavy hitters."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.heavy_hitters import HeavyHitterPrimitive, SpaceSaving
from repro.core.primitive import AdaptationFeedback, QueryRequest
from repro.core.summary import Location
from repro.errors import GranularityError

LOC = Location("net/region1")


class TestSpaceSaving:
    def test_exact_when_under_capacity(self):
        sketch = SpaceSaving(capacity=10)
        for item, count in [("a", 5), ("b", 3), ("c", 2)]:
            for _ in range(count):
                sketch.offer(item)
        assert sketch.estimate("a") == (5.0, 0.0)
        assert sketch.estimate("b") == (3.0, 0.0)
        assert sketch.top(2)[0][0] == "a"

    def test_eviction_tracks_error(self):
        sketch = SpaceSaving(capacity=2)
        sketch.offer("a", 10)
        sketch.offer("b", 5)
        sketch.offer("c", 1)  # evicts b? no: evicts the min counter (b=5)
        count, error = sketch.estimate("c")
        assert count == 6.0  # victim count + weight
        assert error == 5.0

    def test_estimate_never_underestimates(self):
        rng = random.Random(0)
        truth = {}
        sketch = SpaceSaving(capacity=20)
        for _ in range(2000):
            item = rng.randrange(200)
            truth[item] = truth.get(item, 0) + 1
            sketch.offer(item)
        for item, true_count in truth.items():
            estimate, _error = sketch.estimate(item)
            assert estimate >= true_count

    def test_error_bound(self):
        """max overestimation is bounded by total/capacity."""
        rng = random.Random(1)
        sketch = SpaceSaving(capacity=50)
        for _ in range(5000):
            sketch.offer(rng.randrange(500))
        bound = sketch.total_weight / sketch.capacity
        for _item, _count, error in sketch.top(50):
            assert error <= bound + 1e-9

    def test_heavy_hitters_guaranteed_mode(self):
        sketch = SpaceSaving(capacity=10)
        for _ in range(900):
            sketch.offer("heavy")
        for i in range(100):
            sketch.offer(f"light{i % 30}")
        guaranteed = sketch.heavy_hitters(0.5, guaranteed_only=True)
        assert [item for item, _, _ in guaranteed] == ["heavy"]

    def test_heavy_hitters_phi_validation(self):
        sketch = SpaceSaving(4)
        with pytest.raises(ValueError):
            sketch.heavy_hitters(0.0)
        with pytest.raises(ValueError):
            sketch.heavy_hitters(1.0)

    def test_merge_preserves_totals_and_bounds(self):
        rng = random.Random(2)
        truth = {}
        a, b = SpaceSaving(30), SpaceSaving(30)
        for sketch in (a, b):
            for _ in range(1000):
                item = rng.randrange(100)
                truth[item] = truth.get(item, 0) + 1
                sketch.offer(item)
        a.merge(b)
        assert a.total_weight == 2000
        assert len(a) <= 30
        for item, _count, _error in a.top(30):
            estimate, _ = a.estimate(item)
            assert estimate >= truth.get(item, 0) - a.total_weight / 30

    def test_resize_shrinks(self):
        sketch = SpaceSaving(10)
        for i in range(10):
            sketch.offer(i, weight=i + 1)
        sketch.resize(3)
        assert len(sketch) == 3
        assert sketch.capacity == 3
        assert {item for item, _, _ in sketch.top(3)} == {9, 8, 7}

    def test_invalid_inputs(self):
        with pytest.raises(GranularityError):
            SpaceSaving(0)
        sketch = SpaceSaving(2)
        with pytest.raises(ValueError):
            sketch.offer("x", weight=0)


@settings(max_examples=50, deadline=None)
@given(
    items=st.lists(st.integers(min_value=0, max_value=50), min_size=1,
                   max_size=400),
    capacity=st.integers(min_value=2, max_value=30),
)
def test_space_saving_overestimate_property(items, capacity):
    """estimate - error <= truth <= estimate, for every tracked item."""
    truth = {}
    sketch = SpaceSaving(capacity)
    for item in items:
        truth[item] = truth.get(item, 0) + 1
        sketch.offer(item)
    for item, count, error in sketch.top(capacity):
        assert count >= truth[item]
        assert count - error <= truth[item]


class TestPrimitive:
    def test_query_operators(self):
        primitive = HeavyHitterPrimitive(LOC, capacity=16)
        for _ in range(50):
            primitive.ingest("hot", 0.0)
        primitive.ingest("cold", 0.0)
        top = primitive.query(QueryRequest("top_k", {"k": 1}))
        assert top[0][0] == "hot"
        count, _ = primitive.query(QueryRequest("count", {"item": "hot"}))
        assert count == 50
        hitters = primitive.query(QueryRequest("heavy_hitters", {"phi": 0.5}))
        assert hitters[0][0] == "hot"
        assert primitive.query(QueryRequest("total", {})) == 51

    def test_weight_extractor(self):
        primitive = HeavyHitterPrimitive(
            LOC, capacity=8, weight_of=lambda pair: pair[1]
        )
        primitive.ingest(("flow", 100.0), 0.0)
        assert primitive.query(QueryRequest("total", {})) == 100.0

    def test_combine(self):
        a = HeavyHitterPrimitive(LOC, capacity=8)
        b = HeavyHitterPrimitive(LOC, capacity=8)
        a.ingest("x", 0.0)
        b.ingest("x", 0.5)
        a.combine(b)
        count, _ = a.query(QueryRequest("count", {"item": "x"}))
        assert count == 2

    def test_adapt_shrinks_capacity(self):
        primitive = HeavyHitterPrimitive(LOC, capacity=64)
        primitive.adapt(AdaptationFeedback(storage_pressure=0.9))
        assert primitive.sketch.capacity == 32

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            HeavyHitterPrimitive(LOC).query(QueryRequest("nope", {}))

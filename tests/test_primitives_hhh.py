"""Unit tests for the hierarchical-heavy-hitter primitive."""

import pytest

from repro.core.hhh_primitive import HierarchicalHeavyHitterPrimitive
from repro.core.primitive import AdaptationFeedback, QueryRequest
from repro.core.summary import Location
from repro.errors import SchemaMismatchError
from repro.flows.flowkey import SRC_DST, GeneralizationPolicy
from repro.flows.records import FlowRecord

LOC = Location("net/region1/router1")


def flow(make_key, src_ip, bytes=1000, dst_port=443):
    return FlowRecord(
        key=make_key(src_ip=src_ip, dst_port=dst_port),
        packets=1,
        bytes=bytes,
        first_seen=0.0,
        last_seen=1.0,
    )


@pytest.fixture()
def primitive(policy):
    return HierarchicalHeavyHitterPrimitive(
        LOC, policy, capacity_per_level=64
    )


class TestIngestAndQuery:
    def test_count_per_depth(self, primitive, policy, make_key):
        record = flow(make_key, "10.0.0.1", bytes=500)
        primitive.ingest(record, 0.0)
        # the exact key is countable
        assert primitive.query(
            QueryRequest("count", {"key": record.key})
        ) == 500
        # and so is its /8 generalization (on-chain depth 1)
        prefix = policy.key_at(record.key, 1)
        assert primitive.query(QueryRequest("count", {"key": prefix})) == 500

    def test_off_chain_count_rejected(self, primitive, make_key):
        off = make_key().with_levels((8, 0, 0, 0, 0))
        with pytest.raises(ValueError):
            primitive.query(QueryRequest("count", {"key": off}))

    def test_top_k_at_depth(self, primitive, make_key):
        primitive.ingest(flow(make_key, "10.0.0.1", bytes=900), 0.0)
        primitive.ingest(flow(make_key, "11.0.0.1", bytes=100), 0.0)
        top = primitive.query(QueryRequest("top_k", {"k": 1, "depth": 1}))
        assert len(top) == 1
        key, weight = top[0]
        assert weight == 900
        assert key.feature_level("src_ip") == 8

    def test_hhh_finds_distributed_prefix(self, primitive, make_key):
        # 30 small flows inside 10/8, each individually under threshold
        for i in range(30):
            primitive.ingest(
                flow(make_key, f"10.{i}.0.1", bytes=100), 0.0
            )
        results = primitive.query(QueryRequest("hhh", {"threshold": 2000}))
        assert results, "expected a hierarchical heavy hitter"
        key, weight = results[0]
        assert key.feature_level("src_ip") <= 8
        assert weight >= 2000

    def test_hhh_discounts(self, primitive, make_key):
        # one huge leaf: ancestors must not be re-reported
        primitive.ingest(flow(make_key, "10.0.0.1", bytes=10_000), 0.0)
        results = primitive.query(QueryRequest("hhh", {"threshold": 5000}))
        assert len(results) == 1

    def test_unknown_operator(self, primitive):
        with pytest.raises(ValueError):
            primitive.query(QueryRequest("nope", {}))


class TestLifecycle:
    def test_combine(self, policy, make_key):
        a = HierarchicalHeavyHitterPrimitive(LOC, policy, 32)
        b = HierarchicalHeavyHitterPrimitive(LOC, policy, 32)
        record = flow(make_key, "10.0.0.1", bytes=100)
        a.ingest(record, 0.0)
        b.ingest(record, 0.5)
        a.combine(b)
        assert a.query(QueryRequest("count", {"key": record.key})) == 200

    def test_combine_policy_mismatch(self, policy, make_key):
        a = HierarchicalHeavyHitterPrimitive(LOC, policy, 32)
        other_policy = GeneralizationPolicy.default_for(SRC_DST)
        b = HierarchicalHeavyHitterPrimitive(LOC, other_policy, 32)
        record = flow(make_key, "10.0.0.1")
        a.ingest(record, 0.0)
        b.items_ingested = 1  # force the meta path to reach policy check
        b._epoch_start, b._epoch_end = 0.0, 1.0
        with pytest.raises(SchemaMismatchError):
            a.combine(b)

    def test_granularity_resizes_all_levels(self, primitive):
        primitive.set_granularity(16)
        assert all(
            sketch.capacity == 16 for sketch in primitive._sketches.values()
        )

    def test_adapt(self, primitive):
        primitive.adapt(AdaptationFeedback(storage_pressure=0.9))
        assert primitive.capacity_per_level == 32

    def test_reset_epoch(self, primitive, make_key):
        primitive.ingest(flow(make_key, "10.0.0.1"), 0.0)
        summary = primitive.reset_epoch()
        assert summary.kind == "hhh"
        assert primitive.query(QueryRequest("hhh", {"threshold": 1})) == []

    def test_domain_knowledge_flag(self, primitive):
        assert primitive.uses_domain_knowledge is True

    def test_footprint(self, primitive, policy):
        assert primitive.footprint_bytes() >= 32 * (policy.depth + 1)

"""The generalized-flow model beyond networking: a factory-event schema.

Section V demands primitives that "make use of domain knowledge to
provide meaningful levels of aggregation".  The flow model is not tied
to IP networking: any tuple of maskable features works.  This test
builds a factory-event schema (machine id with a line/machine
hierarchy encoded in its bits, event type, severity) and checks every
Flowtree operator behaves over it.
"""

import pytest

from repro.errors import SchemaMismatchError
from repro.flows.features import Feature
from repro.flows.flowkey import FeatureSchema, GeneralizationPolicy
from repro.flows.records import Score
from repro.flows.tree import Flowtree

# machine ids encode line in the high byte, machine in the low byte —
# masking to /8 aggregates machines into their line, the factory's own
# hierarchy (Table I challenge 7) expressed as a feature mask
MACHINE = Feature("machine", bits=16)
EVENT_TYPE = Feature("event_type", bits=8)
SEVERITY = Feature("severity", bits=8)

FACTORY_EVENTS = FeatureSchema(
    "factory_events", (MACHINE, EVENT_TYPE, SEVERITY)
)

#: generalize severity first, then event type, then machine -> line
POLICY = GeneralizationPolicy.build(
    FACTORY_EVENTS,
    [
        ("machine", 8),      # line level
        ("machine", 16),     # machine level
        ("event_type", 8),
        ("severity", 8),
    ],
)


def machine_id(line: int, machine: int) -> int:
    return (line << 8) | machine


def event_key(line=1, machine=1, event_type=3, severity=2):
    return FACTORY_EVENTS.key(
        machine=machine_id(line, machine),
        event_type=event_type,
        severity=severity,
    )


@pytest.fixture()
def tree():
    tree = Flowtree(POLICY, node_budget=None, metric="flows")
    # line 1: two machines with vibration events (type 3)
    tree.add(event_key(1, 1, 3, 2), Score(0, 0, 5))
    tree.add(event_key(1, 2, 3, 4), Score(0, 0, 3))
    # line 2: one machine with temperature events (type 7)
    tree.add(event_key(2, 1, 7, 1), Score(0, 0, 9))
    return tree


class TestFactoryEventTree:
    def test_machine_level_query(self, tree):
        assert tree.query(event_key(1, 1, 3, 2)).flows == 5

    def test_line_level_aggregation(self, tree):
        line1 = event_key(1, 1).with_levels((8, 0, 0))
        assert tree.query(line1).flows == 8
        line2 = event_key(2, 1).with_levels((8, 0, 0))
        assert tree.query(line2).flows == 9

    def test_group_by_event_type(self, tree):
        groups = tree.aggregate_by_feature("event_type", 8, metric="flows")
        by_type = {
            key.feature_value("event_type"): score.flows
            for key, score in groups
        }
        assert by_type == {3: 8, 7: 9}

    def test_top_k_lines(self, tree):
        top = tree.top_k(1, depth=1, metric="flows")
        assert top[0][1].flows == 9  # line 2 dominates

    def test_merge_across_shifts(self, tree):
        night = Flowtree(POLICY, node_budget=None, metric="flows")
        night.add(event_key(1, 1, 3, 2), Score(0, 0, 2))
        merged = Flowtree.merged(tree, night)
        assert merged.query(event_key(1, 1, 3, 2)).flows == 7

    def test_diff_between_shifts(self, tree):
        later = tree.copy()
        later.add(event_key(1, 2, 3, 4), Score(0, 0, 10))
        delta = later.diff(tree)
        assert delta.query(event_key(1, 2, 3, 4)).flows == 10
        assert delta.query(event_key(1, 1, 3, 2)).flows == 0

    def test_hhh_finds_eventful_line(self, tree):
        results = tree.hhh(8, metric="flows")
        keys = [r.key for r in results]
        assert any(k.feature_level("machine") in (8, 16) for k in keys)

    def test_compression_respects_custom_policy(self):
        tree = Flowtree(POLICY, node_budget=POLICY.depth + 2, metric="flows")
        for line in range(4):
            for machine in range(8):
                tree.add(
                    event_key(line + 1, machine + 1), Score(0, 0, 1)
                )
        assert tree.node_count <= POLICY.depth + 2
        assert tree.total().flows == 32

    def test_network_tree_incompatible(self, tree, policy, make_key):
        network_tree = Flowtree(policy)
        with pytest.raises(SchemaMismatchError):
            tree.merge(network_tree)
        with pytest.raises(SchemaMismatchError):
            tree.query(make_key())

    def test_serialization_roundtrip(self, tree):
        clone = Flowtree.from_dict(tree.to_dict(), POLICY)
        assert clone.total() == tree.total()
        assert clone.query(event_key(1, 1, 3, 2)).flows == 5

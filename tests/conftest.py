"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.summary import Location
from repro.flows.flowkey import FIVE_TUPLE, GeneralizationPolicy
from repro.flows.records import FlowRecord, Score
from repro.simulation.traffic import TrafficConfig, TrafficGenerator


@pytest.fixture(scope="session")
def policy() -> GeneralizationPolicy:
    """The default 5-tuple generalization policy (depth 13)."""
    return GeneralizationPolicy.default_for(FIVE_TUPLE)


@pytest.fixture()
def location() -> Location:
    return Location("cloud/region1/router1")


@pytest.fixture()
def make_key():
    """Factory for fully-specific 5-tuple keys."""

    def _make(
        proto: int = 6,
        src_ip: str = "10.1.2.3",
        dst_ip: str = "192.168.0.1",
        src_port: int = 12345,
        dst_port: int = 443,
    ):
        return FIVE_TUPLE.key(
            proto=proto,
            src_ip=src_ip,
            dst_ip=dst_ip,
            src_port=src_port,
            dst_port=dst_port,
        )

    return _make


@pytest.fixture()
def random_flows(make_key):
    """Deterministic batch of random flow records."""

    def _make(count: int = 200, seed: int = 1, epoch: int = 0):
        rng = random.Random(seed)
        start = epoch * 60.0
        records = []
        for _ in range(count):
            key = FIVE_TUPLE.key(
                proto=rng.choice([6, 17]),
                src_ip=rng.randrange(2**32),
                dst_ip=rng.randrange(2**32),
                src_port=rng.randrange(1024, 65536),
                dst_port=rng.choice([80, 443, 53]),
            )
            packets = rng.randrange(1, 50)
            first = start + rng.uniform(0, 50)
            records.append(
                FlowRecord(
                    key=key,
                    packets=packets,
                    bytes=packets * rng.randrange(64, 1500),
                    first_seen=first,
                    last_seen=first + rng.uniform(0, 9),
                )
            )
        return records

    return _make


@pytest.fixture()
def traffic_generator() -> TrafficGenerator:
    """A small, fast traffic generator over two sites."""
    return TrafficGenerator(
        TrafficConfig(
            sites=("region1/router1", "region2/router1"),
            flows_per_epoch=400,
            external_hosts=2000,
        ),
        seed=7,
    )


def score(packets: int = 1, bytes: int = 100, flows: int = 1) -> Score:
    """Shorthand score constructor used across tests."""
    return Score(packets=packets, bytes=bytes, flows=flows)

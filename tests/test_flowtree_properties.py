"""Property-based tests (hypothesis) for Flowtree invariants.

The invariants pinned here are the ones the architecture relies on:

* **Mass conservation** — compression moves popularity, never loses it.
* **Merge linearity** — the root total of a merge is the sum of inputs,
  regardless of order.
* **Query soundness** — any single query is bounded by the total; on
  uncompressed trees exact per-key answers hold.
* **Serialization fidelity** — to_dict/from_dict is the identity on
  observable behaviour.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flows.flowkey import FIVE_TUPLE, GeneralizationPolicy
from repro.flows.records import Score
from repro.flows.tree import Flowtree

POLICY = GeneralizationPolicy.default_for(FIVE_TUPLE)

# Keys drawn from a small universe so collisions (shared prefixes and
# exact duplicates) actually happen.
key_strategy = st.builds(
    lambda proto, s, d, sp, dp: FIVE_TUPLE.key(
        proto=proto,
        src_ip=(10 << 24) | s,
        dst_ip=(192 << 24) | d,
        src_port=sp,
        dst_port=dp,
    ),
    proto=st.sampled_from([6, 17]),
    s=st.integers(min_value=0, max_value=2**16),
    d=st.integers(min_value=0, max_value=255),
    sp=st.integers(min_value=1024, max_value=1064),
    dp=st.sampled_from([80, 443, 53]),
)

score_strategy = st.builds(
    Score,
    packets=st.integers(min_value=1, max_value=1000),
    bytes=st.integers(min_value=1, max_value=10**6),
    flows=st.integers(min_value=0, max_value=10),
)

inserts_strategy = st.lists(
    st.tuples(key_strategy, score_strategy), min_size=1, max_size=60
)


def build_tree(inserts, budget=None):
    tree = Flowtree(POLICY, node_budget=budget)
    for key, score in inserts:
        tree.add(key, score)
    return tree


def total_of(inserts) -> Score:
    total = Score.zero()
    for _, score in inserts:
        total = total + score
    return total


@settings(max_examples=60, deadline=None)
@given(inserts=inserts_strategy)
def test_total_equals_inserted_mass(inserts):
    tree = build_tree(inserts)
    assert tree.total() == total_of(inserts)


@settings(max_examples=60, deadline=None)
@given(inserts=inserts_strategy)
def test_compression_preserves_total(inserts):
    tree = build_tree(inserts, budget=POLICY.depth + 2)
    assert tree.total() == total_of(inserts)
    assert tree.node_count <= POLICY.depth + 2


@settings(max_examples=60, deadline=None)
@given(inserts=inserts_strategy)
def test_root_total_bounds_every_query(inserts):
    tree = build_tree(inserts)
    total = tree.total()
    for key, _ in inserts[:10]:
        result = tree.query(key)
        assert result.bytes <= total.bytes
        assert result.packets <= total.packets


@settings(max_examples=60, deadline=None)
@given(inserts=inserts_strategy)
def test_uncompressed_queries_are_exact(inserts):
    tree = build_tree(inserts)
    expected = {}
    for key, score in inserts:
        expected[key] = expected.get(key, Score.zero()) + score
    for key, score in expected.items():
        assert tree.query(key) == score


@settings(max_examples=40, deadline=None)
@given(a=inserts_strategy, b=inserts_strategy)
def test_merge_totals_commute(a, b):
    left = Flowtree.merged(build_tree(a), build_tree(b))
    right = Flowtree.merged(build_tree(b), build_tree(a))
    assert left.total() == right.total()
    assert left.total() == total_of(a) + total_of(b)


@settings(max_examples=40, deadline=None)
@given(a=inserts_strategy, b=inserts_strategy)
def test_merge_pointwise_adds(a, b):
    merged = Flowtree.merged(build_tree(a), build_tree(b))
    ta, tb = build_tree(a), build_tree(b)
    for key, _ in (a + b)[:10]:
        assert merged.query(key) == ta.query(key) + tb.query(key)


@settings(max_examples=40, deadline=None)
@given(inserts=inserts_strategy)
def test_diff_with_self_is_zero_everywhere(inserts):
    tree = build_tree(inserts)
    delta = tree.diff(tree)
    assert delta.total().is_zero()
    for key, _ in inserts[:10]:
        assert delta.query(key).is_zero()


@settings(max_examples=40, deadline=None)
@given(inserts=inserts_strategy)
def test_serialization_roundtrip(inserts):
    tree = build_tree(inserts, budget=64)
    clone = Flowtree.from_dict(tree.to_dict(), POLICY)
    assert clone.total() == tree.total()
    assert clone.node_count == tree.node_count
    for key, _ in inserts[:10]:
        assert clone.query(key) == tree.query(key)


@settings(max_examples=40, deadline=None)
@given(inserts=inserts_strategy, k=st.integers(min_value=1, max_value=10))
def test_top_k_is_sorted_and_bounded(inserts, k):
    tree = build_tree(inserts)
    top = tree.top_k(k)
    assert len(top) <= k
    values = [score.bytes for _, score in top]
    assert values == sorted(values, reverse=True)


@settings(max_examples=40, deadline=None)
@given(inserts=inserts_strategy, x=st.integers(min_value=0, max_value=10**6))
def test_above_x_respects_threshold(inserts, x):
    tree = build_tree(inserts)
    for _, score in tree.above_x(x):
        assert score.bytes > x


@settings(max_examples=40, deadline=None)
@given(inserts=inserts_strategy)
def test_hhh_residuals_meet_threshold(inserts):
    tree = build_tree(inserts)
    threshold = max(1, tree.total().bytes // 4)
    for result in tree.hhh(threshold):
        assert result.residual.bytes >= threshold


@settings(max_examples=40, deadline=None)
@given(
    inserts=inserts_strategy,
    budget=st.integers(min_value=POLICY.depth + 1, max_value=64),
)
def test_query_bounds_bracket_truth(inserts, budget):
    """For every inserted key: lower <= exact <= upper on the compressed
    tree, and bounds coincide exactly when the node survived."""
    exact = build_tree(inserts)
    compressed = build_tree(inserts, budget=budget)
    for key, _ in inserts[:15]:
        truth = exact.query(key)
        lower, upper = compressed.query_with_bound(key)
        assert lower.bytes <= truth.bytes <= upper.bytes
        assert lower.packets <= truth.packets <= upper.packets
        assert lower.flows <= truth.flows <= upper.flows


@settings(max_examples=40, deadline=None)
@given(inserts=inserts_strategy)
def test_group_by_partitions_total(inserts):
    """Grouping by any feature at level 0-ish covers the whole mass."""
    tree = build_tree(inserts)
    groups = tree.aggregate_by_feature("proto", 8)
    assert sum(score.bytes for _, score in groups) == tree.total().bytes

"""Unit tests for schemas, flow keys, and generalization policies."""

import pytest

from repro.errors import GranularityError, SchemaError
from repro.flows.features import PortFeature, parse_ipv4
from repro.flows.flowkey import (
    DST_IP_PORT,
    FIVE_TUPLE,
    SRC_DST,
    FeatureSchema,
    FlowKey,
    GeneralizationPolicy,
)


class TestSchema:
    def test_five_tuple_features(self):
        names = [f.name for f in FIVE_TUPLE.features]
        assert names == ["proto", "src_ip", "dst_ip", "src_port", "dst_port"]

    def test_duplicate_feature_names_rejected(self):
        with pytest.raises(SchemaError):
            FeatureSchema("bad", (PortFeature("p"), PortFeature("p")))

    def test_index_of_unknown(self):
        with pytest.raises(SchemaError):
            FIVE_TUPLE.index_of("nope")

    def test_key_builder_with_text_values(self):
        key = FIVE_TUPLE.key(
            proto="tcp",
            src_ip="10.0.0.1",
            dst_ip="10.0.0.2",
            src_port=1,
            dst_port=2,
        )
        assert key.feature_value("proto") == 6
        assert key.feature_value("src_ip") == parse_ipv4("10.0.0.1")
        assert key.is_fully_specific()

    def test_key_builder_missing_feature(self):
        with pytest.raises(SchemaError):
            FIVE_TUPLE.key(proto=6)

    def test_key_builder_unknown_feature(self):
        with pytest.raises(SchemaError):
            SRC_DST.key(src_ip="1.2.3.4", dst_ip="5.6.7.8", extra=1)

    def test_parse_values(self):
        values = SRC_DST.parse_values(
            {"src_ip": "1.2.3.4", "dst_ip": "5.6.7.8"}
        )
        assert values == (parse_ipv4("1.2.3.4"), parse_ipv4("5.6.7.8"))
        with pytest.raises(SchemaError):
            SRC_DST.parse_values({"src_ip": "1.2.3.4"})


class TestFlowKey:
    def test_values_masked_on_construction(self):
        key = FlowKey(
            SRC_DST,
            (parse_ipv4("10.1.2.3"), parse_ipv4("10.9.9.9")),
            (24, 0),
        )
        assert key.feature_value("src_ip") == parse_ipv4("10.1.2.0")
        assert key.feature_value("dst_ip") == 0

    def test_equal_keys_hash_equal(self):
        a = SRC_DST.key(src_ip="1.2.3.4", dst_ip="5.6.7.8")
        b = SRC_DST.key(src_ip="1.2.3.4", dst_ip="5.6.7.8")
        assert a == b
        assert hash(a) == hash(b)

    def test_generalize(self):
        key = SRC_DST.key(src_ip="10.1.2.3", dst_ip="10.4.5.6")
        general = key.generalize("src_ip", 8)
        assert general.feature_level("src_ip") == 8
        assert general.feature_value("src_ip") == parse_ipv4("10.0.0.0")

    def test_generalize_cannot_specialize(self):
        key = SRC_DST.key(src_ip="10.1.2.3", dst_ip="10.4.5.6").generalize(
            "src_ip", 8
        )
        with pytest.raises(GranularityError):
            key.generalize("src_ip", 24)

    def test_contains_prefix(self):
        specific = SRC_DST.key(src_ip="10.1.2.3", dst_ip="10.4.5.6")
        prefix = specific.generalize("src_ip", 8).generalize("dst_ip", 0)
        assert prefix.contains(specific)
        assert not specific.contains(prefix)
        assert prefix.contains(prefix)

    def test_contains_rejects_other_prefix(self):
        a = SRC_DST.key(src_ip="10.1.2.3", dst_ip="10.4.5.6").generalize(
            "src_ip", 8
        )
        other = SRC_DST.key(src_ip="11.1.2.3", dst_ip="10.4.5.6")
        assert not a.contains(other)

    def test_contains_requires_same_schema(self):
        a = SRC_DST.key(src_ip="10.1.2.3", dst_ip="10.4.5.6")
        b = DST_IP_PORT.key(dst_ip="10.4.5.6", dst_port=80)
        assert not a.contains(b)

    def test_fully_general(self):
        key = SRC_DST.key(src_ip="10.1.2.3", dst_ip="10.4.5.6")
        root = key.with_levels((0, 0))
        assert root.is_fully_general()

    def test_str_rendering(self):
        key = FIVE_TUPLE.key(
            proto="tcp",
            src_ip="10.1.2.3",
            dst_ip="10.4.5.6",
            src_port=1,
            dst_port=443,
        )
        text = str(key)
        assert "proto=tcp" in text
        assert "src_ip=10.1.2.3" in text

    def test_arity_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            FlowKey(SRC_DST, (1, 2, 3), (32, 32, 32))


class TestPolicy:
    def test_default_five_tuple_depth(self, policy):
        # 4 steps x 2 IPs + 1 proto + 2 steps x 2 ports = 13
        assert policy.depth == 13

    def test_root_and_leaf_vectors(self, policy):
        assert policy.levels_at(0) == (0, 0, 0, 0, 0)
        assert policy.levels_at(policy.depth) == FIVE_TUPLE.max_levels()

    def test_depth_of_roundtrip(self, policy):
        for depth in range(policy.depth + 1):
            assert policy.depth_of(policy.levels_at(depth)) == depth

    def test_depth_of_off_chain(self, policy):
        assert policy.depth_of((8, 0, 0, 0, 0)) is None

    def test_projection_nests(self, policy, make_key):
        key = make_key()
        deep = policy.project(key.values, policy.depth)
        for depth in range(policy.depth):
            direct = policy.project(key.values, depth)
            via_deep = policy.project(deep, depth)
            assert direct == via_deep

    def test_shallowest_covering_depth(self, policy):
        # asking for dst_port fully specific forces the leaf level
        levels = [0, 0, 0, 0, 16]
        depth = policy.shallowest_covering_depth(levels)
        vector = policy.levels_at(depth)
        assert all(v >= l for v, l in zip(vector, levels))
        # asking for nothing is satisfied at the root
        assert policy.shallowest_covering_depth([0, 0, 0, 0, 0]) == 0

    def test_nearest_depth_at_or_above(self, policy):
        assert policy.nearest_depth_at_or_above([0, 0, 0, 0, 0]) == 0
        assert (
            policy.nearest_depth_at_or_above(list(FIVE_TUPLE.max_levels()))
            == policy.depth
        )

    def test_build_rejects_non_specializing_step(self):
        with pytest.raises(GranularityError):
            GeneralizationPolicy.build(
                SRC_DST, [("src_ip", 8), ("src_ip", 8)]
            )

    def test_build_completes_chain(self):
        policy = GeneralizationPolicy.build(SRC_DST, [("src_ip", 8)])
        assert policy.level_vectors[-1] == SRC_DST.max_levels()

    def test_vectors_must_start_at_root(self):
        with pytest.raises(GranularityError):
            GeneralizationPolicy(SRC_DST, [(8, 0), (32, 32)])

    def test_vectors_must_end_fully_specific(self):
        with pytest.raises(GranularityError):
            GeneralizationPolicy(SRC_DST, [(0, 0), (8, 0)])

    def test_duplicate_vectors_rejected(self):
        with pytest.raises(GranularityError):
            GeneralizationPolicy(
                SRC_DST, [(0, 0), (0, 0), (32, 32)]
            )

    def test_compatibility(self, policy):
        other = GeneralizationPolicy.default_for(FIVE_TUPLE)
        assert policy.compatible_with(other)
        src_dst = GeneralizationPolicy.default_for(SRC_DST)
        assert not policy.compatible_with(src_dst)

    def test_key_at_projects(self, policy, make_key):
        key = make_key()
        mid = policy.key_at(key, 4)
        assert policy.depth_of(mid.levels) == 4
        assert mid.contains(key)

"""Hypothesis property: to_dict/from_dict is the identity on Flowtrees.

The segment log persists every sealed tree through this codec, so the
round-trip must be exact for every tree shape the runtime produces:
uncompressed trees, trees past one or many compression checkpoints
(small node budgets), every popularity metric, and empty trees.
"Exact" is checked two ways — the canonical ``to_dict`` form is stable
under a round trip, and the query surface (totals, point queries with
bounds, drilldown, hierarchical heavy hitters) answers identically.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flows.flowkey import FIVE_TUPLE, GeneralizationPolicy
from repro.flows.records import Score
from repro.flows.tree import Flowtree

POLICY = GeneralizationPolicy.default_for(FIVE_TUPLE)

# a small key universe so prefixes collide and folds actually happen
key_strategy = st.builds(
    lambda proto, s, d, sp, dp: FIVE_TUPLE.key(
        proto=proto,
        src_ip=(10 << 24) | s,
        dst_ip=(192 << 24) | d,
        src_port=sp,
        dst_port=dp,
    ),
    proto=st.sampled_from([6, 17]),
    s=st.integers(min_value=0, max_value=2**12),
    d=st.integers(min_value=0, max_value=63),
    sp=st.integers(min_value=1024, max_value=1040),
    dp=st.sampled_from([80, 443, 53]),
)

score_strategy = st.builds(
    Score,
    packets=st.integers(min_value=1, max_value=1000),
    bytes=st.integers(min_value=1, max_value=10**6),
    flows=st.integers(min_value=0, max_value=10),
)

inserts_strategy = st.lists(
    st.tuples(key_strategy, score_strategy), min_size=0, max_size=60
)

#: None = never compress; small budgets force compression checkpoints
#: (the floor is policy depth + 1 = 14, one root-to-leaf chain)
budget_strategy = st.sampled_from([None, 16, 32, 64])
metric_strategy = st.sampled_from(["bytes", "packets", "flows"])


def build_tree(inserts, budget, metric="bytes"):
    tree = Flowtree(POLICY, node_budget=budget, metric=metric)
    for key, score in inserts:
        tree.add(key, score)
    return tree


def canonical(tree):
    return json.dumps(tree.to_dict(), sort_keys=True)


def roundtrip(tree):
    return Flowtree.from_dict(
        json.loads(json.dumps(tree.to_dict())), POLICY
    )


@settings(max_examples=60, deadline=None)
@given(inserts=inserts_strategy, budget=budget_strategy,
       metric=metric_strategy)
def test_to_dict_stable_under_roundtrip(inserts, budget, metric):
    tree = build_tree(inserts, budget, metric)
    clone = roundtrip(tree)
    assert canonical(clone) == canonical(tree)
    # and idempotent: a second trip changes nothing
    assert canonical(roundtrip(clone)) == canonical(tree)


@settings(max_examples=60, deadline=None)
@given(inserts=inserts_strategy, budget=budget_strategy)
def test_query_surface_identical(inserts, budget):
    tree = build_tree(inserts, budget)
    clone = roundtrip(tree)
    assert clone.node_count == tree.node_count
    assert clone.metric == tree.metric
    assert clone.node_budget == tree.node_budget
    for key, _score in inserts[:10]:
        assert tree.query_with_bound(key) == clone.query_with_bound(key)
        assert tree.drilldown(key) == clone.drilldown(key)


@settings(max_examples=40, deadline=None)
@given(
    inserts=st.lists(
        st.tuples(key_strategy, score_strategy),
        min_size=30,
        max_size=60,
        unique_by=lambda pair: pair[0].values,
    ),
    metric=metric_strategy,
)
def test_compressed_tree_roundtrips(inserts, metric):
    """Trees past compression checkpoints survive the codec too."""
    tree = build_tree(inserts, budget=16, metric=metric)
    assert tree.compressions >= 1  # the budget forced at least one fold
    clone = roundtrip(tree)
    assert canonical(clone) == canonical(tree)
    # hierarchical heavy hitters — the fold-sensitive query — agree
    threshold = max(1, sum(s.metric(metric) for _, s in inserts) // 4)
    assert tree.hhh(threshold) == clone.hhh(threshold)


@settings(max_examples=30, deadline=None)
@given(inserts=inserts_strategy, budget=budget_strategy)
def test_merge_of_roundtripped_equals_merge_of_originals(inserts, budget):
    """Recovered trees merge exactly like the live trees they replace."""
    half = len(inserts) // 2
    left = build_tree(inserts[:half], budget)
    right = build_tree(inserts[half:], budget)

    live = Flowtree(POLICY, node_budget=budget)
    live.merge(left)
    live.merge(right)
    recovered = Flowtree(POLICY, node_budget=budget)
    recovered.merge(roundtrip(left))
    recovered.merge(roundtrip(right))
    assert canonical(recovered) == canonical(live)


def test_empty_tree_roundtrips():
    tree = Flowtree(POLICY, node_budget=64)
    clone = roundtrip(tree)
    assert canonical(clone) == canonical(tree)
    assert clone.node_count == tree.node_count
    probe = FIVE_TUPLE.key(
        proto=6, src_ip="10.0.0.1", dst_ip="192.168.0.1",
        src_port=1024, dst_port=443,
    )
    assert clone.query(probe) == tree.query(probe)

"""Tests for the analytics toolset."""

import pytest

from repro.analytics.inference import (
    CusumDetector,
    EwmaAnomalyDetector,
    LinearTrend,
    time_to_threshold,
)
from repro.analytics.mapreduce import LocalMapReduce
from repro.analytics.pipeline import Pipeline
from repro.analytics.transfer import (
    MessageBus,
    RequestReplyChannel,
    ScatterGather,
)
from repro.core.summary import LineageLog, Location
from repro.errors import ReproError
from repro.hierarchy.network import NetworkFabric
from repro.hierarchy.topology import smart_factory_hierarchy


class TestMessageBus:
    def test_publish_subscribe(self):
        bus = MessageBus()
        received = []
        bus.subscribe("alerts", lambda topic, msg: received.append(msg))
        assert bus.publish("alerts", {"x": 1}) == 1
        assert bus.publish("other", {"y": 2}) == 0
        assert received == [{"x": 1}]

    def test_multiple_subscribers(self):
        bus = MessageBus()
        a, b = [], []
        bus.subscribe("t", lambda _t, m: a.append(m))
        bus.subscribe("t", lambda _t, m: b.append(m))
        assert bus.publish("t", 1) == 2
        assert a == b == [1]

    def test_unsubscribe(self):
        bus = MessageBus()
        received = []

        def sink(topic, msg):
            received.append(msg)

        bus.subscribe("t", sink)
        bus.unsubscribe("t", sink)
        bus.publish("t", 1)
        assert received == []

    def test_fabric_accounting(self):
        hierarchy = smart_factory_hierarchy(factories=1)
        fabric = NetworkFabric(hierarchy)
        bus = MessageBus(fabric=fabric)
        bus.subscribe(
            "t", lambda _t, m: None, location=Location("hq/factory1")
        )
        bus.publish(
            "t", "payload", size_bytes=1000, origin=Location("hq")
        )
        assert fabric.total_bytes() == 1000


class TestScatterGather:
    def test_round_robin_order_preserved(self):
        sg = ScatterGather([lambda x: x * 2, lambda x: x * 3])
        assert sg.run([1, 1, 1, 1]) == [2, 3, 2, 3]

    def test_needs_workers(self):
        with pytest.raises(ReproError):
            ScatterGather([])


class TestRequestReply:
    def test_roundtrip(self):
        channel = RequestReplyChannel()
        channel.register("double", lambda x: x * 2)
        assert channel.request("double", 21) == 42
        assert channel.requests == 1

    def test_unknown_handler(self):
        with pytest.raises(ReproError):
            RequestReplyChannel().request("nope", 1)


class TestMapReduce:
    def test_word_count(self):
        engine = LocalMapReduce(partitions=3)
        records = ["a", "b", "a", "c", "a", "b"]
        counts = engine.word_count_style(records, key_of=lambda r: r)
        assert counts == {"a": 3, "b": 2, "c": 1}

    def test_combiner_reduces_shuffle(self):
        records = ["x"] * 100
        without = LocalMapReduce(partitions=4)
        without.run(
            records,
            mapper=lambda r: [(r, 1)],
            reducer=lambda k, vs: sum(vs),
        )
        with_combiner = LocalMapReduce(partitions=4)
        with_combiner.run(
            records,
            mapper=lambda r: [(r, 1)],
            reducer=lambda k, vs: sum(vs),
            combiner=lambda k, vs: sum(vs),
        )
        assert without.last_stats.shuffled_pairs == 100
        assert with_combiner.last_stats.shuffled_pairs == 4

    def test_multi_key_mapper(self):
        engine = LocalMapReduce()
        result = engine.run(
            [1, 2, 3],
            mapper=lambda r: [("even", r)] if r % 2 == 0 else [("odd", r)],
            reducer=lambda k, vs: sum(vs),
        )
        assert result == {"odd": 4, "even": 2}

    def test_invalid_partitions(self):
        with pytest.raises(ValueError):
            LocalMapReduce(partitions=0)


class TestPipeline:
    def test_stages_run_in_order(self):
        pipeline = (
            Pipeline("p")
            .add_stage("double", lambda x: x * 2)
            .add_stage("inc", lambda x: x + 1)
        )
        run = pipeline.run(10)
        assert run.output == 21
        assert [t.stage for t in run.timings] == ["double", "inc"]
        assert run.total_seconds >= 0

    def test_sinks_receive_output(self):
        outputs = []
        pipeline = Pipeline("p").add_stage("id", lambda x: x).feed_to(
            outputs.append
        )
        pipeline.run("data")
        assert outputs == ["data"]
        assert pipeline.runs == 1

    def test_lineage_recorded(self):
        lineage = LineageLog()
        pipeline = Pipeline(
            "p", lineage=lineage, location=Location("hq")
        ).add_stage("id", lambda x: x)
        pipeline.run(1, at_time=5.0)
        assert len(lineage) == 1


class TestInference:
    def test_ewma_flags_spike(self):
        detector = EwmaAnomalyDetector(alpha=0.1, z_threshold=4.0, warmup=10)
        import random

        rng = random.Random(0)
        for i in range(100):
            assert not detector.observe(10.0 + rng.gauss(0, 0.5), float(i))
        assert detector.observe(50.0, 100.0)
        assert len(detector.anomalies) == 1

    def test_ewma_baseline_not_polluted_by_anomaly(self):
        detector = EwmaAnomalyDetector(alpha=0.5, z_threshold=3.0, warmup=5)
        import random

        rng = random.Random(1)
        for i in range(50):
            detector.observe(10.0 + rng.gauss(0, 0.1), float(i))
        mean_before = detector.mean
        detector.observe(1000.0, 50.0)
        assert detector.mean == mean_before

    def test_cusum_detects_shift(self):
        detector = CusumDetector(target=10.0, slack=0.5, threshold=5.0)
        changes = [detector.observe(10.0, float(i)) for i in range(20)]
        assert not any(changes)
        for i in range(20):
            result = detector.observe(12.0, 20.0 + i)
            if result == "up":
                break
        else:
            pytest.fail("CUSUM never detected the upward shift")

    def test_cusum_direction(self):
        detector = CusumDetector(target=10.0, slack=0.1, threshold=3.0)
        for i in range(30):
            result = detector.observe(8.0, float(i))
            if result:
                assert result == "down"
                return
        pytest.fail("no detection")

    def test_cusum_validation(self):
        with pytest.raises(ValueError):
            CusumDetector(0, -1, 1)
        with pytest.raises(ValueError):
            CusumDetector(0, 0, 0)

    def test_linear_trend_exact_fit(self):
        points = [(t, 2.0 * t + 1.0) for t in range(10)]
        trend = LinearTrend.fit(points)
        assert trend.slope == pytest.approx(2.0)
        assert trend.intercept == pytest.approx(1.0)
        assert trend.r_squared == pytest.approx(1.0)
        assert trend.value_at(100.0) == pytest.approx(201.0)

    def test_trend_needs_two_points(self):
        with pytest.raises(ValueError):
            LinearTrend.fit([(0.0, 1.0)])

    def test_trend_degenerate_time(self):
        trend = LinearTrend.fit([(1.0, 5.0), (1.0, 7.0)])
        assert trend.slope == 0.0
        assert trend.intercept == 6.0

    def test_time_to_threshold(self):
        trend = LinearTrend(slope=2.0, intercept=0.0, r_squared=1.0)
        assert time_to_threshold(trend, current_time=0.0, threshold=10.0) == (
            pytest.approx(5.0)
        )

    def test_time_to_threshold_already_crossed(self):
        trend = LinearTrend(slope=1.0, intercept=100.0, r_squared=1.0)
        assert time_to_threshold(trend, 0.0, 50.0) == 0.0

    def test_time_to_threshold_receding(self):
        trend = LinearTrend(slope=-1.0, intercept=0.0, r_squared=1.0)
        assert time_to_threshold(trend, 0.0, 50.0) is None

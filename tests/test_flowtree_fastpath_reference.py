"""Differential tests: the hot-path Flowtree vs. a naive reference.

The Flowtree ingest/merge/compress path is heavily optimized (single
projected chain walk, in-place integer counters, a persistent lazy
compression heap, bounded-overshoot batching).  None of that may change
*what* the tree computes.  This module pins the semantics with a
:class:`ReferenceFlowtree` — a deliberately slow implementation that
allocates frozen :class:`Score` objects per update, re-projects every
level on every operation, and recomputes the least-popular leaf from
scratch on every fold — and hypothesis-driven interleavings of
``add``/``add_many``/``merge``/``compress`` asserting the two stay
node-for-node, counter-for-counter identical.

The canonical semantics both implement:

* nodes are created in first-touch order (``seq``); merge walks the
  other tree root-down, LIFO over child dicts in insertion order;
* compression folds leaves in ``(metric, seq)`` order until the target
  is reached;
* batched ingest compresses mid-batch only past
  ``budget + max(64, budget // 8)`` nodes, and re-establishes
  ``node_count <= budget`` before returning.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flows.features import Feature
from repro.flows.flowkey import FeatureSchema, FlowKey, GeneralizationPolicy
from repro.flows.records import Score
from repro.flows.tree import Flowtree

SCHEMA = FeatureSchema(
    "fastpath_pair",
    (Feature("hi", bits=8), Feature("lo", bits=8)),
)

#: depth 4 chain: root -> hi/4 -> hi/8 -> +lo/4 -> +lo/8
POLICY = GeneralizationPolicy.build(
    SCHEMA,
    [("hi", 4), ("hi", 8), ("lo", 4), ("lo", 8)],
)


def key_of(hi: int, lo: int) -> FlowKey:
    return SCHEMA.key(hi=hi, lo=lo)


class ReferenceFlowtree:
    """The naive, pre-optimization Flowtree semantics.

    Same canonical behavior as :class:`Flowtree`, implemented the slow
    way on purpose: per-level :meth:`GeneralizationPolicy.project`
    calls, frozen :class:`Score` arithmetic, and an O(nodes) scan per
    compression fold.
    """

    class Node:
        def __init__(self, depth: int, values: Tuple[int, ...], seq: int):
            self.depth = depth
            self.values = values
            self.seq = seq
            self.own = Score.zero()
            self.folded = Score.zero()
            self.subtree = Score.zero()
            self.children: Dict[Tuple[int, ...], "ReferenceFlowtree.Node"] = {}

    def __init__(
        self,
        policy: GeneralizationPolicy,
        node_budget: Optional[int] = None,
        compress_ratio: float = 0.8,
        metric: str = "bytes",
    ) -> None:
        self.policy = policy
        self.node_budget = node_budget
        self.compress_ratio = compress_ratio
        self.metric = metric
        self._next_seq = 1
        root = self.Node(0, policy.project((0,) * len(policy.schema), 0), 0)
        self.root = root
        self.nodes: Dict[Tuple[int, Tuple[int, ...]], ReferenceFlowtree.Node] = {
            (0, root.values): root
        }

    def _node_at(self, values, depth: int) -> "ReferenceFlowtree.Node":
        parent = self.root
        for d in range(1, depth + 1):
            projected = self.policy.project(values, d)
            node = self.nodes.get((d, projected))
            if node is None:
                node = self.Node(d, projected, self._next_seq)
                self._next_seq += 1
                self.nodes[(d, projected)] = node
                parent.children[projected] = node
            parent = node
        return parent

    def add(self, key: FlowKey, score: Score) -> None:
        depth = self.policy.depth_of(key.levels)
        node = self._node_at(key.values, depth)
        node.own = node.own + score
        self._bubble(key.values, depth, score)
        self._maybe_compress()

    def _bubble(self, values, depth: int, score: Score) -> None:
        self.root.subtree = self.root.subtree + score
        for d in range(1, depth + 1):
            node = self.nodes[(d, self.policy.project(values, d))]
            node.subtree = node.subtree + score

    def add_many(self, items: List[Tuple[FlowKey, Score]]) -> None:
        budget = self.node_budget
        if budget is None:
            for key, score in items:
                depth = self.policy.depth_of(key.levels)
                node = self._node_at(key.values, depth)
                node.own = node.own + score
                self._bubble(key.values, depth, score)
            return
        overshoot = budget + max(64, budget // 8)
        for key, score in items:
            depth = self.policy.depth_of(key.levels)
            node = self._node_at(key.values, depth)
            node.own = node.own + score
            self._bubble(key.values, depth, score)
            if len(self.nodes) > overshoot:
                self.compress(int(budget * self.compress_ratio))
        self._maybe_compress()

    def _maybe_compress(self) -> None:
        if self.node_budget is not None and len(self.nodes) > self.node_budget:
            self.compress(int(self.node_budget * self.compress_ratio))

    def compress(self, target_nodes: int) -> None:
        while len(self.nodes) > target_nodes:
            leaves = [
                node
                for node in self.nodes.values()
                if node.depth > 0 and not node.children
            ]
            if not leaves:
                break
            victim = min(
                leaves, key=lambda n: (n.subtree.metric(self.metric), n.seq)
            )
            parent = self.nodes[
                (
                    victim.depth - 1,
                    self.policy.project(victim.values, victim.depth - 1),
                )
            ]
            parent.folded = parent.folded + victim.own + victim.folded
            del parent.children[victim.values]
            del self.nodes[(victim.depth, victim.values)]

    def merge(self, other: "ReferenceFlowtree") -> None:
        stack = [(self.root, other.root)]
        while stack:
            mine, theirs = stack.pop()
            mine.own = mine.own + theirs.own
            mine.folded = mine.folded + theirs.folded
            mine.subtree = mine.subtree + theirs.subtree
            for values, their_child in theirs.children.items():
                my_child = mine.children.get(values)
                if my_child is None:
                    my_child = self.Node(
                        their_child.depth, values, self._next_seq
                    )
                    self._next_seq += 1
                    self.nodes[(their_child.depth, values)] = my_child
                    mine.children[values] = my_child
                stack.append((my_child, their_child))
        self._maybe_compress()


def assert_identical(fast: Flowtree, reference: ReferenceFlowtree) -> None:
    """Node-for-node, counter-for-counter equality."""
    fast_ids = {node.node_id for node in fast.nodes()}
    ref_ids = set(reference.nodes.keys())
    assert fast_ids == ref_ids
    for node_id in ref_ids:
        ref_node = reference.nodes[node_id]
        fast_node = fast._nodes[node_id]
        assert fast_node.own == ref_node.own, node_id
        assert fast_node.folded == ref_node.folded, node_id
        assert fast_node.subtree == ref_node.subtree, node_id


# -- strategies ---------------------------------------------------------

scores = st.builds(
    Score,
    packets=st.integers(min_value=1, max_value=100),
    bytes=st.integers(min_value=1, max_value=10_000),
    flows=st.just(1),
)
keys = st.builds(
    key_of,
    hi=st.integers(min_value=0, max_value=255),
    lo=st.integers(min_value=0, max_value=255),
)
inserts = st.tuples(keys, scores)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("add"), inserts),
        st.tuples(st.just("add_many"), st.lists(inserts, max_size=30)),
        st.tuples(st.just("merge"), st.lists(inserts, max_size=15)),
        st.tuples(
            st.just("compress"),
            st.integers(min_value=1, max_value=40),
        ),
    ),
    min_size=1,
    max_size=20,
)


class TestFastPathMatchesReference:
    @settings(max_examples=60, deadline=None)
    @given(ops=operations, budget=st.sampled_from([None, 12, 24, 64]))
    def test_interleaved_operations_identical(self, ops, budget):
        if budget is not None and budget < POLICY.depth + 1:
            budget = POLICY.depth + 1
        fast = Flowtree(POLICY, node_budget=budget, metric="bytes")
        reference = ReferenceFlowtree(POLICY, node_budget=budget)
        for op, payload in ops:
            if op == "add":
                key, score = payload
                fast.add(key, score)
                reference.add(key, score)
            elif op == "add_many":
                fast.add_many(list(payload))
                reference.add_many(list(payload))
            elif op == "merge":
                other_fast = Flowtree(POLICY, node_budget=None)
                other_ref = ReferenceFlowtree(POLICY)
                for key, score in payload:
                    other_fast.add(key, score)
                    other_ref.add(key, score)
                fast.merge(other_fast)
                reference.merge(other_ref)
            elif op == "compress":
                target = max(payload, 1)
                fast.compress(target_nodes=target)
                reference.compress(target)
            assert_identical(fast, reference)

    @settings(max_examples=60, deadline=None)
    @given(batches=st.lists(st.lists(inserts, max_size=40), max_size=5))
    def test_batched_ingest_identical(self, batches):
        fast = Flowtree(POLICY, node_budget=16, metric="bytes")
        reference = ReferenceFlowtree(POLICY, node_budget=16)
        for batch in batches:
            fast.add_many(list(batch))
            reference.add_many(list(batch))
        assert_identical(fast, reference)

    @settings(max_examples=40, deadline=None)
    @given(batch=st.lists(inserts, min_size=1, max_size=120))
    def test_root_mass_invariant_under_deferred_compression(self, batch):
        """Batched (overshooting) compression never loses mass, and the
        budget holds again once the batch returns."""
        tree = Flowtree(POLICY, node_budget=POLICY.depth + 1, metric="bytes")
        tree.add_many(list(batch))
        expected = Score.zero()
        for _, score in batch:
            expected = expected + score
        assert tree.total() == expected
        assert tree.node_count <= tree.node_budget

    @settings(max_examples=30, deadline=None)
    @given(batch=st.lists(inserts, min_size=1, max_size=60))
    def test_incremental_heap_matches_full_rebuild(self, batch):
        """Repeated compress() calls on a live heap fold exactly the
        leaves a from-scratch scan would pick."""
        fast = Flowtree(POLICY, node_budget=None, metric="bytes")
        reference = ReferenceFlowtree(POLICY)
        for key, score in batch:
            fast.add(key, score)
            reference.add(key, score)
        while fast.node_count > 1:
            target = max(1, fast.node_count - 3)
            fast.compress(target_nodes=target)
            reference.compress(target)
            assert_identical(fast, reference)
            if fast.node_count <= POLICY.depth + 1:
                break

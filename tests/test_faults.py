"""The failure model: fault plans, retrying exports, honest degradation.

Table I names unreliable connections as a core challenge of
distributed mega-datasets.  These tests pin the repository's answer:
a deterministic :class:`FaultPlan` consulted by the fabric, bounded
retry/backoff in the rollup with parked-export recovery (delayed,
never lost), and federated queries that return partial answers with an
exact :class:`Degradation` record instead of throwing.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.summary import Location
from repro.errors import PlacementError, TransferError
from repro.faults import (
    REASON_DROP,
    REASON_OUTAGE,
    FaultPlan,
    LinkOutage,
    PendingExport,
    PendingExportQueue,
    RetryPolicy,
)
from repro.hierarchy.network import NetworkFabric
from repro.hierarchy.topology import network_monitoring_hierarchy
from repro.runtime.presets import network_4level_runtime
from repro.simulation.traffic import TrafficConfig, TrafficGenerator

ROUTER1 = "network1/region1/router1"


def build_runtime(retain_partitions=True, **kwargs):
    return network_4level_runtime(
        networks=1,
        regions_per_network=2,
        routers_per_region=1,
        retain_partitions=retain_partitions,
        **kwargs,
    )


def drive(runtime, epochs=2, flows_per_epoch=80, seed=11, recovery_closes=8):
    """Ingest + close ``epochs`` epochs, then close until pending drains."""
    sites = runtime.ingest_sites()
    generator = TrafficGenerator(
        TrafficConfig(sites=tuple(sites), flows_per_epoch=flows_per_epoch),
        seed=seed,
    )
    for epoch in range(epochs):
        for site in sites:
            runtime.ingest(site, generator.epoch(site, epoch))
        runtime.close_epoch((epoch + 1) * 60.0)
    closes = epochs
    while runtime.pending_exports() and closes < epochs + recovery_closes:
        closes += 1
        runtime.close_epoch(closes * 60.0)
    return runtime


def root_total(runtime):
    """The root's view of everything, with faults lifted for the read."""
    runtime.inject_faults(None)
    return runtime.query("SELECT TOTAL FROM ALL").scalar


class TestFaultPlanDeterminism:
    def test_same_seed_same_verdicts(self):
        verdicts = []
        for _ in range(2):
            plan = FaultPlan(seed=7, drop_probability=0.5)
            verdicts.append(
                [plan.failure("a", "b", 0.0) for _ in range(32)]
            )
        assert verdicts[0] == verdicts[1]
        assert REASON_DROP in verdicts[0]
        assert None in verdicts[0]

    def test_links_are_independent(self):
        """Interleaving calls on another link never shifts a link's
        verdict sequence — drops key on the per-link attempt counter."""
        solo = FaultPlan(seed=3, drop_probability=0.5)
        alone = [solo.failure("a", "b", 0.0) for _ in range(16)]
        mixed_plan = FaultPlan(seed=3, drop_probability=0.5)
        mixed = []
        for _ in range(16):
            mixed_plan.failure("x", "y", 0.0)  # unrelated traffic
            mixed.append(mixed_plan.failure("a", "b", 0.0))
        assert alone == mixed

    def test_different_seeds_differ(self):
        a = [
            FaultPlan(seed=s, drop_probability=0.5).failure("a", "b", 0.0)
            for s in range(64)
        ]
        assert len(set(a)) == 2  # both outcomes occur across seeds

    def test_reset_replays_the_schedule(self):
        plan = FaultPlan(seed=9, drop_probability=0.4)
        first = [plan.failure("a", "b", 0.0) for _ in range(8)]
        plan.reset()
        assert [plan.failure("a", "b", 0.0) for _ in range(8)] == first

    def test_validation(self):
        with pytest.raises(PlacementError):
            FaultPlan(drop_probability=1.0)
        with pytest.raises(PlacementError):
            FaultPlan(bandwidth_factor=0.0)
        with pytest.raises(PlacementError):
            LinkOutage("a", 3, 3)


class TestOutageWindows:
    def test_half_open_epoch_window(self):
        plan = FaultPlan(
            outages=[LinkOutage("a", 1, 3)], epoch_seconds=60.0
        )
        assert plan.failure("a", "b", 59.0) is None        # epoch 0
        assert plan.failure("a", "b", 60.0) == REASON_OUTAGE  # epoch 1
        assert plan.failure("a", "b", 179.0) == REASON_OUTAGE  # epoch 2
        assert plan.failure("a", "b", 180.0) is None       # epoch 3

    def test_suffix_matching_names_site_labels(self):
        plan = FaultPlan(
            outages=[LinkOutage("region1/router1", 0, 1)],
            epoch_seconds=60.0,
        )
        assert plan.link_down(
            "cloud/region1", "cloud/region1/router1", 0.0
        )
        assert not plan.link_down(
            "cloud/region1", "cloud/region1/router2", 0.0
        )
        # no accidental substring matches without a path boundary
        assert not plan.link_down(
            "cloud/xregion1", "cloud/xregion1/xrouter1", 0.0
        )

    def test_outage_beats_drop_as_reason(self):
        plan = FaultPlan(
            seed=1,
            drop_probability=0.99,
            outages=[LinkOutage("a", 0, 1)],
            epoch_seconds=60.0,
        )
        assert plan.failure("a", "b", 0.0) == REASON_OUTAGE


class TestBandwidthDegradation:
    def test_scoped_factor_overrides_global(self):
        plan = FaultPlan(
            bandwidth_factor=0.5, bandwidth_factors={"region1": 0.25}
        )
        assert plan.degradation("cloud/region1", "cloud/region1/r1") == 0.25
        assert plan.degradation("cloud/region2", "cloud/region2/r1") == 0.5

    def test_degraded_transfer_is_slower_not_lost(self):
        hierarchy = network_monitoring_hierarchy(
            regions=1, routers_per_region=1
        )
        src = Location("cloud/network/region1/router1")
        dst = Location("cloud/network/region1")
        clean = NetworkFabric(hierarchy)
        fast = clean.transfer(src, dst, 10**6, 0.0)
        slow_fabric = NetworkFabric(
            network_monitoring_hierarchy(regions=1, routers_per_region=1),
            faults=FaultPlan(bandwidth_factor=0.25),
        )
        slow = slow_fabric.transfer(src, dst, 10**6, 0.0)
        assert slow.duration > fast.duration
        assert slow_fabric.total_bytes() == clean.total_bytes()


class TestFromSpec:
    def test_full_spec(self):
        plan = FaultPlan.from_spec(
            "drop=0.2,seed=7,bw=0.5,bw=region1:0.25,"
            "outage=region1/router1:1-3,epoch=30"
        )
        assert plan.drop_probability == 0.2
        assert plan.seed == 7
        assert plan.bandwidth_factor == 0.5
        assert plan.bandwidth_factors == {"region1": 0.25}
        assert plan.outages == [LinkOutage("region1/router1", 1, 3)]
        assert plan.epoch_seconds == 30.0

    def test_describe_round_trips_the_schedule(self):
        plan = FaultPlan.from_spec("drop=0.1,outage=r1:0-2")
        assert "drop=0.1" in plan.describe()
        assert "outage[r1]=0-2" in plan.describe()

    @pytest.mark.parametrize(
        "spec",
        [
            "drop",                 # not key=value
            "drop=lots",            # not a float
            "outage=region1",       # no window
            "outage=r1:3-1",        # empty window
            "teleport=1",           # unknown key
            "drop=1.5",             # out of range
        ],
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(PlacementError):
            FaultPlan.from_spec(spec)


class TestFabricFaultAccounting:
    @pytest.fixture()
    def fabric(self):
        return NetworkFabric(
            network_monitoring_hierarchy(regions=2, routers_per_region=1),
            faults=FaultPlan(
                outages=[LinkOutage("region1", 0, 1)], epoch_seconds=60.0
            ),
        )

    def test_failed_transfer_raises_typed_error(self, fabric):
        src = Location("cloud/network/region1/router1")
        with pytest.raises(TransferError) as excinfo:
            fabric.transfer(src, Location("cloud"), 1000, 0.0)
        error = excinfo.value
        assert error.reason == REASON_OUTAGE
        assert error.origin == src.path
        assert error.size_bytes == 1000

    def test_carried_bytes_count_only_delivered_volume(self, fabric):
        src = Location("cloud/network/region1/router1")
        with pytest.raises(TransferError):
            fabric.transfer(src, Location("cloud"), 1000, 0.0)
        assert fabric.total_bytes() == 0
        assert fabric.wasted_bytes() == 1000
        assert fabric.failed_hops() == 1
        # after the outage window the same route delivers
        fabric.transfer(src, Location("cloud"), 1000, 60.0)
        assert fabric.total_bytes() == 3000  # one charge per hop
        assert fabric.wasted_bytes() == 1000

    def test_faultless_fabric_accounting_untouched(self):
        fabric = NetworkFabric(
            network_monitoring_hierarchy(regions=1, routers_per_region=1)
        )
        src = Location("cloud/network/region1/router1")
        fabric.transfer(src, Location("cloud"), 500, 0.0)
        assert fabric.wasted_bytes() == 0
        assert fabric.failed_hops() == 0
        assert fabric.attempted_hops() == 3


class TestRetryPolicy:
    def test_backoff_schedule_on_simulated_clock(self):
        policy = RetryPolicy(
            max_attempts=3, base_backoff_s=1.0, multiplier=2.0
        )
        assert list(policy.attempt_times(120.0)) == [
            (0, 120.0), (1, 121.0), (2, 123.0)
        ]

    def test_validation(self):
        with pytest.raises(PlacementError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(PlacementError):
            RetryPolicy(base_backoff_s=-1.0)


class TestPendingExportQueue:
    def _entry(self, export_id):
        return PendingExport(
            export_id=export_id, kind="flowdb", summary=None, items=0,
            size_bytes=10, origin="o", label=export_id, created_at=0.0,
        )

    def test_fifo_with_front_requeue(self):
        queue = PendingExportQueue()
        assert queue.park(self._entry("a"))
        assert queue.park(self._entry("b"))
        first = queue.pop()
        assert first.export_id == "a"
        queue.requeue(first)  # delivery failed: back to the front
        assert queue.pop().export_id == "a"

    def test_park_dedups_queued_and_delivered(self):
        queue = PendingExportQueue()
        assert queue.park(self._entry("a"))
        assert not queue.park(self._entry("a"))  # already queued
        entry = queue.pop()
        queue.mark_delivered(entry.export_id)
        assert not queue.park(self._entry("a"))  # at-least-once, not twice
        assert len(queue) == 0


class TestRuntimeRecovery:
    def test_outage_parks_then_drains_with_mass_conserved(self):
        baseline = drive(build_runtime())
        clean_total = root_total(baseline)

        runtime = build_runtime()
        runtime.inject_faults(
            FaultPlan(outages=[LinkOutage(ROUTER1, 1, 2)])
        )
        sites = runtime.ingest_sites()
        generator = TrafficGenerator(
            TrafficConfig(sites=tuple(sites), flows_per_epoch=80), seed=11
        )
        for epoch in range(2):
            for site in sites:
                runtime.ingest(site, generator.epoch(site, epoch))
            runtime.close_epoch((epoch + 1) * 60.0)
        # the close at t=60 falls in the outage window: router1's
        # forward export is parked, never dropped
        assert runtime.stats.exports_parked == 1
        queue = runtime.pending_queue(ROUTER1)
        assert len(queue) == 0  # drained at the t=120 close
        assert runtime.stats.exports_recovered == 1
        assert runtime.pending_exports() == 0
        assert root_total(runtime) == clean_total

    def test_drops_retry_and_conserve_mass(self):
        clean_total = root_total(drive(build_runtime()))
        runtime = build_runtime(
            faults=FaultPlan(seed=5, drop_probability=0.3)
        )
        drive(runtime)
        assert runtime.pending_exports() == 0
        assert root_total(runtime) == clean_total
        stats = runtime.stats
        assert stats.transfer_failures > 0
        assert stats.transfer_attempts > stats.transfer_failures
        assert runtime.fabric.wasted_bytes() > 0

    def test_zero_fault_plan_changes_nothing(self):
        clean = drive(build_runtime())
        nulled = drive(build_runtime(faults=FaultPlan(seed=1)))
        assert nulled.wan_bytes() == clean.wan_bytes()
        assert nulled.fabric.wasted_bytes() == 0
        assert nulled.stats.retried_bytes == 0
        assert root_total(nulled) == root_total(clean)

    def test_retry_stats_account_every_attempt(self):
        runtime = build_runtime(
            faults=FaultPlan(outages=[LinkOutage(ROUTER1, 1, 2)])
        )
        drive(runtime, epochs=1, recovery_closes=1)
        stats = runtime.stats
        # the parked export burned a full retry budget first
        assert stats.transfer_failures >= runtime.retry_policy.max_attempts
        assert stats.retried_bytes > 0


_CLEAN_TOTAL = {}


def _clean_total():
    if "total" not in _CLEAN_TOTAL:
        _CLEAN_TOTAL["total"] = root_total(
            drive(build_runtime(), epochs=2, flows_per_epoch=60)
        )
    return _CLEAN_TOTAL["total"]


class TestRecoveryProperties:
    @settings(max_examples=12, deadline=None)
    @given(
        drop=st.floats(min_value=0.0, max_value=0.3),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_root_mass_conserved_after_recovery(self, drop, seed):
        """The delivery guarantee, property-tested: whatever the drop
        schedule, once the pending queues drain the root holds exactly
        the mass a fault-free run delivers."""
        runtime = build_runtime(
            faults=FaultPlan(seed=seed, drop_probability=drop)
        )
        drive(runtime, epochs=2, flows_per_epoch=60, recovery_closes=10)
        assert runtime.pending_exports() == 0
        assert root_total(runtime) == _clean_total()

    @settings(max_examples=8, deadline=None)
    @given(start=st.integers(min_value=1, max_value=2))
    def test_outage_windows_conserve_mass(self, start):
        runtime = build_runtime(
            faults=FaultPlan(outages=[LinkOutage(ROUTER1, start, start + 1)])
        )
        drive(runtime, epochs=2, flows_per_epoch=60, recovery_closes=10)
        assert runtime.pending_exports() == 0
        assert root_total(runtime) == _clean_total()


class TestExportIdUniqueness:
    """Collision audit for parked-export ids: ``_forward`` keys its ids
    on ``(store path, export name, epochs_closed)`` while FlowDB parks
    reuse the globally unique partition id.  A collision would make
    :meth:`PendingExportQueue.park` silently drop a fresh export as a
    "duplicate" — data loss the mass-conservation tests above could
    only catch by accident.  This property test pins the scheme: every
    park over a random fault plan must be accepted, and all recorded
    ids must be globally unique across both kinds."""

    @settings(max_examples=10, deadline=None)
    @given(
        drop=st.floats(min_value=0.2, max_value=0.6),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_park_ids_never_collide_under_random_faults(self, drop, seed):
        parked = []
        original_park = PendingExportQueue.park

        def recording_park(queue, export):
            accepted = original_park(queue, export)
            parked.append((export.export_id, export.kind, accepted))
            return accepted

        PendingExportQueue.park = recording_park
        try:
            runtime = build_runtime(
                faults=FaultPlan(
                    seed=seed,
                    drop_probability=drop,
                    outages=[LinkOutage(ROUTER1, 1, 2)],
                )
            )
            drive(runtime, epochs=3, flows_per_epoch=40,
                  recovery_closes=12)
        finally:
            PendingExportQueue.park = original_park

        assert parked, "the outage window must park at least one export"
        rejected = [entry for entry in parked if not entry[2]]
        assert not rejected, f"park() refused fresh exports: {rejected}"
        ids = [export_id for export_id, _, _ in parked]
        assert len(ids) == len(set(ids)), (
            "export ids collided across interleaved closes: "
            f"{sorted(set(i for i in ids if ids.count(i) > 1))}"
        )


ROUTER2 = "network1/region2/router1"
BOTH_ROUTERS = f"SELECT TOTAL FROM ALL AT {ROUTER1}, {ROUTER2}"


class TestDegradedQueries:
    @pytest.fixture()
    def loaded(self):
        return drive(build_runtime(), epochs=2)

    def test_unreachable_site_reported_exactly(self, loaded):
        loaded.inject_faults(
            FaultPlan(outages=[LinkOutage(ROUTER1, 0, 10**6)])
        )
        outcome = loaded.query(BOTH_ROUTERS)
        assert outcome.is_degraded
        assert outcome.missing_sites == [ROUTER1]
        assert outcome.degradation.reasons  # says why
        assert "missing" in outcome.degradation.describe()
        # the surviving site still answers: partial, not empty
        full = root_total(loaded)
        assert 0 < outcome.scalar.bytes < full.bytes

    def test_degraded_answers_never_cached(self, loaded):
        loaded.inject_faults(
            FaultPlan(outages=[LinkOutage(ROUTER1, 0, 10**6)])
        )
        first = loaded.query(BOTH_ROUTERS)
        second = loaded.query(BOTH_ROUTERS)
        assert first.is_degraded and second.is_degraded
        assert not second.cache.hit
        assert loaded.stats.queries_degraded == 2

    def test_full_answer_restored_when_faults_lift(self, loaded):
        loaded.inject_faults(
            FaultPlan(outages=[LinkOutage(ROUTER1, 0, 10**6)])
        )
        partial = loaded.query(BOTH_ROUTERS)
        loaded.inject_faults(None)
        healed = loaded.query(BOTH_ROUTERS)
        assert not healed.is_degraded
        assert healed.degradation is None
        assert healed.scalar.bytes > partial.scalar.bytes

    def test_every_covering_store_down_yields_honest_empty(self, loaded):
        loaded.inject_faults(
            FaultPlan(
                outages=[
                    LinkOutage("network1/region1", 0, 10**6),
                    LinkOutage("network1/region2", 0, 10**6),
                ]
            )
        )
        outcome = loaded.query(BOTH_ROUTERS)
        assert outcome.is_degraded
        assert outcome.missing_sites == [ROUTER1, ROUTER2]
        assert outcome.scalar.flows == 0  # honest empty, no exception

    def test_complete_outcomes_carry_no_degradation(self, loaded):
        outcome = loaded.query("SELECT TOTAL FROM ALL")
        assert outcome.degradation is None
        assert outcome.missing_sites == []
        assert not outcome.is_degraded

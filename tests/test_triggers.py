"""Tests for the trigger engine."""

import pytest

from repro.core.summary import DataSummary, Location, SummaryMeta, TimeInterval
from repro.datastore.triggers import (
    RawTrigger,
    SummaryTrigger,
    TriggerEngine,
)
from repro.errors import TriggerError

LOC = Location("hq/factory1/line1")


def make_summary(kind="timebin", value=1.0):
    return DataSummary(
        kind=kind,
        meta=SummaryMeta(TimeInterval(0, 60), LOC),
        payload=value,
        size_bytes=8,
    )


class TestRawTriggers:
    def test_fires_on_match(self):
        engine = TriggerEngine()
        engine.install_raw(
            RawTrigger("hot", predicate=lambda v: v > 100)
        )
        assert engine.evaluate_raw("s1", 150, time=1.0) == 1
        assert engine.evaluate_raw("s1", 50, time=2.0) == 0
        assert len(engine.firings) == 1
        assert engine.firings[0].trigger_id == "hot"
        assert engine.firings[0].payload == 150

    def test_stream_filter(self):
        engine = TriggerEngine()
        engine.install_raw(
            RawTrigger("t", predicate=lambda v: True, stream_id="vibration")
        )
        assert engine.evaluate_raw("temperature", 1, time=0.0) == 0
        assert engine.evaluate_raw("vibration", 1, time=0.0) == 1

    def test_cooldown_suppresses_rapid_firing(self):
        engine = TriggerEngine()
        engine.install_raw(
            RawTrigger(
                "t", predicate=lambda v: True, cooldown_seconds=10.0
            )
        )
        assert engine.evaluate_raw("s", 1, time=0.0) == 1
        assert engine.evaluate_raw("s", 1, time=5.0) == 0
        assert engine.evaluate_raw("s", 1, time=10.0) == 1

    def test_sink_notified(self):
        engine = TriggerEngine()
        engine.install_raw(RawTrigger("t", predicate=lambda v: True))
        received = []
        engine.subscribe(received.append)
        engine.evaluate_raw("s", 42, time=1.0)
        assert len(received) == 1
        assert received[0].payload == 42


class TestSummaryTriggers:
    def test_fires_on_summary(self):
        engine = TriggerEngine()
        engine.install_summary(
            SummaryTrigger("big", predicate=lambda s: s.payload > 10)
        )
        assert engine.evaluate_summary("agg", make_summary(value=20), 60.0) == 1
        assert engine.evaluate_summary("agg", make_summary(value=5), 120.0) == 0

    def test_aggregator_filter(self):
        engine = TriggerEngine()
        engine.install_summary(
            SummaryTrigger("t", predicate=lambda s: True, aggregator="a")
        )
        assert engine.evaluate_summary("b", make_summary(), 0.0) == 0
        assert engine.evaluate_summary("a", make_summary(), 0.0) == 1


class TestManagement:
    def test_duplicate_ids_rejected_across_flavors(self):
        engine = TriggerEngine()
        engine.install_raw(RawTrigger("x", predicate=bool))
        with pytest.raises(TriggerError):
            engine.install_raw(RawTrigger("x", predicate=bool))
        with pytest.raises(TriggerError):
            engine.install_summary(SummaryTrigger("x", predicate=bool))

    def test_remove(self):
        engine = TriggerEngine()
        engine.install_raw(RawTrigger("x", predicate=lambda v: True))
        engine.install_summary(SummaryTrigger("y", predicate=lambda s: True))
        assert engine.installed() == ["x", "y"]
        engine.remove("x")
        engine.remove("y")
        assert engine.installed() == []
        with pytest.raises(TriggerError):
            engine.remove("x")

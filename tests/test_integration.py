"""Integration tests: the full feedback loops of Figures 2 and 3.

These tests wire sensors → data store → triggers → controller →
actuators (the fast control cycle) and data store → analytics → app →
rule update (the slow adaptive cycle), and check the paper's latency
story: the local control path meets the machine-level deadline while
the analytics path is orders of magnitude slower but far-reaching.
"""

import pytest

from repro.analytics.pipeline import Pipeline
from repro.control.controller import Controller
from repro.control.manager import Manager
from repro.control.rules import ControlRule
from repro.core.primitive import QueryRequest
from repro.core.summary import Location
from repro.core.timebin import TimeBinStatistics
from repro.datastore.aggregator import Aggregator, prefix_filter
from repro.datastore.storage import HierarchicalStorage
from repro.datastore.store import DataStore
from repro.datastore.triggers import RawTrigger
from repro.hierarchy.topology import MACHINE_DEADLINE, smart_factory_hierarchy
from repro.simulation.events import Simulator
from repro.simulation.factory import build_factory
from repro.simulation.sensors import Actuator


@pytest.fixture()
def control_loop():
    """A machine with a vibration trigger wired to a stop rule."""
    workload = build_factory(lines=1, machines_per_line=1, seed=5)
    machine = workload.machines[0]
    machine.wear_rate_per_hour = 0.9  # vibration rises fast
    store = DataStore(workload.root, HierarchicalStorage(10**7))
    store.install_aggregator(
        Aggregator(
            "vibration",
            TimeBinStatistics(machine.location, bin_seconds=10.0),
            stream_filter=prefix_filter(machine.vibration_sensor.sensor_id),
            item_of=lambda reading: reading.value,
        )
    )
    controller = Controller(machine.location)
    actuator = Actuator("arm", machine.location)
    controller.register_actuator(actuator)
    controller.install_rule(
        ControlRule(
            "emergency-stop",
            command="stop",
            target_actuator="arm",
            trigger_id="vibration-high",
            priority=10,
            exclusive_group="motion",
        )
    )
    store.install_raw_trigger(
        RawTrigger(
            "vibration-high",
            predicate=lambda reading: reading.value > 6.5,
            cooldown_seconds=60.0,
        )
    )
    store.subscribe_triggers(controller.on_trigger)
    return workload, machine, store, controller, actuator


class TestControlCycle:
    def test_trigger_to_actuation_within_machine_deadline(self, control_loop):
        workload, machine, store, controller, actuator = control_loop
        sim = Simulator()
        sensor = machine.vibration_sensor

        def emit(simulator):
            reading = sensor.reading_at(simulator.now)
            store.ingest(
                sensor.sensor_id, reading, simulator.now,
                size_bytes=reading.size_bytes,
            )

        sim.every(1.0, emit, until=4 * 3600.0)
        sim.run()
        assert actuator.commands, "vibration never tripped the stop rule"
        for command in actuator.commands:
            assert command.latency < MACHINE_DEADLINE
        assert controller.actions[0].command == "stop"

    def test_cooldown_limits_refiring(self, control_loop):
        workload, machine, store, controller, actuator = control_loop

        class HotReading:
            value = 99.0

        # push readings straight past the threshold every second
        for t in range(10):
            store.triggers.evaluate_raw(
                machine.vibration_sensor.sensor_id, HotReading(), float(t)
            )
        assert len(store.triggers.firings) == 1  # 60 s cooldown


class TestAdaptiveCycle:
    def test_analytics_pipeline_feeds_application(self):
        hierarchy = smart_factory_hierarchy(factories=1)
        factory_loc = Location("hq/factory1")
        store = DataStore(factory_loc, HierarchicalStorage(10**7))
        manager = Manager(hierarchy=hierarchy)
        manager.register_store(store)
        aggregator = Aggregator(
            "temps", TimeBinStatistics(factory_loc, bin_seconds=10.0)
        )
        store.install_aggregator(aggregator)
        for t in range(100):
            store.ingest("temps", 40.0 + t * 0.1, float(t))
        store.close_epoch(100.0)

        received = []
        pipeline = (
            Pipeline("temp-trend", lineage=store.lineage, location=factory_loc)
            .add_stage(
                "fetch",
                lambda now: store.query(
                    "temps",
                    QueryRequest("series", {"field": "mean"}),
                    start=0.0,
                    end=now,
                    now=now,
                ).value,
                role="preprocess",
            )
            .add_stage(
                "fit",
                lambda series: __import__(
                    "repro.analytics.inference", fromlist=["LinearTrend"]
                ).LinearTrend.fit(series),
                role="infer",
            )
            .feed_to(received.append)
        )
        run = pipeline.run(100.0, at_time=100.0)
        assert received
        trend = received[0]
        assert trend.slope > 0  # temperature is rising
        roles = [timing.role for timing in run.timings]
        assert roles == ["preprocess", "infer"]

    def test_epoch_close_is_slower_than_trigger_path(self, control_loop):
        """The adaptive cycle operates on epoch granularity (>= seconds),
        the control cycle on sub-millisecond dispatch."""
        workload, machine, store, controller, actuator = control_loop
        from repro.control.controller import ACTUATION_DELAY_S

        epoch_granularity = 10.0  # the aggregator's bin width
        assert ACTUATION_DELAY_S < epoch_granularity / 1000


class TestHierarchicalAggregationChain:
    def test_machine_to_factory_rollup(self, policy, random_flows):
        """Summaries combine up the hierarchy; totals are preserved."""
        from repro.core.flowtree import FlowtreePrimitive

        hierarchy = smart_factory_hierarchy(
            factories=1, lines_per_factory=2, machines_per_line=1
        )
        from repro.hierarchy.network import NetworkFabric

        fabric = NetworkFabric(hierarchy)
        line_locs = [
            Location("hq/factory1/line1"), Location("hq/factory1/line2")
        ]
        factory_loc = Location("hq/factory1")
        line_stores = [
            DataStore(loc, HierarchicalStorage(10**7), fabric=fabric)
            for loc in line_locs
        ]
        factory_store = DataStore(
            factory_loc, HierarchicalStorage(10**7), fabric=fabric
        )
        for store in line_stores:
            store.install_aggregator(
                Aggregator("ft", FlowtreePrimitive(store.location, policy))
            )
        factory_store.install_aggregator(
            Aggregator("ft", FlowtreePrimitive(factory_loc, policy))
        )
        expected_flows = 0
        for index, store in enumerate(line_stores):
            records = random_flows(40, seed=index)
            expected_flows += len(records)
            for record in records:
                store.ingest("flows", record, record.first_seen)
            store.export_summaries("ft", factory_store, now=60.0)
        total = factory_store.aggregator("ft").primitive.query(
            QueryRequest("total", {})
        )
        assert total.flows == expected_flows
        assert fabric.total_bytes() > 0

"""Tests for the generic arbitrary-depth :class:`HierarchyRuntime`.

Covers the unification contract: the 4-level presets run end-to-end
(ingest → per-level rollup → FlowQL → fabric accounting), a 4-level
runtime with an unbounded extra tier is *answer-identical* to the
legacy 3-level tiered system, and root mass is conserved across any
rollup depth.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlacementError
from repro.flowstream.tiered import TieredFlowstream
from repro.hierarchy.topology import Hierarchy
from repro.runtime import (
    EXPORT_NONE,
    HierarchyRuntime,
    LevelConfig,
    factory_4level_runtime,
    flat_runtime,
    network_4level_runtime,
)
from repro.simulation.traffic import TrafficConfig, TrafficGenerator

TIERED_SITES = [
    "region1/router1",
    "region1/router2",
    "region2/router1",
    "region2/router2",
]


@pytest.fixture(scope="module")
def generator():
    return TrafficGenerator(
        TrafficConfig(sites=tuple(TIERED_SITES), flows_per_epoch=500),
        seed=23,
    )


class TestConstruction:
    def test_unknown_level_rejected(self):
        hierarchy = Hierarchy.from_site_paths(["a/b"])
        with pytest.raises(PlacementError):
            HierarchyRuntime(hierarchy, {"warehouse": LevelConfig()})

    def test_needs_some_level(self):
        hierarchy = Hierarchy.from_site_paths(["a/b"])
        with pytest.raises(PlacementError):
            HierarchyRuntime(hierarchy, {})

    def test_flat_preset_rejects_ragged_depths(self):
        with pytest.raises(PlacementError):
            flat_runtime(["region1/router1", "lonesite"])

    def test_network_4level_store_census(self):
        runtime = network_4level_runtime(
            networks=2, regions_per_network=2, routers_per_region=2
        )
        assert len(runtime.stores_at_level("router")) == 8
        assert len(runtime.stores_at_level("region")) == 4
        assert len(runtime.stores_at_level("network")) == 2
        # raw data enters only at the routers
        assert sorted(runtime.ingest_sites()) == sorted(
            runtime.stores_at_level("router")
        )

    def test_ingest_rejects_interior_sites(self):
        runtime = network_4level_runtime()
        with pytest.raises(PlacementError):
            runtime.ingest("network1/region1", [])
        with pytest.raises(PlacementError):
            runtime.ingest("nowhere", [])


class TestNetwork4LevelEndToEnd:
    @pytest.fixture()
    def loaded(self, generator):
        runtime = network_4level_runtime(
            networks=1,
            regions_per_network=2,
            routers_per_region=2,
            router_node_budget=4096,
            region_node_budget=4096,
        )
        for epoch in range(2):
            for site in TIERED_SITES:
                runtime.ingest(
                    f"network1/{site}", generator.epoch(site, epoch)
                )
            runtime.close_epoch((epoch + 1) * 60.0)
        return runtime

    def test_only_network_tier_reaches_flowdb(self, loaded):
        assert loaded.db.locations() == ["network1"]
        assert len(loaded.db) == 2  # one merged summary per epoch

    def test_mass_reaches_the_root(self, loaded, generator):
        expected = sum(
            len(generator.epoch(site, epoch))
            for epoch in range(2)
            for site in TIERED_SITES
        )
        assert loaded.query("SELECT TOTAL FROM ALL").scalar.flows == expected

    def test_per_level_volume_accounting(self, loaded):
        routers = loaded.stats.per_level["router"]
        regions = loaded.stats.per_level["region"]
        network = loaded.stats.per_level["network"]
        assert routers.raw_items > 0 and routers.raw_bytes > 0
        # every interior hop was measured on both ends
        assert routers.summary_bytes_out > 0
        assert regions.summary_bytes_in == routers.summary_bytes_out
        assert regions.summary_bytes_out > 0
        assert network.summary_bytes_in == regions.summary_bytes_out
        # only the network tier exported across the WAN
        assert network.exports == 2
        assert network.summary_bytes_out == loaded.stats.exported_bytes
        assert loaded.stats.reduction_factor > 10

    def test_fabric_hop_accounting(self, loaded):
        # WAN traffic is exactly the root-bound exports ...
        assert loaded.wan_bytes() == loaded.stats.exported_bytes
        # ... while the interior router→region→network hops also ran
        # over the fabric, so total link traffic strictly exceeds it
        assert loaded.total_network_bytes() > loaded.wan_bytes()

    def test_rollup_latency_recorded(self, loaded):
        for level in ("router", "region", "network"):
            assert loaded.stats.per_level[level].rollup_seconds > 0.0


class TestFactory4LevelEndToEnd:
    @pytest.fixture()
    def loaded(self):
        runtime = factory_4level_runtime(
            factories=2,
            lines_per_factory=2,
            machines_per_line=2,
            machine_node_budget=2048,
        )
        sites = runtime.ingest_sites()
        generator = TrafficGenerator(
            TrafficConfig(sites=tuple(sites), flows_per_epoch=200), seed=5
        )
        self.expected = 0
        for epoch in range(2):
            for site in sites:
                records = generator.epoch(site, epoch)
                self.expected += len(records)
                runtime.ingest(site, records)
            runtime.close_epoch((epoch + 1) * 60.0)
        return runtime

    def test_machines_roll_up_to_hq(self, loaded):
        assert sorted(loaded.db.locations()) == ["factory1", "factory2"]
        total = loaded.query("SELECT TOTAL FROM ALL")
        assert total.scalar.flows == self.expected

    def test_per_factory_queries(self, loaded):
        one = loaded.query("SELECT TOTAL FROM ALL AT factory1")
        full = loaded.query("SELECT TOTAL FROM ALL")
        assert 0 < one.scalar.flows < full.scalar.flows

    def test_hop_accounting(self, loaded):
        machines = loaded.stats.per_level["machine"]
        lines = loaded.stats.per_level["line"]
        factories = loaded.stats.per_level["factory"]
        assert lines.summary_bytes_in == machines.summary_bytes_out > 0
        assert factories.summary_bytes_in == lines.summary_bytes_out > 0
        assert loaded.wan_bytes() == loaded.stats.exported_bytes > 0
        assert loaded.total_network_bytes() > loaded.wan_bytes()


class TestDifferentialVsLegacyTiered:
    """ISSUE satellite: with the extra tier unbounded, a 4-level
    runtime must be answer-identical to the legacy 3-level system."""

    QUERIES = [
        "SELECT TOPK(10) FROM ALL BY bytes",
        "SELECT GROUPBY(dst_port, 16) FROM ALL BY bytes",
        "SELECT HHH(0.05) FROM ALL BY bytes",
    ]

    @pytest.fixture()
    def pair(self, generator):
        legacy = TieredFlowstream(
            sites=TIERED_SITES,
            router_node_budget=4096,
            region_node_budget=4096,
        )
        deep = network_4level_runtime(
            networks=1,
            regions_per_network=2,
            routers_per_region=2,
            router_node_budget=4096,
            region_node_budget=4096,
            network_node_budget=None,  # the extra tier is unbounded
        )
        for epoch in range(2):
            for site in TIERED_SITES:
                records = generator.epoch(site, epoch)
                legacy.ingest(site, records)
                deep.ingest(f"network1/{site}", records)
            now = (epoch + 1) * 60.0
            legacy.close_epoch(now)
            deep.close_epoch(now)
        return legacy, deep

    def test_total_identical(self, pair):
        legacy, deep = pair
        assert (
            legacy.query("SELECT TOTAL FROM ALL").scalar
            == deep.query("SELECT TOTAL FROM ALL").scalar
        )

    @pytest.mark.parametrize("flowql", QUERIES)
    def test_row_answers_identical(self, pair, flowql):
        legacy, deep = pair
        assert sorted(legacy.query(flowql).rows) == sorted(
            deep.query(flowql).rows
        )

    def test_extra_tier_does_not_inflate_wan(self, pair):
        legacy, deep = pair
        # the unbounded network tier merges the regions' trees before
        # the WAN hop, so it can only deduplicate, never add bytes
        assert 0 < deep.wan_bytes() <= legacy.wan_bytes()


class TestRootMassConservation:
    """Property: whatever the rollup depth, no mass is lost or
    invented between the edge and the root FlowDB."""

    @given(
        store_depth=st.integers(min_value=1, max_value=3),
        fanout=st.integers(min_value=1, max_value=3),
        flows=st.integers(min_value=20, max_value=120),
        seed=st.integers(min_value=0, max_value=999),
    )
    @settings(max_examples=12, deadline=None)
    def test_total_mass_conserved(self, store_depth, fanout, flows, seed):
        sites = self._sites(store_depth, fanout)
        levels = {}
        for depth in range(1, store_depth + 1):
            levels[f"level{depth}"] = LevelConfig(
                node_budget=1024,
                retain_partitions=(depth == 1),
            )
        runtime = HierarchyRuntime(
            Hierarchy.from_site_paths(sites), levels
        )
        generator = TrafficGenerator(
            TrafficConfig(sites=tuple(sites), flows_per_epoch=flows),
            seed=seed,
        )
        expected_flows, expected_bytes = 0, 0
        for site in sites:
            records = generator.epoch(site, 0)
            expected_flows += len(records)
            expected_bytes += sum(record.bytes for record in records)
            runtime.ingest(site, records)
        runtime.close_epoch(60.0)
        total = runtime.query("SELECT TOTAL FROM ALL").scalar
        assert total.flows == expected_flows
        assert total.bytes == expected_bytes

    @staticmethod
    def _sites(store_depth, fanout):
        sites = [""]
        for depth in range(store_depth):
            sites = [
                f"{prefix}{'/' if prefix else ''}n{depth}x{i}"
                for prefix in sites
                for i in range(fanout)
            ]
        return sites


class _TimedOnly:
    """A record with a timestamp but no ``bytes`` attribute."""

    __slots__ = ("first_seen",)

    def __init__(self, first_seen):
        self.first_seen = first_seen


class TestRawBytesAccounting:
    def _bare_runtime(self):
        # a bare store (no aggregator) accepts attribute-less records
        return HierarchyRuntime(
            Hierarchy.from_site_paths(
                ["region1/router1"], level_names=["region", "router"]
            ),
            {"router": LevelConfig(aggregator=None)},
        )

    def test_size_fallback_counts_once_per_batch(self):
        """Regression: the per-record ``size`` fallback used to add the
        batch size N times for N records without a ``bytes`` attribute,
        inflating ``raw_bytes`` by the record count."""
        runtime = self._bare_runtime()
        records = [_TimedOnly(float(i)) for i in range(10)]
        count = runtime.ingest(
            "region1/router1", records, size_bytes=480
        )
        assert count == 10
        assert runtime.stats.raw_bytes == 480  # not 10 x 480

    def test_sized_records_sum_their_own_bytes(self, generator):
        runtime = flat_runtime(["region1/router1"])
        records = list(generator.epoch("region1/router1", 0))
        runtime.ingest("region1/router1", records)
        assert runtime.stats.raw_bytes == sum(r.bytes for r in records)

    def test_mixed_batch_adds_fallback_once(self):
        runtime = self._bare_runtime()

        class _Sized(_TimedOnly):
            __slots__ = ("bytes",)

            def __init__(self, first_seen, size):
                super().__init__(first_seen)
                self.bytes = size

        batch = [_Sized(0.0, 100), _TimedOnly(1.0), _TimedOnly(2.0)]
        runtime.ingest("region1/router1", batch, size_bytes=48)
        assert runtime.stats.raw_bytes == 100 + 48


class TestExportNone:
    def test_export_none_keeps_partitions_local(self):
        # a scenario-style runtime: stores aggregate locally, but the
        # top level never exports, so nothing may reach FlowDB
        runtime = HierarchyRuntime(
            Hierarchy.from_site_paths(
                ["region1/router1", "region2/router1"],
                level_names=["region", "router"],
            ),
            {
                "router": LevelConfig(
                    node_budget=2048, retain_partitions=False
                ),
                "region": LevelConfig(node_budget=2048, export=EXPORT_NONE),
            },
        )
        sites = runtime.ingest_sites()
        generator = TrafficGenerator(
            TrafficConfig(sites=tuple(sites), flows_per_epoch=100), seed=3
        )
        for site in sites:
            runtime.ingest(site, generator.epoch(site, 0))
        assert runtime.close_epoch(60.0) == 0
        assert len(runtime.db) == 0
        assert runtime.wan_bytes() == 0

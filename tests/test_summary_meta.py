"""Tests for intervals, locations, summary metadata, and lineage."""

import pytest

from repro.core.summary import (
    DataSummary,
    LineageLog,
    Location,
    SummaryMeta,
    TimeInterval,
)
from repro.errors import LineageError


class TestTimeInterval:
    def test_basic_properties(self):
        interval = TimeInterval(10.0, 20.0)
        assert interval.duration == 10.0
        assert interval.contains(10.0)
        assert interval.contains(19.999)
        assert not interval.contains(20.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            TimeInterval(5.0, 1.0)

    def test_overlaps(self):
        a = TimeInterval(0, 10)
        assert a.overlaps(TimeInterval(5, 15))
        assert a.overlaps(TimeInterval(-5, 1))
        assert not a.overlaps(TimeInterval(10, 20))  # half-open
        assert not a.overlaps(TimeInterval(20, 30))

    def test_adjacent(self):
        a = TimeInterval(0, 10)
        assert a.adjacent_to(TimeInterval(10, 20))
        assert TimeInterval(10, 20).adjacent_to(a)
        assert not a.adjacent_to(TimeInterval(11, 20))

    def test_union(self):
        assert TimeInterval(0, 10).union(TimeInterval(20, 30)) == (
            TimeInterval(0, 30)
        )


class TestLocation:
    def test_parts_and_level(self):
        loc = Location("hq/factory1/line2/machine3")
        assert loc.parts == ("hq", "factory1", "line2", "machine3")
        assert loc.level == 3

    def test_parent_chain(self):
        loc = Location("a/b/c")
        assert loc.parent == Location("a/b")
        assert loc.parent.parent == Location("a")
        assert loc.parent.parent.parent is None

    def test_ancestry(self):
        top = Location("hq/factory1")
        deep = Location("hq/factory1/line1/machine1")
        assert top.is_ancestor_of(deep)
        assert not deep.is_ancestor_of(top)
        assert not top.is_ancestor_of(top)

    def test_common_ancestor(self):
        a = Location("hq/factory1/line1")
        b = Location("hq/factory1/line2/machine5")
        assert a.common_ancestor(b) == Location("hq/factory1")
        assert a.common_ancestor(a) == a

    def test_no_common_root(self):
        with pytest.raises(ValueError):
            Location("a/b").common_ancestor(Location("c/d"))

    def test_invalid_paths(self):
        for bad in ("", "/x", "x/"):
            with pytest.raises(ValueError):
                Location(bad)

    def test_child(self):
        assert Location("a").child("b") == Location("a/b")


class TestSummaryMeta:
    def test_combinable_same_location(self):
        a = SummaryMeta(TimeInterval(0, 10), Location("x/y"))
        b = SummaryMeta(TimeInterval(100, 110), Location("x/y"))
        assert a.combinable_with(b)

    def test_combinable_shared_time(self):
        a = SummaryMeta(TimeInterval(0, 10), Location("x/y"))
        b = SummaryMeta(TimeInterval(5, 15), Location("x/z"))
        assert a.combinable_with(b)

    def test_not_combinable(self):
        a = SummaryMeta(TimeInterval(0, 10), Location("x/y"))
        b = SummaryMeta(TimeInterval(100, 110), Location("x/z"))
        assert not a.combinable_with(b)

    def test_combined_meta(self):
        a = SummaryMeta(TimeInterval(0, 10), Location("x/y/1"))
        b = SummaryMeta(TimeInterval(5, 15), Location("x/y/2"))
        merged = a.combined(b)
        assert merged.interval == TimeInterval(0, 15)
        assert merged.location == Location("x/y")


class TestLineage:
    def test_record_and_ancestry(self):
        log = LineageLog()
        ingest = log.record("ingest", location=Location("a/b"), timestamp=1.0)
        aggregate = log.record("aggregate", inputs=[ingest.lineage_id])
        merge = log.record("merge", inputs=[aggregate.lineage_id])
        ancestry = log.ancestry(merge.lineage_id)
        ids = {r.lineage_id for r in ancestry}
        assert ids == {
            ingest.lineage_id,
            aggregate.lineage_id,
            merge.lineage_id,
        }

    def test_descendants(self):
        log = LineageLog()
        root = log.record("ingest")
        child_a = log.record("aggregate", inputs=[root.lineage_id])
        child_b = log.record("replicate", inputs=[root.lineage_id])
        grandchild = log.record("merge", inputs=[child_a.lineage_id])
        descendants = {
            r.lineage_id for r in log.descendants(root.lineage_id)
        }
        assert descendants == {
            child_a.lineage_id,
            child_b.lineage_id,
            grandchild.lineage_id,
        }

    def test_unknown_input_rejected(self):
        log = LineageLog()
        with pytest.raises(LineageError):
            log.record("merge", inputs=[999999])

    def test_unknown_lookup(self):
        log = LineageLog()
        with pytest.raises(LineageError):
            log.get(123456789)
        with pytest.raises(LineageError):
            log.descendants(123456789)

    def test_ids_globally_unique(self):
        log_a, log_b = LineageLog(), LineageLog()
        record_a = log_a.record("ingest")
        record_b = log_b.record("ingest")
        assert record_a.lineage_id != record_b.lineage_id


class TestDataSummary:
    def test_envelope(self):
        summary = DataSummary(
            kind="sample",
            meta=SummaryMeta(TimeInterval(0, 1), Location("x")),
            payload=[1, 2, 3],
            size_bytes=48,
            attrs={"rate": 0.5},
        )
        assert summary.kind == "sample"
        assert summary.attrs["rate"] == 0.5

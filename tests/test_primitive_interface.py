"""Tests of the ComputingPrimitive contract and the registry."""

import pytest

from repro.core import default_registry
from repro.core.flowtree import FlowtreePrimitive
from repro.core.primitive import AdaptationFeedback, QueryRequest
from repro.core.registry import PrimitiveRegistry
from repro.core.sampling import RandomSamplePrimitive
from repro.core.summary import Location
from repro.errors import GranularityError, PlacementError, SchemaMismatchError
from repro.flows.records import FlowRecord, Score

LOC_A = Location("hq/factory1/line1")
LOC_B = Location("hq/factory1/line2")
LOC_FAR = Location("hq/factory2/line9")


class TestRegistry:
    def test_default_kinds(self):
        kinds = set(default_registry().kinds())
        assert kinds == {
            "sample",
            "timebin",
            "heavy_hitter",
            "count_min",
            "reservoir",
            "flowtree",
            "hhh",
            "raw",
            "quantile",
        }

    def test_create_each_kind(self, policy):
        registry = default_registry()
        for kind in registry.kinds():
            primitive = registry.create(kind, LOC_A, {"policy": policy})
            assert primitive.kind == kind
            assert primitive.location == LOC_A

    def test_unknown_kind(self):
        with pytest.raises(PlacementError):
            default_registry().create("nope", LOC_A, {})

    def test_custom_registration(self):
        registry = PrimitiveRegistry()
        registry.register(
            "sample",
            lambda loc, cfg: RandomSamplePrimitive(loc, rate=cfg["rate"]),
        )
        primitive = registry.create("sample", LOC_A, {"rate": 0.3})
        assert primitive.rate == 0.3

    def test_config_flows_through(self):
        primitive = default_registry().create(
            "timebin", LOC_A, {"bin_seconds": 30.0}
        )
        assert primitive.bin_seconds == 30.0


class TestCombinePreconditions:
    def test_same_location_different_time_ok(self):
        a = RandomSamplePrimitive(LOC_A, rate=1.0)
        b = RandomSamplePrimitive(LOC_A, rate=1.0)
        a.ingest(1.0, 0.0)
        b.ingest(1.0, 1000.0)  # disjoint time, same location
        a.combine(b)
        assert len(a.points) == 2

    def test_shared_time_different_location_ok(self):
        a = RandomSamplePrimitive(LOC_A, rate=1.0)
        b = RandomSamplePrimitive(LOC_B, rate=1.0)
        a.ingest(1.0, 0.0)
        a.ingest(1.0, 10.0)
        b.ingest(1.0, 5.0)
        a.combine(b)
        # location generalizes to the common ancestor
        assert a.location == Location("hq/factory1")

    def test_adjacent_intervals_count_as_shared_time(self):
        a = RandomSamplePrimitive(LOC_A, rate=1.0)
        b = RandomSamplePrimitive(LOC_FAR, rate=1.0)
        a.ingest(1.0, 0.0)
        a.ingest(1.0, 60.0)
        b.ingest(1.0, 60.0)
        b.ingest(1.0, 120.0)
        a.combine(b)
        assert a.interval().start == 0.0
        assert a.interval().end == 120.0

    def test_disjoint_everything_rejected(self):
        a = RandomSamplePrimitive(LOC_A, rate=1.0)
        b = RandomSamplePrimitive(LOC_FAR, rate=1.0)
        a.ingest(1.0, 0.0)
        b.ingest(1.0, 99999.0)
        with pytest.raises(SchemaMismatchError):
            a.combine(b)

    def test_empty_side_combines_freely(self):
        a = RandomSamplePrimitive(LOC_A, rate=1.0)
        b = RandomSamplePrimitive(LOC_FAR, rate=1.0)
        b.ingest(1.0, 99999.0)
        a.combine(b)  # a is empty: adopts b's metadata
        assert a.location == LOC_FAR
        assert a.items_ingested == 1


class TestFlowtreePrimitive:
    def test_ingest_and_query(self, policy, make_key):
        primitive = FlowtreePrimitive(LOC_A, policy, node_budget=256)
        record = FlowRecord(
            key=make_key(), packets=2, bytes=200, first_seen=0.0,
            last_seen=1.0,
        )
        primitive.ingest(record, record.first_seen)
        assert primitive.query(
            QueryRequest("query", {"key": record.key})
        ) == Score(2, 200, 1)
        assert primitive.query(QueryRequest("total", {})).flows == 1

    def test_rejects_foreign_items(self, policy):
        primitive = FlowtreePrimitive(LOC_A, policy)
        with pytest.raises(SchemaMismatchError):
            primitive.ingest("not a flow", 0.0)

    def test_summary_payload_is_snapshot(self, policy, make_key):
        primitive = FlowtreePrimitive(LOC_A, policy)
        record = FlowRecord(
            key=make_key(), packets=1, bytes=100, first_seen=0.0,
            last_seen=1.0,
        )
        primitive.ingest(record, 0.0)
        snapshot = primitive.summary().payload
        primitive.ingest(record, 2.0)
        assert snapshot.total().bytes == 100
        assert primitive.tree.total().bytes == 200

    def test_set_granularity_compresses(self, policy, random_flows):
        primitive = FlowtreePrimitive(LOC_A, policy, node_budget=None)
        for record in random_flows(200):
            primitive.ingest(record, record.first_seen)
        primitive.set_granularity(50)
        assert primitive.tree.node_count <= 50

    def test_set_granularity_minimum(self, policy):
        primitive = FlowtreePrimitive(LOC_A, policy)
        with pytest.raises(GranularityError):
            primitive.set_granularity(2)

    def test_adapt_grows_and_shrinks(self, policy):
        primitive = FlowtreePrimitive(LOC_A, policy, node_budget=256)
        primitive.adapt(
            AdaptationFeedback(query_rate=5.0, storage_pressure=0.0)
        )
        assert primitive.node_budget == 512
        primitive.adapt(AdaptationFeedback(storage_pressure=0.9))
        assert primitive.node_budget == 256

    def test_query_bound_operator(self, policy, make_key):
        primitive = FlowtreePrimitive(LOC_A, policy, node_budget=256)
        record = FlowRecord(
            key=make_key(), packets=2, bytes=200, first_seen=0.0,
            last_seen=1.0,
        )
        primitive.ingest(record, 0.0)
        lower, upper = primitive.query(
            QueryRequest("query_bound", {"key": record.key})
        )
        assert lower == upper == Score(2, 200, 1)

    def test_domain_knowledge(self, policy):
        assert FlowtreePrimitive(LOC_A, policy).uses_domain_knowledge

"""Tests for the discrete-event simulator."""

import pytest

from repro.errors import SimulationError
from repro.simulation.events import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(5.0, lambda s: fired.append(("b", s.now)))
        sim.schedule_at(1.0, lambda s: fired.append(("a", s.now)))
        sim.schedule_at(9.0, lambda s: fired.append(("c", s.now)))
        sim.run()
        assert fired == [("a", 1.0), ("b", 5.0), ("c", 9.0)]

    def test_equal_times_fire_in_schedule_order(self):
        sim = Simulator()
        fired = []
        for name in "abc":
            sim.schedule_at(1.0, lambda s, n=name: fired.append(n))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_schedule_after(self):
        sim = Simulator(start_time=10.0)
        fired = []
        sim.schedule_after(5.0, lambda s: fired.append(s.now))
        sim.run()
        assert fired == [15.0]

    def test_cannot_schedule_in_past(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda s: None)
        with pytest.raises(SimulationError):
            sim.schedule_after(-1.0, lambda s: None)

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def first(s):
            fired.append(s.now)
            s.schedule_after(2.0, lambda s2: fired.append(s2.now))

        sim.schedule_at(1.0, first)
        sim.run()
        assert fired == [1.0, 3.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule_at(1.0, lambda s: fired.append("x"))
        event.cancel()
        sim.run()
        assert fired == []

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        keep = sim.schedule_at(1.0, lambda s: None)
        drop = sim.schedule_at(2.0, lambda s: None)
        drop.cancel()
        assert sim.pending == 1
        assert keep is not drop


class TestRunUntil:
    def test_clock_ends_exactly_at_target(self):
        sim = Simulator()
        sim.schedule_at(3.0, lambda s: None)
        sim.run_until(10.0)
        assert sim.now == 10.0

    def test_future_events_stay_queued(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(3.0, lambda s: fired.append(3))
        sim.schedule_at(30.0, lambda s: fired.append(30))
        sim.run_until(10.0)
        assert fired == [3]
        sim.run_until(40.0)
        assert fired == [3, 30]

    def test_boundary_event_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(10.0, lambda s: fired.append(10))
        sim.run_until(10.0)
        assert fired == [10]

    def test_cannot_run_backwards(self):
        sim = Simulator(start_time=5.0)
        with pytest.raises(SimulationError):
            sim.run_until(1.0)


class TestPeriodic:
    def test_every_fires_repeatedly(self):
        sim = Simulator()
        fired = []
        sim.every(1.0, lambda s: fired.append(s.now), until=5.0)
        sim.run()
        assert fired == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_every_with_start_at(self):
        sim = Simulator()
        fired = []
        sim.every(2.0, lambda s: fired.append(s.now), until=6.0, start_at=0.5)
        sim.run()
        assert fired == [0.5, 2.5, 4.5]

    def test_invalid_interval(self):
        with pytest.raises(SimulationError):
            Simulator().every(0.0, lambda s: None)

    def test_runaway_guard(self):
        sim = Simulator()
        sim.every(1.0, lambda s: None)  # unbounded
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_events_fired_counter(self):
        sim = Simulator()
        for t in range(5):
            sim.schedule_at(float(t + 1), lambda s: None)
        sim.run()
        assert sim.events_fired == 5

"""Unit tests for time-binned statistics."""


import pytest

from repro.core.primitive import AdaptationFeedback, QueryRequest
from repro.core.summary import Location
from repro.core.timebin import BinStats, TimeBinStatistics
from repro.errors import GranularityError

LOC = Location("factory1/line1/machine2")


def make_primitive(bin_seconds=1.0, seed=1):
    return TimeBinStatistics(LOC, bin_seconds=bin_seconds, seed=seed)


class TestBinStats:
    def test_moments(self):
        stats = BinStats()
        import random

        rng = random.Random(0)
        for value in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
            stats.observe(value, rng, 32)
        assert stats.count == 8
        assert stats.mean == pytest.approx(5.0)
        assert stats.stddev == pytest.approx(2.0)
        assert stats.minimum == 2.0
        assert stats.maximum == 9.0
        assert stats.median == pytest.approx(5.0)

    def test_merge_matches_pooled_moments(self):
        import random

        rng = random.Random(0)
        a, b, pooled = BinStats(), BinStats(), BinStats()
        values_a = [1.0, 2.0, 3.0]
        values_b = [10.0, 20.0]
        for v in values_a:
            a.observe(v, rng, 32)
            pooled.observe(v, rng, 32)
        for v in values_b:
            b.observe(v, rng, 32)
            pooled.observe(v, rng, 32)
        a.merge(b, rng, 32)
        assert a.count == pooled.count
        assert a.mean == pytest.approx(pooled.mean)
        assert a.variance == pytest.approx(pooled.variance)
        assert a.minimum == pooled.minimum
        assert a.maximum == pooled.maximum

    def test_merge_empty(self):
        import random

        rng = random.Random(0)
        a, b = BinStats(), BinStats()
        a.merge(b, rng, 32)
        assert a.count == 0
        b.observe(5.0, rng, 32)
        a.merge(b, rng, 32)
        assert a.count == 1
        assert a.mean == 5.0

    def test_empty_quantile(self):
        assert BinStats().median is None
        assert BinStats().variance == 0.0


class TestPrimitive:
    def test_binning(self):
        primitive = make_primitive(bin_seconds=10.0)
        for t in (0.0, 5.0, 9.9, 10.0, 19.9, 20.0):
            primitive.ingest(1.0, t)
        bins = primitive.bins()
        assert list(bins.keys()) == [0.0, 10.0, 20.0]
        assert bins[0.0].count == 3
        assert bins[10.0].count == 2
        assert bins[20.0].count == 1

    def test_series_query(self):
        primitive = make_primitive(bin_seconds=1.0)
        for t in range(5):
            primitive.ingest(float(t * 10), float(t))
        series = primitive.query(QueryRequest("series", {"field": "mean"}))
        assert series == [(0.0, 0.0), (1.0, 10.0), (2.0, 20.0), (3.0, 30.0),
                          (4.0, 40.0)]

    def test_series_window(self):
        primitive = make_primitive(bin_seconds=1.0)
        for t in range(10):
            primitive.ingest(1.0, float(t))
        series = primitive.query(
            QueryRequest("series", {"start": 3.0, "end": 7.0})
        )
        assert [s for s, _ in series] == [3.0, 4.0, 5.0, 6.0]

    def test_stats_aggregate(self):
        primitive = make_primitive(bin_seconds=1.0)
        for t in range(10):
            primitive.ingest(float(t), float(t))
        stats = primitive.query(QueryRequest("stats", {}))
        assert stats.count == 10
        assert stats.mean == pytest.approx(4.5)

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            make_primitive().query(QueryRequest("nope", {}))

    def test_invalid_bin_width(self):
        with pytest.raises(GranularityError):
            make_primitive(bin_seconds=0.0)


class TestGranularity:
    def test_rebin_to_multiple(self):
        primitive = make_primitive(bin_seconds=1.0)
        for t in range(60):
            primitive.ingest(1.0, float(t))
        primitive.set_granularity(10.0)
        bins = primitive.bins()
        assert len(bins) == 6
        assert all(stats.count == 10 for stats in bins.values())

    def test_rebin_preserves_total(self):
        primitive = make_primitive(bin_seconds=1.0)
        for t in range(100):
            primitive.ingest(float(t), float(t))
        total_before = primitive.query(QueryRequest("stats", {})).total
        primitive.set_granularity(7.0)  # ragged multiple still integer
        assert primitive.query(QueryRequest("stats", {})).total == (
            pytest.approx(total_before)
        )

    def test_non_multiple_rejected(self):
        primitive = make_primitive(bin_seconds=2.0)
        primitive.ingest(1.0, 0.0)
        with pytest.raises(GranularityError):
            primitive.set_granularity(3.0)
        with pytest.raises(GranularityError):
            primitive.set_granularity(1.0)  # cannot sharpen

    def test_adapt_widens_under_pressure(self):
        primitive = make_primitive(bin_seconds=1.0)
        primitive.ingest(1.0, 0.0)
        primitive.adapt(AdaptationFeedback(storage_pressure=0.9))
        assert primitive.bin_seconds == 2.0

    def test_adapt_follows_queries(self):
        primitive = make_primitive(bin_seconds=1.0)
        primitive.ingest(1.0, 0.0)
        primitive.adapt(AdaptationFeedback(requested_granularity=60.0))
        assert primitive.bin_seconds == 60.0


class TestCombine:
    def test_combine_same_width(self):
        a = make_primitive(bin_seconds=1.0)
        b = make_primitive(bin_seconds=1.0, seed=2)
        for t in range(5):
            a.ingest(1.0, float(t))
            b.ingest(3.0, float(t))
        a.combine(b)
        bins = a.bins()
        assert all(stats.count == 2 for stats in bins.values())
        assert all(stats.mean == 2.0 for stats in bins.values())

    def test_combine_mixed_width_coarsens(self):
        a = make_primitive(bin_seconds=1.0)
        b = make_primitive(bin_seconds=10.0, seed=2)
        for t in range(20):
            a.ingest(1.0, float(t))
            b.ingest(1.0, float(t))
        a.combine(b)
        assert a.bin_seconds == 10.0
        assert sum(s.count for s in a.bins().values()) == 40

    def test_epoch_reset(self):
        primitive = make_primitive()
        primitive.ingest(1.0, 0.5)
        summary = primitive.reset_epoch()
        assert summary.kind == "timebin"
        assert summary.attrs["bin_seconds"] == 1.0
        assert primitive.bins() == {}

"""Tests for the raw-access primitive (Figure 4's 'Raw Access')."""

import pytest

from repro.core.primitive import AdaptationFeedback, QueryRequest
from repro.core.rawstore import RawStorePrimitive
from repro.core.summary import Location
from repro.datastore.recombine import combine_summaries
from repro.datastore.summary_query import rehydrate
from repro.errors import GranularityError

LOC = Location("hq/factory1/line1")


def make_store(budget=1000, size_of=lambda item: 10):
    return RawStorePrimitive(LOC, budget_bytes=budget, size_of=size_of)


class TestRetention:
    def test_keeps_everything_under_budget(self):
        store = make_store(budget=1000)
        for i in range(50):
            store.ingest(i, float(i))
        assert store.query(QueryRequest("count", {})) == 50
        assert store.dropped == 0

    def test_drops_oldest_over_budget(self):
        store = make_store(budget=100)  # room for 10 items
        for i in range(30):
            store.ingest(i, float(i))
        items = store.query(QueryRequest("items", {}))
        assert len(items) == 10
        assert items[0][1] == 20  # oldest retained
        assert store.dropped == 20

    def test_size_from_attribute(self):
        class Reading:
            size_bytes = 100

        store = RawStorePrimitive(LOC, budget_bytes=250)
        for i in range(5):
            store.ingest(Reading(), float(i))
        assert store.query(QueryRequest("count", {})) == 2

    def test_invalid_budget(self):
        with pytest.raises(GranularityError):
            RawStorePrimitive(LOC, budget_bytes=0)


class TestQueries:
    def test_window(self):
        store = make_store()
        for i in range(10):
            store.ingest(i, float(i))
        window = store.query(QueryRequest("items", {"start": 3.0, "end": 7.0}))
        assert [item for _, item in window] == [3, 4, 5, 6]

    def test_replay(self):
        store = make_store()
        for i in range(5):
            store.ingest(i, float(i))
        replayed = []
        count = store.query(QueryRequest("replay", {"consumer": replayed.append}))
        assert count == 5
        assert replayed == [0, 1, 2, 3, 4]

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            make_store().query(QueryRequest("nope", {}))


class TestLifecycle:
    def test_combine_merges_time_ordered(self):
        a, b = make_store(budget=10**6), make_store(budget=10**6)
        a.ingest("a0", 0.0)
        a.ingest("a2", 2.0)
        b.ingest("b1", 1.0)
        a.combine(b)
        items = a.query(QueryRequest("items", {}))
        assert [item for _, item in items] == ["a0", "b1", "a2"]

    def test_set_granularity_shrinks(self):
        store = make_store(budget=1000)
        for i in range(50):
            store.ingest(i, float(i))
        store.set_granularity(100)
        assert store.query(QueryRequest("count", {})) == 10

    def test_adapt_halves_budget(self):
        store = make_store(budget=4096)
        store.adapt(AdaptationFeedback(storage_pressure=0.9))
        assert store.budget_bytes == 2048

    def test_epoch_reset(self):
        store = make_store()
        store.ingest("x", 1.0)
        summary = store.reset_epoch()
        assert summary.kind == "raw"
        assert summary.payload == [(1.0, "x")]
        assert store.query(QueryRequest("count", {})) == 0

    def test_recombine_and_rehydrate(self):
        a, b = make_store(budget=10**6), make_store(budget=10**6)
        a.ingest("early", 0.0)
        b.ingest("late", 100.0)
        combined = combine_summaries([a.summary(), b.summary()], shrink=1.0)
        assert combined.kind == "raw"
        primitive = rehydrate(combined)
        items = primitive.query(QueryRequest("items", {}))
        assert [item for _, item in items] == ["early", "late"]

    def test_recombine_shrink_drops_oldest(self):
        a = make_store(budget=10**6)
        for i in range(10):
            a.ingest(i, float(i))
        combined = combine_summaries([a.summary()], shrink=0.5)
        assert len(combined.payload) == 5
        assert combined.payload[0][1] == 5  # oldest half dropped

"""Tests for the federated FlowQL query planner.

The planner is the PR's contract point: ``HierarchyRuntime.query``
answers must be indistinguishable from the pre-refactor cloud-only
executor whenever the root FlowDB holds the full rollup (the hypothesis
differential below), and must fan out to the shallowest covering level
— with caching and the replication feed — when it does not.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FlowQLPlanningError
from repro.flowql.executor import FlowQLExecutor
from repro.query import ROUTE_CLOUD, ROUTE_FEDERATED
from repro.replication.engine import AdaptiveReplicationEngine
from repro.replication.ski_rental import BreakEvenPolicy
from repro.runtime.presets import network_4level_runtime
from repro.simulation.traffic import TrafficConfig, TrafficGenerator

EPOCH = 60.0


def loaded_runtime(
    networks=1,
    regions=1,
    routers=2,
    epochs=2,
    flows_per_epoch=150,
    seed=11,
    retain_partitions=True,
):
    runtime = network_4level_runtime(
        networks=networks,
        regions_per_network=regions,
        routers_per_region=routers,
        retain_partitions=retain_partitions,
    )
    sites = runtime.ingest_sites()
    generator = TrafficGenerator(
        TrafficConfig(sites=tuple(sites), flows_per_epoch=flows_per_epoch),
        seed=seed,
    )
    for epoch in range(epochs):
        for site in sites:
            runtime.ingest(site, generator.epoch(site, epoch))
        runtime.close_epoch((epoch + 1) * EPOCH)
    return runtime


# ---------------------------------------------------------------------------
# the differential property: planner == cloud-only executor on rollups


@pytest.fixture(scope="module")
def rollup_runtime():
    """Two networks fully rolled up into FlowDB (cloud covers all)."""
    return loaded_runtime(
        networks=2, regions=1, routers=1, flows_per_epoch=120, seed=3,
        retain_partitions=False,
    )


OPERATORS = st.sampled_from(
    [
        "TOTAL",
        "TOPK(5)",
        "TOPK(2)",
        "ABOVE(1000)",
        "HHH(0.1)",
        "GROUPBY(dst_port, 16)",
        "GROUPBY(proto, 8)",
    ]
)
WINDOWS = st.sampled_from(
    ["ALL", "TIME(0, 60)", "TIME(60, 120)", "TIME(0, 120)", "TIME(30, 90)"]
)
SITES = st.sampled_from(
    [None, ("network1",), ("network2",), ("network1", "network2")]
)
WHERES = st.sampled_from([None, "dst_port = 443", "proto = 6"])
METRICS = st.sampled_from([None, "bytes", "packets"])
LIMITS = st.sampled_from([None, 1, 3])


def flowql_text(op, window, sites, where, metric, limit):
    text = f"SELECT {op} FROM {window}"
    if sites:
        text += " AT " + ", ".join(sites)
    if where:
        text += f" WHERE {where}"
    if metric:
        text += f" BY {metric}"
    if limit is not None:
        text += f" LIMIT {limit}"
    return text


class TestDifferential:
    @settings(max_examples=60, deadline=None)
    @given(
        op=OPERATORS,
        window=WINDOWS,
        sites=SITES,
        where=WHERES,
        metric=METRICS,
        limit=LIMITS,
    )
    def test_planner_matches_cloud_executor_on_full_rollup(
        self, rollup_runtime, op, window, sites, where, metric, limit
    ):
        """When the root FlowDB covers the query, routing through the
        planner must be answer-identical to the pre-refactor cloud-only
        executor — same scalar, same rows, node for node."""
        text = flowql_text(op, window, sites, where, metric, limit)
        expected = FlowQLExecutor(rollup_runtime.db).execute(text)
        got = rollup_runtime.query(text)
        plan = rollup_runtime.planner.last_plan
        assert plan.route == ROUTE_CLOUD
        assert got.operator == expected.operator
        assert got.scalar == expected.scalar
        assert got.rows == expected.rows

    @settings(max_examples=20, deadline=None)
    @given(op=OPERATORS, window=WINDOWS)
    def test_cached_repeat_is_answer_identical(
        self, rollup_runtime, op, window
    ):
        text = flowql_text(op, window, None, None, None, None)
        first = rollup_runtime.query(text)
        again = rollup_runtime.query(text)
        assert again.scalar == first.scalar
        assert again.rows == first.rows


# ---------------------------------------------------------------------------
# routing decisions


class TestRouting:
    def test_rolled_up_window_routes_to_cloud(self):
        runtime = loaded_runtime()
        result = runtime.query("SELECT TOTAL FROM ALL")
        plan = runtime.planner.last_plan
        assert plan.route == ROUTE_CLOUD
        assert plan.describe().startswith("cloud FlowDB")
        assert result.scalar.bytes > 0
        assert runtime.stats.queries_cloud == 1

    def test_edge_site_routes_to_shallowest_covering_level(self):
        runtime = loaded_runtime()
        site = runtime.ingest_sites()[0]
        result = runtime.query(f"SELECT TOTAL FROM ALL AT {site}")
        plan = runtime.planner.last_plan
        assert plan.route == ROUTE_FEDERATED
        assert plan.level == "router"
        assert plan.sites == [site]
        assert plan.shipped_bytes > 0
        assert result.scalar.bytes > 0
        assert runtime.stats.queries_federated == 1
        assert site in plan.describe()

    def test_federated_drilldowns_sum_to_cloud_total(self):
        """Merge is mass-preserving: per-router partials recombined by
        the planner add up to exactly the root rollup's answer."""
        runtime = loaded_runtime(routers=3, flows_per_epoch=200)
        total = runtime.query("SELECT TOTAL FROM ALL").scalar
        per_site = [
            runtime.query(f"SELECT TOTAL FROM ALL AT {site}").scalar
            for site in runtime.ingest_sites()
        ]
        assert sum(s.bytes for s in per_site) == total.bytes
        assert sum(s.packets for s in per_site) == total.packets

    def test_vs_window_diffs_federated_partials(self):
        runtime = loaded_runtime()
        site = runtime.ingest_sites()[0]
        result = runtime.query(
            f"SELECT TOTAL FROM TIME(60, 120) VS TIME(0, 60) AT {site}"
        )
        plan = runtime.planner.last_plan
        assert plan.route == ROUTE_FEDERATED
        assert result.scalar is not None
        # both windows were read at the router
        assert len(plan.reads) == 2

    def test_uncovered_site_raises_planning_error(self):
        """Without retained interior partitions an ancestor store must
        NOT answer for a deeper site (it would fold in siblings)."""
        runtime = loaded_runtime(retain_partitions=False)
        site = runtime.ingest_sites()[0]
        with pytest.raises(FlowQLPlanningError):
            runtime.query(f"SELECT TOTAL FROM ALL AT {site}")

    def test_empty_window_raises_planning_error(self):
        runtime = loaded_runtime()
        with pytest.raises(FlowQLPlanningError):
            runtime.query("SELECT TOTAL FROM TIME(5000, 6000)")

    def test_plan_is_side_effect_free(self):
        runtime = loaded_runtime()
        site = runtime.ingest_sites()[0]
        from repro.flowql.parser import parse

        before = runtime.total_network_bytes()
        plan = runtime.planner.plan(parse(f"SELECT TOTAL FROM ALL AT {site}"))
        assert plan.route == ROUTE_FEDERATED
        assert runtime.total_network_bytes() == before
        assert plan.reads == []


# ---------------------------------------------------------------------------
# caching through the planner


class TestPlannerCache:
    def test_repeat_is_cache_hit_with_no_new_traffic(self):
        runtime = loaded_runtime()
        site = runtime.ingest_sites()[0]
        text = f"SELECT TOPK(3) FROM ALL AT {site} BY bytes"
        first = runtime.query(text)
        moved = runtime.total_network_bytes()
        again = runtime.query(text)
        plan = runtime.planner.last_plan
        assert plan.cache_hit is True
        assert plan.describe().startswith("cache (federated)")
        assert runtime.stats.queries_cached == 1
        assert runtime.total_network_bytes() == moved
        assert again.rows == first.rows

    def test_cached_result_is_a_defensive_copy(self):
        runtime = loaded_runtime()
        site = runtime.ingest_sites()[0]
        text = f"SELECT TOPK(3) FROM ALL AT {site} BY bytes"
        first = runtime.query(text)
        first.rows.clear()  # a caller mutating its copy...
        again = runtime.query(text)
        assert again.rows  # ...must not poison the cache

    def test_cache_disabled_with_none(self):
        runtime = loaded_runtime()
        runtime.planner.cache = None
        site = runtime.ingest_sites()[0]
        text = f"SELECT TOTAL FROM ALL AT {site}"
        runtime.query(text)
        runtime.query(text)
        assert runtime.stats.queries_cached == 0
        assert runtime.stats.queries_federated == 2

    def test_different_sites_never_conflated(self):
        runtime = loaded_runtime()
        sites = runtime.ingest_sites()
        a = runtime.query(f"SELECT TOTAL FROM ALL AT {sites[0]}")
        b = runtime.query(f"SELECT TOTAL FROM ALL AT {sites[1]}")
        assert runtime.stats.queries_cached == 0
        assert (a.scalar.bytes, a.scalar.packets) != (
            b.scalar.bytes,
            b.scalar.packets,
        )


# ---------------------------------------------------------------------------
# the replication feedback loop driven by FlowQL traffic


class TestReplicationFeed:
    def test_repeated_queries_turn_reads_local(self):
        runtime = loaded_runtime()
        engine = AdaptiveReplicationEngine(BreakEvenPolicy())
        runtime.manager.enable_adaptive_replication(engine)
        runtime.planner.cache = None  # isolate replication from caching
        site = runtime.ingest_sites()[0]
        text = f"SELECT TOTAL FROM ALL AT {site}"
        for _ in range(6):
            runtime.query(text)
            if runtime.planner.last_plan.reads[0].served_locally:
                break
        assert engine.outcomes  # ski-rental bought at least one replica
        moved = runtime.total_network_bytes()
        runtime.query(text)
        read = runtime.planner.last_plan.reads[0]
        assert read.served_locally
        assert read.shipped_bytes == 0
        assert runtime.total_network_bytes() == moved

    def test_per_level_query_stats_accumulate(self):
        runtime = loaded_runtime()
        site = runtime.ingest_sites()[0]
        runtime.query(f"SELECT TOTAL FROM ALL AT {site}")
        volume = runtime.stats.level("router")
        assert volume.queries_served == 1
        assert volume.query_bytes_out > 0


# ---------------------------------------------------------------------------
# the drilldown API applications use


class TestWindowTree:
    def test_window_tree_matches_store_contents(self):
        runtime = loaded_runtime()
        site = runtime.ingest_sites()[0]
        tree = runtime.planner.window_tree(site, 0.0, EPOCH, now=2 * EPOCH)
        assert tree is not None
        assert tree.total().bytes > 0

    def test_window_tree_empty_window_is_none(self):
        runtime = loaded_runtime()
        site = runtime.ingest_sites()[0]
        assert (
            runtime.planner.window_tree(site, 900.0, 960.0, now=2 * EPOCH)
            is None
        )

"""Crash-restart drills: every epoch boundary is a durability point.

The contract under test: killing the runtime (or one site) at any
epoch boundary and recovering from the storage engine yields the same
root state the uninterrupted run produces — bit-identical trees, 100%
delivered mass, pending exports replayed exactly once.  The drills run
against both engines: :class:`MemoryEngine` recovers from process
memory, :class:`SegmentLogEngine` from an on-disk data directory.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultPlan, LinkOutage, RestartDrill
from repro.flows.columnar import HAVE_NUMPY
from repro.runtime.presets import network_4level_runtime
from repro.simulation.traffic import TrafficConfig, TrafficGenerator
from repro.storage import MemoryEngine, SegmentLogEngine

EPOCHS = 3
FLOWS = 120


def build(storage=None, faults=None, routers=2, parallel=None):
    return network_4level_runtime(
        networks=1,
        regions_per_network=2,
        routers_per_region=routers,
        retain_partitions=True,
        storage=storage,
        faults=faults,
        parallel=parallel,
    )


def drive(runtime, epochs=EPOCHS, flows=FLOWS, seed=23):
    sites = runtime.ingest_sites()
    generator = TrafficGenerator(
        TrafficConfig(sites=tuple(sites), flows_per_epoch=flows), seed=seed
    )
    for epoch in range(epochs):
        for site in sites:
            runtime.ingest(site, generator.epoch(site, epoch))
        runtime.close_epoch((epoch + 1) * 60.0)
    return runtime


def root_state(runtime):
    return runtime.db.merged_tree().to_dict()


@pytest.fixture(scope="module")
def uninterrupted():
    """The reference run: no faults, default memory engine."""
    runtime = drive(build())
    return {
        "tree": root_state(runtime),
        "wan": runtime.wan_bytes(),
        "mass": runtime.query("SELECT TOTAL FROM ALL").scalar,
    }


def engine_for(kind, tmp_path):
    if kind == "memory":
        return MemoryEngine()
    return SegmentLogEngine(str(tmp_path / "data"))


class TestCrashAtEveryBoundary:
    @pytest.mark.parametrize("kind", ["memory", "segment"])
    @pytest.mark.parametrize("boundary", range(EPOCHS))
    def test_full_runtime_restart(self, kind, boundary, tmp_path,
                                  uninterrupted):
        plan = FaultPlan(restarts=[RestartDrill("cloud", boundary)])
        runtime = drive(build(storage=engine_for(kind, tmp_path),
                              faults=plan))
        assert runtime._restarts == 1
        assert root_state(runtime) == uninterrupted["tree"]
        assert runtime.wan_bytes() == uninterrupted["wan"]
        mass = runtime.query("SELECT TOTAL FROM ALL").scalar
        assert mass == uninterrupted["mass"]  # 100% delivered mass
        assert runtime.pending_exports() == 0

    @pytest.mark.parametrize("kind", ["memory", "segment"])
    def test_single_site_restart(self, kind, tmp_path, uninterrupted):
        plan = FaultPlan(
            restarts=[RestartDrill("network1/region1", 1)]
        )
        runtime = drive(build(storage=engine_for(kind, tmp_path),
                              faults=plan))
        assert runtime._restarts == 1
        assert root_state(runtime) == uninterrupted["tree"]

    def test_restart_drill_fires_once(self, tmp_path):
        plan = FaultPlan(restarts=[RestartDrill("cloud", 0)])
        runtime = drive(build(faults=plan))
        runtime.close_epoch((EPOCHS + 1) * 60.0)  # extra boundary
        assert runtime._restarts == 1

    def test_unknown_site_raises(self):
        from repro.errors import PlacementError

        plan = FaultPlan(restarts=[RestartDrill("no/such/site", 0)])
        with pytest.raises(PlacementError):
            drive(build(faults=plan), epochs=1)


class TestOpenFromDataDir:
    def test_reopen_recovers_everything(self, tmp_path, uninterrupted):
        data_dir = str(tmp_path / "data")
        first = drive(build(storage=SegmentLogEngine(data_dir)))
        closed = first.stats.epochs_closed

        reopened = build(storage=SegmentLogEngine(data_dir))
        assert reopened._recoveries == 1
        assert reopened._recovered_records == len(first.db)
        assert reopened.stats.epochs_closed == closed
        assert root_state(reopened) == uninterrupted["tree"]

    def test_reopen_continues_the_trace(self, tmp_path):
        data_dir = str(tmp_path / "data")
        drive(build(storage=SegmentLogEngine(data_dir)), epochs=2)
        reopened = build(storage=SegmentLogEngine(data_dir))
        drive(reopened, epochs=1)  # one more epoch on top
        # the continued run holds the full history
        continuous = drive(build(), epochs=2)
        assert reopened.stats.epochs_closed == 3
        assert len(reopened.db) > len(continuous.db)

    def test_fresh_dir_has_no_recovery(self, tmp_path):
        runtime = build(storage=SegmentLogEngine(str(tmp_path / "data")))
        assert runtime._recoveries == 0
        assert runtime._recovered_records == 0


class TestPendingReplayDedup:
    """Parked exports survive a restart and replay exactly once."""

    SITE = "network1/region1/router1"

    def run_with(self, storage):
        # outage parks router1's export at the t=60 close; the restart
        # drill at the same boundary wipes and recovers the runtime;
        # the t=120 close (outside the outage) must replay the parked
        # export once — not zero times, not twice
        plan = FaultPlan(
            outages=[LinkOutage(self.SITE, 1, 2)],
            restarts=[RestartDrill("cloud", 0)],
        )
        runtime = drive(build(storage=storage, faults=plan))
        return runtime

    @pytest.mark.parametrize("kind", ["memory", "segment"])
    def test_parked_export_replays_once(self, kind, tmp_path,
                                        uninterrupted):
        runtime = self.run_with(engine_for(kind, tmp_path))
        assert runtime.pending_exports() == 0
        assert runtime.stats.exports_parked == 1
        assert runtime.stats.exports_recovered == 1
        assert runtime.query("SELECT TOTAL FROM ALL").scalar == (
            uninterrupted["mass"]
        )

    def test_pending_queue_persisted_in_manifest(self, tmp_path):
        # crash while an export is still parked: reopening the data
        # dir restores the queue, and the next close drains it
        data_dir = str(tmp_path / "data")
        plan = FaultPlan(outages=[LinkOutage(self.SITE, 0, 10)])
        first = drive(build(storage=SegmentLogEngine(data_dir),
                            faults=plan), epochs=1)
        assert first.pending_exports() == 1

        reopened = build(storage=SegmentLogEngine(data_dir))
        assert reopened.pending_exports() == 1
        queue = reopened.pending_queue(self.SITE)
        assert len(queue) == 1
        drive(reopened, epochs=1, seed=99)  # next close, link restored
        assert reopened.pending_exports() == 0
        assert reopened.stats.exports_recovered == 1


@pytest.mark.skipif(not HAVE_NUMPY, reason="parallel ingest needs numpy")
class TestParallelDurable:
    def test_workers_with_segment_engine(self, tmp_path, uninterrupted):
        data_dir = str(tmp_path / "data")
        runtime = drive(
            build(storage=SegmentLogEngine(data_dir), parallel=2)
        )
        assert root_state(runtime) == uninterrupted["tree"]
        # shard handoffs land in the sealed segments' metadata
        shards = [
            row["shards"]
            for row in runtime.engine.segments()
            if "shards" in row
        ]
        assert shards, "no shard metadata recorded at the barrier"

    def test_restart_drill_with_workers(self, tmp_path, uninterrupted):
        plan = FaultPlan(restarts=[RestartDrill("cloud", 1)])
        runtime = drive(
            build(storage=SegmentLogEngine(str(tmp_path / "data")),
                  parallel=2, faults=plan)
        )
        assert runtime._restarts == 1
        assert root_state(runtime) == uninterrupted["tree"]


class TestRestartSpecGrammar:
    def test_from_spec(self):
        plan = FaultPlan.from_spec("restart=cloud:2")
        assert plan.restarts == [RestartDrill("cloud", 2)]

    def test_site_with_slashes_and_colons(self):
        plan = FaultPlan.from_spec("restart=network1/region1:0")
        assert plan.restarts[0].site == "network1/region1"

    def test_describe_mentions_restart(self):
        plan = FaultPlan.from_spec("restart=cloud:1")
        assert "restart[cloud]@1" in plan.describe()

    def test_bad_specs_rejected(self):
        from repro.errors import PlacementError

        for spec in ("restart=cloud", "restart=:1", "restart=cloud:-1"):
            with pytest.raises((PlacementError, ValueError)):
                FaultPlan.from_spec(spec)

"""Unit tests for the random-sampling toy primitive (Section V.B)."""

import pytest

from repro.core.primitive import AdaptationFeedback, QueryRequest
from repro.core.sampling import RandomSamplePrimitive
from repro.core.summary import Location
from repro.errors import GranularityError, SchemaMismatchError

LOC = Location("factory1/line1/machine1")


def make_sampler(rate=0.5, seed=42):
    return RandomSamplePrimitive(LOC, rate=rate, seed=seed)


class TestIngest:
    def test_rate_one_keeps_everything(self):
        sampler = make_sampler(rate=1.0)
        for i in range(100):
            sampler.ingest(float(i), float(i))
        assert len(sampler.points) == 100

    def test_sampling_reduces_roughly_by_rate(self):
        sampler = make_sampler(rate=0.2, seed=1)
        for i in range(2000):
            sampler.ingest(1.0, float(i))
        kept = len(sampler.points)
        assert 300 < kept < 500  # ~400 expected

    def test_invalid_rate(self):
        with pytest.raises(GranularityError):
            make_sampler(rate=0.0)
        with pytest.raises(GranularityError):
            make_sampler(rate=1.5)

    def test_interval_tracking(self):
        sampler = make_sampler(rate=1.0)
        sampler.ingest(1.0, 5.0)
        sampler.ingest(2.0, 9.0)
        assert sampler.interval().start == 5.0
        assert sampler.interval().end == 9.0


class TestQueries:
    def test_select_window_and_threshold(self):
        sampler = make_sampler(rate=1.0)
        for i in range(10):
            sampler.ingest(float(i), float(i))
        rows = sampler.query(
            QueryRequest("select", {"start": 2.0, "end": 8.0, "min_value": 5})
        )
        assert [p.value for p in rows] == [5.0, 6.0, 7.0]

    def test_estimate_count_unbiased_scaling(self):
        sampler = make_sampler(rate=0.5, seed=3)
        for i in range(1000):
            sampler.ingest(1.0, float(i))
        estimate = sampler.query(QueryRequest("estimate_count", {}))
        assert 800 < estimate < 1200

    def test_estimate_sum(self):
        sampler = make_sampler(rate=1.0)
        for i in range(10):
            sampler.ingest(2.0, float(i))
        assert sampler.query(QueryRequest("estimate_sum", {})) == 20.0

    def test_mean_empty_window(self):
        sampler = make_sampler(rate=1.0)
        assert sampler.query(QueryRequest("mean", {})) is None

    def test_unknown_operator(self):
        sampler = make_sampler()
        with pytest.raises(ValueError):
            sampler.query(QueryRequest("nope", {}))


class TestCombine:
    def test_combine_same_location(self):
        a = make_sampler(rate=1.0, seed=1)
        b = make_sampler(rate=1.0, seed=2)
        for i in range(5):
            a.ingest(float(i), float(i))
            b.ingest(float(i), float(i) + 100)
        a.combine(b)
        assert len(a.points) == 10
        times = [p.timestamp for p in a.points]
        assert times == sorted(times)

    def test_combine_thins_to_coarser_rate(self):
        a = make_sampler(rate=1.0, seed=1)
        b = make_sampler(rate=0.25, seed=2)
        for i in range(1000):
            a.ingest(1.0, float(i))
            b.ingest(1.0, float(i))
        a.combine(b)
        assert a.rate == 0.25
        # a's 1000 points thinned to ~250, b holds ~250
        assert 350 < len(a.points) < 650

    def test_combine_wrong_type(self):
        from repro.core.timebin import TimeBinStatistics

        a = make_sampler()
        b = TimeBinStatistics(LOC)
        with pytest.raises(SchemaMismatchError):
            a.combine(b)

    def test_combine_disjoint_time_and_location_rejected(self):
        a = make_sampler(rate=1.0)
        b = RandomSamplePrimitive(Location("factory2/line9"), rate=1.0)
        a.ingest(1.0, 0.0)
        a.ingest(1.0, 10.0)
        b.ingest(1.0, 500.0)
        b.ingest(1.0, 600.0)
        with pytest.raises(SchemaMismatchError):
            a.combine(b)

    def test_combine_empty_other_is_noop(self):
        a = make_sampler(rate=1.0)
        b = make_sampler(rate=1.0)
        a.ingest(1.0, 0.0)
        a.combine(b)
        assert len(a.points) == 1


class TestGranularityAndAdaptation:
    def test_set_granularity_thins_retroactively(self):
        sampler = make_sampler(rate=1.0, seed=5)
        for i in range(1000):
            sampler.ingest(1.0, float(i))
        sampler.set_granularity(0.1)
        assert sampler.rate == 0.1
        assert 40 < len(sampler.points) < 200

    def test_adapt_tracks_requested_granularity(self):
        sampler = make_sampler(rate=1.0)
        # stream at 100 items/s; queries only need one point per 10 s
        sampler.adapt(
            AdaptationFeedback(ingest_rate=100.0, requested_granularity=10.0)
        )
        assert sampler.rate == pytest.approx(0.001)

    def test_adapt_storage_pressure_reduces_rate(self):
        sampler = make_sampler(rate=0.8)
        sampler.adapt(AdaptationFeedback(storage_pressure=0.5))
        assert sampler.rate == pytest.approx(0.4)

    def test_epoch_reset(self):
        sampler = make_sampler(rate=1.0)
        sampler.ingest(1.0, 1.0)
        summary = sampler.reset_epoch()
        assert summary.kind == "sample"
        assert len(summary.payload) == 1
        assert sampler.points == []
        assert sampler.items_ingested == 0

    def test_no_domain_knowledge(self):
        assert make_sampler().uses_domain_knowledge is False

    def test_footprint_scales(self):
        sampler = make_sampler(rate=1.0)
        assert sampler.footprint_bytes() == 0
        sampler.ingest(1.0, 1.0)
        assert sampler.footprint_bytes() == 16

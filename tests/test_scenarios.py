"""Tests for the prebuilt scenario harnesses."""


from repro.scenarios.factory import FactoryScenario
from repro.scenarios.network import NetworkScenario


class TestFactoryScenario:
    def test_baseline_fails_with_app_survives(self):
        baseline = FactoryScenario(
            lines=1, machines_per_line=2, with_maintenance=False
        ).run(hours=6.0)
        assert baseline.failure_rate == 1.0
        assert baseline.emergency_stops > 0

        protected = FactoryScenario(
            lines=1, machines_per_line=2, with_maintenance=True
        ).run(hours=6.0)
        assert protected.failure_rate == 0.0
        assert protected.maintenance_decisions

    def test_outcome_accounting(self):
        outcome = FactoryScenario(
            lines=1, machines_per_line=2, with_maintenance=True,
            with_mining=True,
        ).run(hours=3.0)
        assert outcome.machines == 2
        assert outcome.partitions_stored > 0
        assert outcome.stored_bytes > 0
        assert outcome.lineage_records >= outcome.partitions_stored
        assert outcome.line_reports  # mining ran

    def test_determinism(self):
        a = FactoryScenario(lines=1, machines_per_line=2, seed=5).run(2.0)
        b = FactoryScenario(lines=1, machines_per_line=2, seed=5).run(2.0)
        assert a.failures == b.failures
        assert len(a.maintenance_decisions) == len(b.maintenance_decisions)


class TestNetworkScenario:
    def test_attack_detected_and_mitigated(self):
        scenario = NetworkScenario(
            regions=2, flows_per_epoch=800, seed=13
        )
        outcome = scenario.run(
            epochs=3,
            attacks=[(2, "region1/router1")],
            attack_flows=1500,
        )
        assert outcome.detected_attacks >= 1
        finding = outcome.findings[0]
        assert finding.site == "cloud/network/region1/router1"
        assert outcome.mitigation_rules.get(finding.site)

    def test_clean_run_has_no_findings(self):
        outcome = NetworkScenario(
            regions=2, flows_per_epoch=800, seed=13
        ).run(epochs=3)
        assert outcome.detected_attacks == 0
        assert outcome.trend_reports
        assert outcome.matrix_reports
        assert not outcome.mitigation_rules

    def test_apps_optional(self):
        outcome = NetworkScenario(
            regions=2,
            flows_per_epoch=400,
            with_trends=False,
            with_matrix=False,
            with_ddos=False,
        ).run(epochs=1)
        assert outcome.trend_reports == []
        assert outcome.matrix_reports == []
        assert outcome.findings == []

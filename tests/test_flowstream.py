"""End-to-end tests for the Flowstream system (Figure 5)."""

import pytest

from repro.errors import PlacementError
from repro.flowstream.system import Flowstream
from repro.simulation.traffic import TrafficConfig, TrafficGenerator

SITES = ["region1/router1", "region2/router1"]


@pytest.fixture()
def system():
    return Flowstream(sites=SITES, node_budget=1024)


@pytest.fixture()
def loaded_system(system):
    generator = TrafficGenerator(
        TrafficConfig(sites=tuple(SITES), flows_per_epoch=500), seed=3
    )
    for epoch in range(3):
        for site in SITES:
            system.ingest(site, generator.epoch(site, epoch))
        system.close_epoch((epoch + 1) * 60.0)
    return system


class TestWiring:
    def test_needs_sites(self):
        with pytest.raises(PlacementError):
            Flowstream(sites=[])

    def test_unknown_site(self, system):
        with pytest.raises(PlacementError):
            system.ingest("nowhere/router1", [])

    def test_stores_have_flowtree_aggregators(self, system):
        for site in SITES:
            store = system.store_for(site)
            assert store.aggregator(Flowstream.AGGREGATOR) is not None

    def test_hierarchy_covers_sites(self, system):
        from repro.core.summary import Location

        for site in SITES:
            assert Location(f"cloud/{site}") in system.hierarchy


class TestDataPath:
    def test_epochs_exported_to_db(self, loaded_system):
        stats = loaded_system.db.stats()
        assert stats["entries"] == len(SITES) * 3
        assert sorted(loaded_system.db.locations()) == sorted(SITES)

    def test_summary_reduction(self, loaded_system):
        # summaries must be much smaller than raw traffic
        assert loaded_system.stats.reduction_factor > 10
        assert loaded_system.stats.raw_records == 500 * 2 * 3

    def test_export_volume_accounted_on_wan(self, loaded_system):
        assert loaded_system.wan_summary_bytes() == (
            loaded_system.stats.exported_bytes
        )


class TestQueryPath:
    def test_total_consistency(self, loaded_system):
        merged = loaded_system.query("SELECT TOTAL FROM ALL")
        per_site = [
            loaded_system.query(f"SELECT TOTAL FROM ALL AT {site}")
            for site in SITES
        ]
        assert merged.scalar.bytes == sum(r.scalar.bytes for r in per_site)

    def test_topk_multi_site(self, loaded_system):
        result = loaded_system.query(
            "SELECT TOPK(10) FROM TIME(0, 180) "
            "AT region1/router1, region2/router1 BY bytes"
        )
        assert len(result.rows) == 10
        values = [row[2] for row in result.rows]
        assert values == sorted(values, reverse=True)

    def test_service_mix(self, loaded_system):
        result = loaded_system.query(
            "SELECT GROUPBY(dst_port, 16) FROM ALL BY bytes"
        )
        ports = [row[0] for row in result.rows]
        assert any("443" in p for p in ports)

    def test_merged_answers_match_exact_on_prefix(self, loaded_system):
        """The merged-tree answer for an aggregate prefix equals the sum
        over raw records (no compression loss at this scale)."""
        generator = TrafficGenerator(
            TrafficConfig(sites=tuple(SITES), flows_per_epoch=500), seed=3
        )
        expected = 0
        for epoch in range(3):
            for site in SITES:
                for record in generator.epoch(site, epoch):
                    if record.key.feature_value("src_ip") >> 24 == 23:
                        expected += record.bytes
        result = loaded_system.query(
            "SELECT QUERY FROM ALL WHERE src_ip = 23.0.0.0/8"
        )
        assert result.scalar.bytes == expected

    def test_diff_between_epochs(self, loaded_system):
        result = loaded_system.query(
            "SELECT TOTAL FROM TIME(60, 120) VS TIME(0, 60)"
        )
        assert result.scalar is not None

    def test_ddos_detectable_in_pure_flowql(self):
        """An analyst with nothing but FlowQL finds the attack victim:
        the epoch-over-epoch Diff grouped by destination host."""
        sites = ["region1/router1"]
        system = Flowstream(sites=sites, node_budget=8192)
        generator = TrafficGenerator(
            TrafficConfig(sites=tuple(sites), flows_per_epoch=800), seed=55
        )
        system.ingest(sites[0], generator.epoch(sites[0], 0))
        system.close_epoch(60.0)
        system.ingest(
            sites[0],
            generator.ddos_epoch(sites[0], 1, attack_flows=1200),
        )
        system.close_epoch(120.0)
        surge = system.query(
            "SELECT GROUPBY(dst_ip, 32) FROM TIME(60, 120) VS TIME(0, 60) "
            "BY bytes LIMIT 1"
        )
        victim_row = surge.rows[0]
        from repro.flows.features import format_ipv4

        victim = format_ipv4(
            generator.internal_prefix(sites[0]) | 1
        )
        assert victim in victim_row[0]
        # and the sources of the surge are one WHERE clause away
        sources = system.query(
            f"SELECT GROUPBY(src_ip, 8) FROM TIME(60, 120) "
            f"WHERE dst_ip = {victim} BY bytes LIMIT 3"
        )
        assert len(sources.rows) == 3


class TestStatsAPI:
    """The deprecation cycle is over: VolumeStats is the only stats API."""

    def test_flowstream_stats_alias_removed(self):
        import repro.flowstream.system as system_module

        with pytest.raises(AttributeError):
            system_module.FlowstreamStats

    def test_stats_is_volume_stats(self, system):
        from repro.runtime.stats import VolumeStats

        assert isinstance(system.stats, VolumeStats)

    def test_legacy_attribute_names_removed(self, system):
        for legacy in (
            "raw_bytes_ingested",
            "raw_records_ingested",
            "summary_bytes_exported",
            "router_summary_bytes",
        ):
            with pytest.raises(AttributeError):
                getattr(system.stats, legacy)

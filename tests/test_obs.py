"""The observability layer: metrics registry, tracer, exposition.

The obs subsystem is the telemetry half of the paper's Fig. 3 adaptive
cycle, under two contracts these tests pin: **zero behavioral
footprint** (instrumented and uninstrumented runs produce bit-identical
volume/WAN/export numbers) and **one source of truth** (the Prometheus
exposition is synced from ``VolumeStats``/fabric/cache counters at
collection time, so it can never drift from the numbers the rest of
the suite asserts on).
"""

import json

import pytest

from repro.errors import PlacementError
from repro.faults import FaultPlan, LinkOutage
from repro.obs import (
    NULL_SPAN,
    MetricsRegistry,
    Observability,
    Tracer,
    parse_prometheus,
    render_prometheus,
)
from repro.runtime.presets import network_4level_runtime
from repro.simulation.traffic import TrafficConfig, TrafficGenerator

ROUTER1 = "network1/region1/router1"


def build_runtime(observability=None):
    return network_4level_runtime(
        networks=1,
        regions_per_network=2,
        routers_per_region=1,
        retain_partitions=True,
        observability=observability,
    )


def drive(runtime, epochs=2, flows_per_epoch=80, seed=11,
          recovery_closes=8):
    sites = runtime.ingest_sites()
    generator = TrafficGenerator(
        TrafficConfig(sites=tuple(sites), flows_per_epoch=flows_per_epoch),
        seed=seed,
    )
    for epoch in range(epochs):
        for site in sites:
            runtime.ingest(site, generator.epoch(site, epoch))
        runtime.close_epoch((epoch + 1) * 60.0)
    closes = epochs
    while runtime.pending_exports() and closes < epochs + recovery_closes:
        closes += 1
        runtime.close_epoch(closes * 60.0)
    return runtime


class TestMetricsRegistry:
    def test_counter_only_goes_up(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help").labels()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(PlacementError):
            counter.inc(-1)

    def test_labeled_series_materialize_per_combination(self):
        registry = MetricsRegistry()
        family = registry.counter("c_total", "help", ("level",))
        family.labels(level="router").inc(5)
        family.labels(level="region").inc(7)
        assert family.labels(level="router").value == 5
        assert len(family.series()) == 2
        with pytest.raises(PlacementError):
            family.labels(wrong="router")

    def test_reregistration_idempotent_but_conflicts_rejected(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "help", ("a",))
        assert registry.counter("c_total", "help", ("a",)) is first
        with pytest.raises(PlacementError):
            registry.gauge("c_total", "help", ("a",))
        with pytest.raises(PlacementError):
            registry.counter("c_total", "help", ("b",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(PlacementError):
            registry.counter("bad name", "help")
        with pytest.raises(PlacementError):
            registry.counter("ok_total", "help", ("bad-label",))

    def test_histogram_cumulative_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "h_seconds", "help", buckets=(0.1, 1.0)
        ).labels()
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.cumulative_buckets() == [
            (0.1, 1), (1.0, 2), (float("inf"), 3)
        ]
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(5.55)

    def test_collectors_run_at_collection_time(self):
        registry = MetricsRegistry()
        source = {"value": 0}
        gauge = registry.gauge("g", "help").labels()
        registry.add_collector(lambda: gauge.set(source["value"]))
        source["value"] = 41
        registry.collect()
        assert gauge.value == 41

    def test_snapshot_is_json_safe(self):
        registry = MetricsRegistry()
        registry.histogram("h_seconds", "help").labels().observe(0.2)
        snapshot = registry.snapshot()
        text = json.dumps(snapshot)  # must not need allow_nan tricks
        buckets = snapshot["h_seconds"]["series"][0]["buckets"]
        assert buckets[-1]["le"] == "+Inf"
        assert "Infinity" not in text


class TestTracer:
    def test_span_trees_nest_and_finish(self):
        tracer = Tracer()
        with tracer.span("root", epoch=1):
            with tracer.span("child", site="a"):
                pass
            with tracer.span("child", site="b") as span:
                span.fail("link-down")
        root = tracer.last("root")
        assert [child.name for child in root.children] == ["child", "child"]
        failed = [s for s in root.find("child") if s.status == "error"]
        assert [s.error for s in failed] == ["link-down"]
        assert root.duration_s >= 0

    def test_exception_marks_span_failed_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("root"):
                raise ValueError("boom")
        root = tracer.last("root")
        assert root.status == "error"
        assert "boom" in root.error

    def test_disabled_tracer_hands_out_null_span(self):
        tracer = Tracer(enabled=False)
        with tracer.span("anything") as span:
            span.set_attr("k", "v")  # all no-ops
            span.fail("ignored")
        assert span is NULL_SPAN
        assert tracer.traces() == []

    def test_finished_roots_are_bounded(self):
        tracer = Tracer(max_traces=2)
        for index in range(5):
            with tracer.span("op", n=index):
                pass
        roots = tracer.traces("op")
        assert [root.attrs["n"] for root in roots] == [3, 4]

    def test_to_dict_and_render(self):
        tracer = Tracer()
        with tracer.span("root", site="a"):
            with tracer.span("child") as span:
                span.fail("drop")
        node = tracer.last("root").to_dict()
        assert node["children"][0]["error"] == "drop"
        rendered = tracer.last("root").render()
        assert "root" in rendered and "!drop" in rendered


class TestExposition:
    def test_round_trip_with_label_escaping(self):
        registry = MetricsRegistry()
        family = registry.counter("c_total", "help", ("path",))
        family.labels(path='we"ird\\label').inc(3)
        parsed = parse_prometheus(render_prometheus(registry))
        assert parsed[
            ("c_total", frozenset({("path", 'we"ird\\label')}))
        ] == 3

    def test_help_and_type_lines_present(self):
        registry = MetricsRegistry()
        registry.gauge("g", "live entries").labels().set(2)
        text = render_prometheus(registry)
        assert "# HELP g live entries" in text
        assert "# TYPE g gauge" in text
        assert "g 2" in text.splitlines()


class TestRuntimeInstrumentation:
    def test_exposition_in_lockstep_with_volume_stats(self):
        runtime = drive(build_runtime())
        runtime.query("SELECT TOTAL FROM ALL")
        parsed = parse_prometheus(
            render_prometheus(runtime.obs.registry)
        )

        def total(name):
            return sum(
                value for (n, _), value in parsed.items() if n == name
            )

        assert total("repro_raw_bytes_total") == runtime.stats.raw_bytes
        assert total("repro_raw_items_total") == runtime.stats.raw_records
        assert (
            total("repro_fabric_carried_bytes_total")
            == runtime.fabric.total_bytes()
        )
        assert (
            total("repro_flowdb_exported_bytes_total")
            == runtime.stats.exported_bytes
        )
        cache = runtime.planner.cache
        assert parsed[
            ("repro_query_cache_events_total", frozenset({("result", "hit")}))
        ] == cache.hits
        assert parsed[
            ("repro_query_cache_events_total", frozenset({("result", "miss")}))
        ] == cache.misses

    def test_latency_histograms_observe_rollups_and_queries(self):
        runtime = drive(build_runtime())
        runtime.query("SELECT TOTAL FROM ALL")
        runtime.query("SELECT TOTAL FROM ALL")  # cache hit
        parsed = parse_prometheus(
            render_prometheus(runtime.obs.registry)
        )
        rollups = sum(
            value
            for (name, _), value in parsed.items()
            if name == "repro_rollup_seconds_count"
        )
        # one observation per store per close:
        # (2 routers + 2 regions + 1 network) x 2 closes
        assert rollups == 10
        assert parsed[
            ("repro_query_seconds_count", frozenset({("route", "cloud")}))
        ] == 1
        assert parsed[
            ("repro_query_seconds_count", frozenset({("route", "cached")}))
        ] == 1

    def test_parked_and_recovered_round_trip(self):
        runtime = build_runtime()
        runtime.inject_faults(
            FaultPlan(outages=[LinkOutage(ROUTER1, 1, 2)])
        )
        drive(runtime)
        stats = runtime.stats
        assert stats.exports_parked >= 1
        assert stats.exports_recovered == stats.exports_parked
        parsed = parse_prometheus(
            render_prometheus(runtime.obs.registry)
        )
        parked = sum(
            value
            for (name, labels), value in parsed.items()
            if name == "repro_exports_total"
            and ("outcome", "parked") in labels
        )
        recovered = sum(
            value
            for (name, labels), value in parsed.items()
            if name == "repro_exports_total"
            and ("outcome", "recovered") in labels
        )
        assert parked == stats.exports_parked
        assert recovered == stats.exports_recovered

    def test_failed_attempt_spans_carry_transfer_error_reason(self):
        runtime = build_runtime()
        runtime.inject_faults(
            FaultPlan(outages=[LinkOutage(ROUTER1, 1, 2)])
        )
        drive(runtime, recovery_closes=0)
        failed = [
            span
            for root in runtime.obs.tracer.traces("close_epoch")
            for span in root.find("attempt")
            if span.status == "error"
        ]
        assert failed, "the outage must produce failed attempt spans"
        assert all(span.error == "outage" for span in failed)
        # the failed attempts sit under the parked forward of router1
        parked_forwards = [
            span
            for root in runtime.obs.tracer.traces("close_epoch")
            for span in root.find("forward")
            if span.attrs.get("outcome") == "parked"
        ]
        assert parked_forwards
        assert any(span.find("attempt") for span in parked_forwards)

    def test_redelivery_spans_record_recovery(self):
        runtime = build_runtime()
        runtime.inject_faults(
            FaultPlan(outages=[LinkOutage(ROUTER1, 1, 2)])
        )
        drive(runtime)
        redeliveries = [
            span
            for root in runtime.obs.tracer.traces("close_epoch")
            for span in root.find("redeliver")
        ]
        assert any(
            span.attrs.get("outcome") == "recovered"
            for span in redeliveries
        )

    def test_query_spans_carry_route_and_cache_verdict(self):
        runtime = drive(build_runtime())
        runtime.query("SELECT TOTAL FROM ALL")
        runtime.query("SELECT TOTAL FROM ALL")
        roots = runtime.obs.tracer.traces("query")
        assert [root.attrs["cache_hit"] for root in roots] == [False, True]
        assert roots[0].attrs["route"] == "cloud"
        drill = runtime.query(f"SELECT TOTAL FROM ALL AT {ROUTER1}")
        assert drill.plan.route == "federated"
        federated = runtime.obs.tracer.last("query")
        fetches = federated.find("fetch")
        assert fetches and all(
            "shipped_bytes" in span.attrs for span in fetches
        )

    def test_disabled_observability_identical_behavior(self):
        instrumented = drive(build_runtime())
        disabled = drive(build_runtime(Observability.disabled()))
        assert disabled.wan_bytes() == instrumented.wan_bytes()
        assert disabled.stats.raw_bytes == instrumented.stats.raw_bytes
        assert (
            disabled.stats.exported_bytes
            == instrumented.stats.exported_bytes
        )
        assert disabled.obs.tracer.traces() == []
        # the disabled registry has no collectors and stays empty
        assert disabled.obs.registry.collect() == []

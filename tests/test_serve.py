"""The networked serving plane: wire schema, gateway, admission, client.

The serving plane's contract is *indistinguishability*: a query POSTed
to a ``repro serve`` gateway must rebuild into the same typed
:class:`QueryOutcome` the in-process planner returns — including cache
provenance and honest degradation under faults — while the plane adds
the things a network front door owes its operators: per-client
admission control (429 + Retry-After), bounded node queues with
backpressure, deadline degradation to partial answers, and routing
tables invalidated by topology generation bumps.  These tests pin each
of those down, plus the versioned wire schema they all ride on.
"""

from __future__ import annotations

import http.client
import json
import time
import warnings
from concurrent.futures import ThreadPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.client import FlowQLClient
from repro.errors import (
    AdmissionError,
    FlowQLSyntaxError,
    ServeError,
    WireSchemaError,
)
from repro.faults import FaultPlan, LinkOutage
from repro.flowql.executor import FlowQLResult
from repro.flows.records import Score
from repro.query.plan import (
    ROUTE_CLOUD,
    ROUTE_FEDERATED,
    CacheInfo,
    Degradation,
    QueryOutcome,
    QueryPlan,
    SiteRead,
)
from repro.query.planner import FederatedQueryPlanner
from repro.runtime.presets import network_4level_runtime
from repro.serve import ServePlane, wire
from repro.serve.admission import AdmissionController, TokenBucket
from repro.serve.gateway import RoutingTable
from repro.simulation.traffic import TrafficConfig, TrafficGenerator

ROUTER1 = "network1/region1/router1"
EPOCH = 60.0


def loaded_runtime(
    networks=1, regions=2, routers=1, epochs=2, flows_per_epoch=120,
    seed=11,
):
    runtime = network_4level_runtime(
        networks=networks,
        regions_per_network=regions,
        routers_per_region=routers,
        retain_partitions=True,
    )
    sites = runtime.ingest_sites()
    generator = TrafficGenerator(
        TrafficConfig(sites=tuple(sites), flows_per_epoch=flows_per_epoch),
        seed=seed,
    )
    for epoch in range(epochs):
        for site in sites:
            runtime.ingest(site, generator.epoch(site, epoch))
        runtime.close_epoch((epoch + 1) * EPOCH)
    return runtime


# ---------------------------------------------------------------------------
# wire schema: round trips, versioning, typed errors


def make_outcome(degraded=False, cache_hit=False, scalar=True):
    result = FlowQLResult(
        operator="total" if scalar else "topk",
        rows=[] if scalar else [("flow-a", 3, 300, 1), ("flow-b", 1, 10, 1)],
        scalar=Score(packets=4, bytes=310, flows=2) if scalar else None,
    )
    plan = QueryPlan(
        route=ROUTE_FEDERATED,
        window=(0.0, 120.0),
        level="router",
        sites=[ROUTER1],
        reads=[
            SiteRead(
                site=ROUTER1, level="router",
                partitions=["p0", "p1"], shipped_bytes=512,
            )
        ],
        cache_hit=cache_hit,
        cache_key=("fp", 1, 2),
    )
    degradation = None
    if degraded:
        degradation = Degradation()
        degradation.note(
            ROUTER1, 60.0, "link down",
            attempted=["cloud/" + ROUTER1, "cloud"],
        )
    return QueryOutcome(
        result=result,
        plan=plan,
        degradation=degradation,
        cache=CacheInfo(hit=cache_hit, key=("fp", 1, 2)),
    )


class TestWireSchema:
    @pytest.mark.parametrize("degraded", [False, True])
    @pytest.mark.parametrize("cache_hit", [False, True])
    @pytest.mark.parametrize("scalar", [False, True])
    def test_outcome_round_trip_variants(self, degraded, cache_hit, scalar):
        outcome = make_outcome(degraded, cache_hit, scalar)
        # through real JSON, exactly like the HTTP hop
        payload = json.loads(json.dumps(wire.encode_outcome(outcome)))
        rebuilt = wire.decode_outcome(payload)
        assert rebuilt.to_wire() == outcome.to_wire()
        assert rebuilt.result.rows == outcome.result.rows
        assert rebuilt.scalar == outcome.scalar
        assert rebuilt.is_degraded == outcome.is_degraded
        assert rebuilt.cache.hit == cache_hit
        if degraded:
            assert rebuilt.degradation.attempted_paths == [
                "cloud/" + ROUTER1, "cloud",
            ]

    def test_version_mismatch_raises(self):
        payload = wire.encode_outcome(make_outcome())
        payload["wire_version"] = wire.WIRE_VERSION + 1
        with pytest.raises(WireSchemaError):
            wire.open_envelope(payload)

    def test_malformed_envelopes_raise(self):
        for bad in (None, [], "x", {}, {"wire_version": 1},
                    {"wire_version": 1, "kind": "nope", "body": {}},
                    {"wire_version": 1, "kind": "outcome", "body": 3}):
            with pytest.raises(WireSchemaError):
                wire.open_envelope(bad)

    def test_outcome_decoder_rejects_other_kinds(self):
        with pytest.raises(WireSchemaError):
            wire.decode_outcome(wire.encode_rejection("admission", 0.5))

    def test_error_round_trip_is_typed(self):
        payload = json.loads(json.dumps(
            wire.encode_error(
                FlowQLSyntaxError("bad operator"),
                attempted_paths=["cloud"],
            )
        ))
        kind, body = wire.open_envelope(payload)
        assert kind == wire.KIND_ERROR
        error = wire.decode_error(body)
        assert isinstance(error, FlowQLSyntaxError)
        assert "bad operator" in str(error)
        assert "cloud" in str(error)

    def test_unknown_error_type_degrades_to_serve_error(self):
        error = wire.decode_error({"type": "Surprise", "message": "m"})
        assert isinstance(error, ServeError)

    def test_rejection_round_trip(self):
        payload = json.loads(json.dumps(
            wire.encode_rejection("backpressure", 0.25)
        ))
        kind, body = wire.open_envelope(payload)
        rejection = wire.decode_rejection(body)
        assert isinstance(rejection, AdmissionError)
        assert rejection.reason == "backpressure"
        assert rejection.retry_after_s == 0.25


# the hypothesis sweep: every outcome shape the planner can emit
# survives encode -> JSON -> decode exactly

wire_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)),
    min_size=1, max_size=12,
)
scores = st.builds(
    Score,
    packets=st.integers(min_value=0, max_value=10**6),
    bytes=st.integers(min_value=0, max_value=10**9),
    flows=st.integers(min_value=0, max_value=10**4),
)
rows = st.lists(
    st.tuples(
        wire_text,
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=10**9),
        st.integers(min_value=0, max_value=10**4),
    ),
    max_size=6,
)
results = st.builds(
    FlowQLResult,
    operator=st.sampled_from(["total", "topk", "groupby", "hhh"]),
    rows=rows,
    scalar=st.one_of(st.none(), scores),
)
site_reads = st.builds(
    SiteRead,
    site=wire_text,
    level=st.sampled_from(["router", "region", "network"]),
    partitions=st.lists(wire_text, max_size=3),
    replica_partitions=st.lists(wire_text, max_size=2),
    shipped_bytes=st.integers(min_value=0, max_value=10**7),
)
windows = st.tuples(
    st.one_of(st.none(), st.floats(0, 1e6, allow_nan=False)),
    st.one_of(st.none(), st.floats(0, 1e6, allow_nan=False)),
)
cache_keys = st.one_of(
    st.none(), wire_text, st.integers(),
    st.tuples(wire_text, st.integers()),
)
plans = st.builds(
    QueryPlan,
    route=st.sampled_from([ROUTE_CLOUD, ROUTE_FEDERATED]),
    window=windows,
    level=st.one_of(st.none(), st.just("router")),
    sites=st.lists(wire_text, max_size=4),
    reads=st.lists(site_reads, max_size=3),
    cache_hit=st.booleans(),
    cache_key=cache_keys,
)
degradations = st.builds(
    Degradation,
    missing_sites=st.lists(wire_text, max_size=3, unique=True),
    stale_through=st.one_of(
        st.none(), st.floats(0, 1e6, allow_nan=False)
    ),
    reasons=st.lists(wire_text, max_size=3),
    attempted_paths=st.lists(wire_text, max_size=4, unique=True),
)
outcomes = st.builds(
    QueryOutcome,
    result=results,
    plan=plans,
    degradation=st.one_of(st.none(), degradations),
    cache=st.builds(CacheInfo, hit=st.booleans(), key=cache_keys),
)


class TestWireRoundTripProperty:
    @settings(max_examples=120, deadline=None)
    @given(outcome=outcomes)
    def test_encode_json_decode_is_identity(self, outcome):
        payload = json.loads(json.dumps(wire.encode_outcome(outcome)))
        rebuilt = wire.decode_outcome(payload)
        assert rebuilt.to_wire() == outcome.to_wire()
        # the typed surface survives, not just the dict form
        assert rebuilt.result.rows == outcome.result.rows
        assert rebuilt.result.columns == outcome.result.columns
        assert rebuilt.scalar == outcome.scalar
        assert rebuilt.plan.route == outcome.plan.route
        assert rebuilt.missing_sites == outcome.missing_sites
        assert rebuilt.is_degraded == outcome.is_degraded
        # ...and a second trip is exactly stable (idempotence)
        again = wire.decode_outcome(
            json.loads(json.dumps(wire.encode_outcome(rebuilt)))
        )
        assert again.to_wire() == rebuilt.to_wire()


# ---------------------------------------------------------------------------
# admission control units


class TestTokenBucket:
    def test_burst_then_starve(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=3.0, now=0.0)
        for _ in range(3):
            admitted, _ = bucket.try_acquire(0.0)
            assert admitted
        admitted, retry_after = bucket.try_acquire(0.0)
        assert not admitted
        assert retry_after == pytest.approx(0.1)

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=3.0, now=0.0)
        for _ in range(3):
            bucket.try_acquire(0.0)  # drain the burst
        admitted, _ = bucket.try_acquire(0.05)
        assert not admitted
        admitted, _ = bucket.try_acquire(0.20)
        assert admitted

    def test_controller_isolates_clients(self):
        clock = [0.0]
        controller = AdmissionController(
            rate_per_s=1.0, burst=1.0, clock=lambda: clock[0]
        )
        assert controller.admit("alice")[0]
        admitted, retry_after = controller.admit("alice")
        assert not admitted and retry_after > 0
        # bob has his own bucket: alice's burn does not starve him
        assert controller.admit("bob")[0]
        assert controller.admitted == 2
        assert controller.rejected == 1
        assert controller.clients() == 2


class TestAdmissionBoundedClients:
    """The bucket map must stay bounded under client-id churn (the
    unbounded ``_buckets`` growth bug)."""

    def test_million_client_churn_stays_bounded(self):
        clock = [0.0]
        controller = AdmissionController(
            rate_per_s=100.0, burst=10.0, max_clients=512,
            clock=lambda: clock[0],
        )
        for index in range(1_000_000):
            clock[0] += 0.001
            controller.admit(f"scraper-{index}")
        assert controller.clients() <= 512
        assert controller.evicted == 1_000_000 - controller.clients()

    def test_idle_eviction_is_lossless(self):
        """A bucket idle past one refill-to-burst interval holds
        exactly ``burst`` tokens again — evicting and re-creating it
        must not change any admission decision."""
        clock = [0.0]
        controller = AdmissionController(
            rate_per_s=1.0, burst=2.0, max_clients=1024,
            clock=lambda: clock[0],
        )
        assert controller.admit("alice")[0]
        assert controller.admit("alice")[0]  # burst drained
        assert not controller.admit("alice")[0]
        clock[0] = 10.0  # idle well past burst/rate = 2s
        controller.admit("bob")  # any admit sweeps the idle front
        assert controller.evicted == 1
        assert controller.clients() == 1
        # alice returns with the same budget a kept bucket would have
        # refilled to: the full burst, then starvation again
        assert controller.admit("alice")[0]
        assert controller.admit("alice")[0]
        admitted, retry_after = controller.admit("alice")
        assert not admitted and retry_after > 0

    def test_lru_cap_evicts_least_recently_admitted(self):
        clock = [0.0]
        controller = AdmissionController(
            rate_per_s=100.0, burst=10.0, max_clients=2,
            clock=lambda: clock[0],
        )
        controller.admit("a")
        controller.admit("b")
        controller.admit("a")  # refresh: a is now most recent
        controller.admit("c")  # cap: evicts b, the stale front
        assert set(controller._buckets) == {"a", "c"}
        assert controller.evicted == 1

    def test_rejected_probes_also_bounded(self):
        """Clients that only ever get 429s must not pin map entries
        either (rate 0 blocks everyone, ttl falls back to one hour)."""
        clock = [0.0]
        controller = AdmissionController(
            rate_per_s=0.0, burst=1.0, max_clients=64,
            clock=lambda: clock[0],
        )
        for index in range(1000):
            clock[0] += 1.0
            controller.admit(f"probe-{index}")
        assert controller.clients() <= 64


class TestRetryAfterHeader:
    """RFC 9110 Retry-After is integer delta-seconds: the header must
    be a ``ceil()``ed integer, never fractional, never zero (a 0 reads
    as 'retry immediately' — a retry storm invitation)."""

    @pytest.mark.parametrize(
        ("retry_after_s", "expected"),
        [
            (0.050, "1"),
            (0.0, "1"),
            (0.999, "1"),
            (1.0, "1"),
            (1.2, "2"),
            (59.01, "60"),
            (1000.0, "1000"),
        ],
    )
    def test_ceiled_integer_never_zero(self, retry_after_s, expected):
        header = wire.retry_after_header(retry_after_s)
        assert header == expected
        assert header.isdigit() and int(header) >= 1


class TestRoutingTable:
    def test_generation_bump_invalidates(self):
        table = RoutingTable()
        table.record("q1", 0, "cloud")
        assert table.lookup("q1", 0) == "cloud"
        assert table.hits == 1
        # a reconfig bumps the generation: every entry is stale
        assert table.lookup("q1", 1) is None
        assert table.invalidations == 1
        assert len(table) == 0
        table.record("q1", 1, "node")
        assert table.lookup("q1", 1) == "node"

    def test_same_generation_keeps_entries(self):
        table = RoutingTable()
        table.record("q1", 3, "cloud")
        table.record("q2", 3, "edge")
        assert table.lookup("q2", 3) == "edge"
        assert table.invalidations == 0
        assert len(table) == 2


# ---------------------------------------------------------------------------
# the served plane: HTTP answers are the in-process answers


@pytest.fixture(scope="module")
def served():
    """One loaded 4-level runtime behind a running serve plane."""
    runtime = loaded_runtime(regions=2, routers=1)
    with ServePlane(runtime) as plane:
        endpoint = plane.start_background()
        with FlowQLClient(endpoint=endpoint, client_id="pytest") as client:
            yield runtime, plane, client
    runtime.shutdown()


class TestServedAnswerIdentity:
    def test_cloud_query_identical(self, served):
        runtime, _plane, client = served
        text = "SELECT TOTAL FROM ALL"
        remote = client.query(text)
        local = runtime.query(text)
        assert remote.result.to_wire() == local.result.to_wire()
        assert remote.scalar == local.scalar
        assert remote.plan.route == ROUTE_CLOUD

    def test_federated_drilldown_identical(self, served):
        runtime, _plane, client = served
        text = f"SELECT TOPK(3) FROM ALL AT {ROUTER1} BY bytes"
        remote = client.query(text)
        local = runtime.query(text)
        assert remote.result.to_wire() == local.result.to_wire()
        assert remote.rows == local.rows
        assert remote.plan.route == ROUTE_FEDERATED

    def test_cache_provenance_crosses_the_wire(self, served):
        _runtime, _plane, client = served
        text = "SELECT GROUPBY(dst_port, 16) FROM ALL BY bytes LIMIT 5"
        first = client.query(text)
        second = client.query(text)
        assert second.result.to_wire() == first.result.to_wire()
        assert second.cache.hit
        assert second.plan.cache_hit

    def test_degraded_outcome_identical_under_outage(self, served):
        runtime, _plane, client = served
        text = "SELECT TOTAL FROM ALL AT network1/region1, network1/region2"
        runtime.inject_faults(
            FaultPlan(outages=[LinkOutage("network1/region1", 0, 10**9)])
        )
        try:
            remote = client.query(text)
            local = runtime.query(text)
        finally:
            runtime.inject_faults(None)
        assert remote.is_degraded and local.is_degraded
        assert remote.missing_sites == local.missing_sites
        assert remote.scalar == local.scalar
        assert (
            remote.degradation.attempted_paths
            == local.degradation.attempted_paths
        )
        assert remote.degradation.attempted_paths  # satellite: non-empty

    def test_syntax_error_is_typed_across_the_wire(self, served):
        _runtime, _plane, client = served
        with pytest.raises(FlowQLSyntaxError):
            client.query("SELECT NONSENSE FROM ALL")

    def test_health_census(self, served):
        _runtime, plane, client = served
        census = client.health()
        assert census["status"] == "ok"
        assert census["server_errors"] == 0
        assert set(census["nodes"]) == set(plane.nodes)
        assert census["requests_routed"] >= 4

    def test_drilldowns_route_to_edge_nodes(self, served):
        _runtime, plane, client = served
        client.query(f"SELECT TOTAL FROM ALL AT {ROUTER1}")
        assert plane.nodes[ROUTER1].requests_served >= 1


# ---------------------------------------------------------------------------
# admission, backpressure, timeouts against small live planes


@pytest.fixture()
def small_runtime():
    runtime = loaded_runtime(
        regions=1, routers=2, epochs=1, flows_per_epoch=80
    )
    yield runtime
    runtime.shutdown()


class TestAdmissionOverHTTP:
    def test_shed_load_raises_typed_admission_error(self, small_runtime):
        plane = ServePlane(
            small_runtime, admission_rate_per_s=0.001, admission_burst=2.0
        )
        with plane:
            endpoint = plane.start_background()
            with FlowQLClient(
                endpoint=endpoint, client_id="greedy"
            ) as client:
                assert client.query("SELECT TOTAL FROM ALL").scalar
                client.query("SELECT TOTAL FROM ALL")
                with pytest.raises(AdmissionError) as excinfo:
                    client.query("SELECT TOTAL FROM ALL")
            assert excinfo.value.reason == "admission"
            assert excinfo.value.retry_after_s > 0
            census = plane.census()
            assert census["admission"]["rejected"] >= 1
            assert census["server_errors"] == 0

    def test_429_carries_retry_after_header(self, small_runtime):
        plane = ServePlane(
            small_runtime, admission_rate_per_s=0.001, admission_burst=1.0
        )
        with plane:
            plane.start_background()
            connection = http.client.HTTPConnection(
                plane.gateway.host, plane.gateway.port, timeout=10
            )
            try:
                payload = json.dumps(
                    {"query": "SELECT TOTAL FROM ALL", "client_id": "c"}
                )
                headers = {"Content-Type": "application/json"}
                statuses = []
                for _ in range(2):
                    connection.request(
                        "POST", "/v1/query", body=payload, headers=headers
                    )
                    response = connection.getresponse()
                    body = json.loads(response.read())
                    statuses.append((response, body))
                response, body = statuses[1]
                assert response.status == 429
                header = response.headers["Retry-After"]
                assert header.isdigit()  # RFC 9110 delta-seconds
                assert int(header) >= 1
                kind, rejection = wire.open_envelope(body)
                assert kind == wire.KIND_REJECTED
                assert rejection["reason"] == "admission"
            finally:
                connection.close()

    def test_fractional_retry_rides_in_body_not_header(
        self, small_runtime
    ):
        """A sub-second retry hint must surface as an integer header
        (ceiled, never the RFC-invalid ``Retry-After: 0.050``) while
        the exact float stays in the rejection body."""
        plane = ServePlane(
            small_runtime, admission_rate_per_s=2.0, admission_burst=1.0
        )
        with plane:
            plane.start_background()
            connection = http.client.HTTPConnection(
                plane.gateway.host, plane.gateway.port, timeout=10
            )
            try:
                payload = json.dumps(
                    {"query": "SELECT TOTAL FROM ALL", "client_id": "f"}
                )
                headers = {"Content-Type": "application/json"}
                response = None
                for _ in range(2):
                    connection.request(
                        "POST", "/v1/query", body=payload, headers=headers
                    )
                    response = connection.getresponse()
                    body = json.loads(response.read())
                assert response.status == 429
                header = response.headers["Retry-After"]
                assert header == "1"  # ceil(<1s hint), not "0.4..."
                _, rejection = wire.open_envelope(body)
                exact = rejection["retry_after_s"]
                assert 0 < exact < 1  # the precise float, body only
            finally:
                connection.close()

    def test_admitted_clients_stay_correct_while_shedding(
        self, small_runtime
    ):
        """Load shedding must not corrupt admitted answers."""
        expected = small_runtime.query("SELECT TOTAL FROM ALL").scalar
        plane = ServePlane(
            small_runtime, admission_rate_per_s=0.001, admission_burst=1.0
        )
        with plane:
            endpoint = plane.start_background()
            answers, rejections = [], 0
            for index in range(6):
                with FlowQLClient(
                    endpoint=endpoint, client_id=f"c{index % 2}"
                ) as client:
                    try:
                        answers.append(
                            client.query("SELECT TOTAL FROM ALL").scalar
                        )
                    except AdmissionError:
                        rejections += 1
            assert rejections >= 4  # two bursts of one, four shed
            assert answers and all(
                answer == expected for answer in answers
            )


class TestBackpressure:
    def test_full_queue_rejects_with_retry_after(self, small_runtime):
        plane = ServePlane(
            small_runtime, queue_limit=1, admission_rate_per_s=10**6,
            admission_burst=10**6,
        )
        real_execute = plane.execute_on_node

        def slow_execute(label, query_text, trace_id):
            time.sleep(0.25)
            return real_execute(label, query_text, trace_id)

        plane.execute_on_node = slow_execute
        expected = small_runtime.query("SELECT TOTAL FROM ALL").scalar

        def one_client(index):
            with FlowQLClient(
                endpoint=plane.endpoint, client_id=f"bp{index}"
            ) as client:
                try:
                    return ("ok", client.query("SELECT TOTAL FROM ALL"))
                except AdmissionError as error:
                    return ("rejected", error)

        with plane:
            plane.start_background()
            with ThreadPoolExecutor(max_workers=8) as pool:
                outcomes = list(pool.map(one_client, range(8)))
        served_answers = [o for kind, o in outcomes if kind == "ok"]
        rejections = [o for kind, o in outcomes if kind == "rejected"]
        assert rejections, "a 1-deep queue under 8 clients must shed"
        assert all(r.reason == "backpressure" for r in rejections)
        assert all(r.retry_after_s > 0 for r in rejections)
        assert served_answers, "admitted requests still complete"
        assert all(o.scalar == expected for o in served_answers)
        assert plane.census()["server_errors"] == 0

    def test_backpressure_429_header_is_integer(self, small_runtime):
        """The node's 429 (relayed by the gateway) must carry an
        RFC 9110 integer Retry-After, like the gateway's own."""
        plane = ServePlane(
            small_runtime, queue_limit=1, admission_rate_per_s=10**6,
            admission_burst=10**6,
        )
        real_execute = plane.execute_on_node

        def slow_execute(label, query_text, trace_id):
            time.sleep(0.25)
            return real_execute(label, query_text, trace_id)

        plane.execute_on_node = slow_execute

        def one_raw_request(index):
            connection = http.client.HTTPConnection(
                plane.gateway.host, plane.gateway.port, timeout=10
            )
            try:
                connection.request(
                    "POST",
                    "/v1/query",
                    body=json.dumps(
                        {
                            "query": "SELECT TOTAL FROM ALL",
                            "client_id": f"raw{index}",
                        }
                    ),
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                response.read()
                return response.status, response.headers.get("Retry-After")
            finally:
                connection.close()

        with plane:
            plane.start_background()
            with ThreadPoolExecutor(max_workers=8) as pool:
                results = list(pool.map(one_raw_request, range(8)))
        rejected = [h for status, h in results if status == 429]
        assert rejected, "a 1-deep queue under 8 clients must shed"
        for header in rejected:
            assert header is not None
            assert header.isdigit() and int(header) >= 1


class TestDeadlineDegradation:
    def test_timeout_degrades_to_partial_outcome(self, small_runtime):
        plane = ServePlane(small_runtime, timeout_s=0.05)
        real_execute = plane.execute_on_node

        def slow_execute(label, query_text, trace_id):
            time.sleep(0.4)
            return real_execute(label, query_text, trace_id)

        plane.execute_on_node = slow_execute
        with plane:
            endpoint = plane.start_background()
            with FlowQLClient(endpoint=endpoint, client_id="t") as client:
                outcome = client.query("SELECT TOTAL FROM ALL")
        assert outcome.is_degraded
        assert outcome.degradation.attempted_paths
        assert any(
            "timeout" in reason for reason in outcome.degradation.reasons
        )
        assert outcome.scalar == Score()  # honest empty, not a lie
        assert plane.nodes[plane.root_label].timeouts >= 1


# ---------------------------------------------------------------------------
# the client facade and the deprecation shim


class TestFlowQLClientFacade:
    def test_exactly_one_backend_required(self):
        with pytest.raises(ServeError):
            FlowQLClient()
        with pytest.raises(ServeError):
            FlowQLClient(runtime=object(), endpoint="http://x:1")

    def test_in_process_backend_matches_runtime(self, small_runtime):
        client = FlowQLClient(runtime=small_runtime)
        outcome = client.query("SELECT TOTAL FROM ALL")
        assert outcome.scalar == small_runtime.query(
            "SELECT TOTAL FROM ALL"
        ).scalar

    def test_subscribe_returns_live_handle(self, small_runtime):
        client = FlowQLClient(runtime=small_runtime)
        handle = client.subscribe("SUBSCRIBE SELECT TOTAL FROM ALL")
        first = handle.latest()
        assert first is not None and first.mode == "init"
        assert first.result.scalar == small_runtime.query(
            "SELECT TOTAL FROM ALL"
        ).scalar
        handle.cancel()
        assert handle.poll() == []

    def test_now_is_an_in_process_knob(self):
        client = FlowQLClient(endpoint="http://127.0.0.1:1")
        with pytest.raises(ServeError):
            client.query("SELECT TOTAL FROM ALL", now=1.0)

    def test_unreachable_endpoint_is_a_serve_error(self):
        client = FlowQLClient(endpoint="http://127.0.0.1:9")
        with pytest.raises(ServeError):
            client.query("SELECT TOTAL FROM ALL")

    def test_bad_endpoint_url_rejected(self):
        with pytest.raises(ServeError):
            FlowQLClient(endpoint="ftp://host:1")


class TestPlannerQueryShim:
    def test_direct_planner_query_warns_once(self, small_runtime):
        planner = small_runtime.planner
        FederatedQueryPlanner._query_shim_warned = False
        try:
            with pytest.warns(DeprecationWarning, match="FlowQLClient"):
                outcome = planner.query("SELECT TOTAL FROM ALL")
            assert outcome.scalar is not None
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                planner.query("SELECT TOTAL FROM ALL")
            assert not [
                w for w in caught
                if issubclass(w.category, DeprecationWarning)
            ]
        finally:
            FederatedQueryPlanner._query_shim_warned = False

    def test_shim_answers_match_execute(self, small_runtime):
        planner = small_runtime.planner
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            shimmed = planner.query("SELECT TOTAL FROM ALL")
        assert shimmed.scalar == planner.execute(
            "SELECT TOTAL FROM ALL"
        ).scalar


class TestAttemptedPathsInProcess:
    def test_degraded_outcome_names_attempted_nodes(self):
        runtime = loaded_runtime(regions=2, routers=1)
        try:
            runtime.inject_faults(
                FaultPlan(outages=[LinkOutage(ROUTER1, 0, 10**9)])
            )
            outcome = runtime.query(
                f"SELECT TOTAL FROM ALL AT {ROUTER1}"
            )
            assert outcome.is_degraded
            attempted = outcome.degradation.attempted_paths
            assert attempted, "degraded outcomes must name attempts"
            assert any("router1" in path for path in attempted)
        finally:
            runtime.shutdown()

"""Tests for the predictor-driven and budget-constrained policies."""

import pytest

from repro.errors import ReplicationError
from repro.replication.engine import (
    offline_optimal_cost,
    simulate_policy_on_trace,
)
from repro.replication.ski_rental import (
    AlwaysReplicate,
    BreakEvenPolicy,
    ConstrainedSkiRental,
    PartitionAccessState,
    PredictorPolicy,
)
from repro.simulation.querytrace import QueryTraceConfig, QueryTraceGenerator


def state(partition_bytes=1000, shipped=0):
    s = PartitionAccessState("p", partition_bytes=partition_bytes)
    s.shipped_bytes = shipped
    return s


class TestPredictorPolicy:
    def test_falls_back_to_break_even(self):
        policy = PredictorPolicy(min_observations=5)
        assert not policy.should_replicate(state(shipped=999))
        assert policy.should_replicate(state(shipped=1000))

    def test_buys_when_expected_rent_exceeds_price(self):
        policy = PredictorPolicy(min_observations=3)
        for _ in range(20):
            policy.observe_completed(50_000)  # huge demands
        # expected remaining ~49k exceeds the 10k price long before the
        # break-even point
        assert policy.should_replicate(
            state(partition_bytes=10_000, shipped=1000)
        )

    def test_never_buys_for_tiny_demands(self):
        policy = PredictorPolicy(min_observations=3)
        for _ in range(20):
            policy.observe_completed(100)
        assert not policy.should_replicate(state(shipped=900))

    def test_expected_remaining(self):
        policy = PredictorPolicy(min_observations=1)
        for demand in (100, 200, 300):
            policy.observe_completed(demand)
        assert policy.expected_remaining(150) == pytest.approx(100.0)
        assert policy.expected_remaining(500) == 0.0

    def test_competitive_on_trace(self):
        config = QueryTraceConfig(
            partitions=300,
            partition_bytes=5_000_000,
            mean_result_bytes=1_000_000,
        )
        trace = QueryTraceGenerator(config, seed=8).trace()
        optimal = offline_optimal_cost(trace, config.partition_bytes)
        predictor = simulate_policy_on_trace(
            trace, PredictorPolicy(), config.partition_bytes
        )
        break_even = simulate_policy_on_trace(
            trace, BreakEvenPolicy(), config.partition_bytes
        )
        # the backstop keeps it near break-even; predictions can only
        # trigger earlier buys
        assert predictor.replications >= break_even.replications
        assert predictor.competitive_ratio(optimal) < 2.1


class TestConstrainedSkiRental:
    def test_respects_budget(self):
        inner = AlwaysReplicate()
        policy = ConstrainedSkiRental(inner, budget_bytes=2500)
        decisions = [
            policy.should_replicate(state(partition_bytes=1000))
            for _ in range(5)
        ]
        assert decisions == [True, True, False, False, False]
        assert policy.spent_bytes == 2000
        assert policy.refused == 3

    def test_zero_budget_never_buys(self):
        policy = ConstrainedSkiRental(AlwaysReplicate(), budget_bytes=0)
        assert not policy.should_replicate(state())

    def test_negative_budget_rejected(self):
        with pytest.raises(ReplicationError):
            ConstrainedSkiRental(AlwaysReplicate(), budget_bytes=-1)

    def test_inner_decision_respected(self):
        policy = ConstrainedSkiRental(BreakEvenPolicy(), budget_bytes=10**9)
        assert not policy.should_replicate(state(shipped=10))
        assert policy.spent_bytes == 0

    def test_observe_forwarded(self):
        from repro.replication.ski_rental import DistributionAwarePolicy

        inner = DistributionAwarePolicy()
        policy = ConstrainedSkiRental(inner, budget_bytes=10**9)
        policy.observe_completed(1234)
        assert inner._history == [1234]

    def test_on_trace_cost_between_never_and_unconstrained(self):
        config = QueryTraceConfig(
            partitions=200,
            partition_bytes=5_000_000,
            mean_result_bytes=1_000_000,
        )
        trace = QueryTraceGenerator(config, seed=9).trace()
        unconstrained = simulate_policy_on_trace(
            trace, BreakEvenPolicy(), config.partition_bytes
        )
        constrained = simulate_policy_on_trace(
            trace,
            ConstrainedSkiRental(
                BreakEvenPolicy(),
                budget_bytes=5 * config.partition_bytes,
            ),
            config.partition_bytes,
        )
        # the constrained run buys at most 5 replicas
        assert constrained.replications <= 5
        assert constrained.replication_bytes <= 5 * config.partition_bytes
        # spending less on replicas means shipping more
        assert constrained.shipped_bytes >= unconstrained.shipped_bytes


class TestFlowQLDrivenReplication:
    """End-to-end Fig. 6: real query traffic — not a synthetic trace —
    drives the adaptive replication cycle through the planner."""

    def _loaded_runtime(self):
        from repro.replication.engine import AdaptiveReplicationEngine
        from repro.runtime.presets import network_4level_runtime
        from repro.simulation.traffic import TrafficConfig, TrafficGenerator

        runtime = network_4level_runtime(
            networks=1, regions_per_network=1, routers_per_region=2,
            retain_partitions=True,
        )
        engine = AdaptiveReplicationEngine(BreakEvenPolicy())
        runtime.manager.enable_adaptive_replication(engine)
        runtime.planner.cache = None  # isolate replication from caching
        sites = runtime.ingest_sites()
        generator = TrafficGenerator(
            TrafficConfig(sites=tuple(sites), flows_per_epoch=150), seed=13
        )
        for epoch in range(2):
            for site in sites:
                runtime.ingest(site, generator.epoch(site, epoch))
            runtime.close_epoch((epoch + 1) * 60.0)
        return runtime, engine

    def test_repeated_flowql_triggers_replicate_partition(self):
        """A partition held only below the export tier gets bought by
        the ski-rental engine from live planner access records alone."""
        runtime, engine = self._loaded_runtime()
        site = runtime.ingest_sites()[0]
        text = f"SELECT TOTAL FROM ALL AT {site}"
        queries_until_buy = 0
        for _ in range(8):
            runtime.query(text)
            queries_until_buy += 1
            if engine.outcomes:
                break
        assert engine.outcomes, "FlowQL traffic never triggered replication"
        assert queries_until_buy >= 2  # ski rental rents before buying
        # the bought replicas landed in the planner's root-side store
        replica_store = runtime.planner.replica_store
        assert len(replica_store.replicas.all()) >= 1
        store = runtime.store_for(site)
        replicated = {outcome.partition_id for outcome in engine.outcomes}
        assert replicated <= {
            p.partition_id for p in store.catalog.all()
        }

    def test_replica_serves_later_queries_without_wan(self):
        runtime, engine = self._loaded_runtime()
        site = runtime.ingest_sites()[0]
        text = f"SELECT TOTAL FROM ALL AT {site}"
        baseline = runtime.query(text)
        while not (
            runtime.planner.last_plan.reads
            and runtime.planner.last_plan.reads[0].served_locally
        ):
            runtime.query(text)
        moved = runtime.total_network_bytes()
        answer = runtime.query(text)
        assert runtime.total_network_bytes() == moved  # zero WAN bytes
        assert answer.scalar == baseline.scalar  # replica is exact

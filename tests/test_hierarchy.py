"""Tests for hierarchy topologies and the network fabric."""

import pytest

from repro.core.summary import Location
from repro.errors import PlacementError
from repro.hierarchy.network import NetworkFabric
from repro.hierarchy.topology import (
    LINE_DEADLINE,
    MACHINE_DEADLINE,
    network_monitoring_hierarchy,
    smart_factory_hierarchy,
)


@pytest.fixture()
def factory_hierarchy():
    return smart_factory_hierarchy(
        factories=2, lines_per_factory=2, machines_per_line=3
    )


class TestTopology:
    def test_factory_structure(self, factory_hierarchy):
        assert len(factory_hierarchy.leaves()) == 2 * 2 * 3
        levels = [level.name for level in factory_hierarchy.levels()]
        assert levels == ["cloud", "factory", "line", "machine"]

    def test_network_structure(self):
        hierarchy = network_monitoring_hierarchy(
            regions=3, routers_per_region=2
        )
        assert len(hierarchy.nodes_at_level("router")) == 6
        assert len(hierarchy.nodes_at_level("region")) == 3

    def test_deadlines_match_figure_1(self, factory_hierarchy):
        machine = factory_hierarchy.nodes_at_level("machine")[0]
        line = factory_hierarchy.nodes_at_level("line")[0]
        assert machine.level.deadline_seconds == MACHINE_DEADLINE == 1.0
        assert line.level.deadline_seconds == LINE_DEADLINE == 60.0

    def test_node_lookup(self, factory_hierarchy):
        loc = Location("hq/factory1/line1/machine1")
        node = factory_hierarchy.node(loc)
        assert node.location == loc
        assert loc in factory_hierarchy
        with pytest.raises(PlacementError):
            factory_hierarchy.node(Location("hq/nonexistent"))

    def test_ancestors(self, factory_hierarchy):
        node = factory_hierarchy.node(Location("hq/factory1/line1/machine1"))
        paths = [a.location.path for a in node.ancestors()]
        assert paths == ["hq/factory1/line1", "hq/factory1", "hq"]

    def test_path_up(self, factory_hierarchy):
        path = factory_hierarchy.path_between(
            Location("hq/factory1/line1/machine1"), Location("hq")
        )
        assert len(path) == 4

    def test_path_across(self, factory_hierarchy):
        path = factory_hierarchy.path_between(
            Location("hq/factory1/line1/machine1"),
            Location("hq/factory2/line2/machine3"),
        )
        # up 3 to hq, down 3: 7 nodes
        assert len(path) == 7
        assert path[3].location == Location("hq")

    def test_path_within_line(self, factory_hierarchy):
        path = factory_hierarchy.path_between(
            Location("hq/factory1/line1/machine1"),
            Location("hq/factory1/line1/machine2"),
        )
        assert len(path) == 3
        assert path[1].location == Location("hq/factory1/line1")

    def test_path_to_self(self, factory_hierarchy):
        loc = Location("hq/factory1")
        path = factory_hierarchy.path_between(loc, loc)
        assert [n.location for n in path] == [loc]


class TestFabric:
    def test_transfer_accounting(self, factory_hierarchy):
        fabric = NetworkFabric(factory_hierarchy)
        record = fabric.transfer(
            Location("hq/factory1/line1/machine1"), Location("hq"), 10**6
        )
        assert record.hops == 3
        assert record.size_bytes == 10**6
        assert fabric.total_bytes() == 3 * 10**6  # charged per hop
        assert fabric.wan_bytes() == 10**6  # only the root link

    def test_duration_includes_serialization(self, factory_hierarchy):
        fabric = NetworkFabric(factory_hierarchy)
        small = fabric.transfer(
            Location("hq/factory1/line1"), Location("hq/factory1"), 1_000
        )
        large = fabric.transfer(
            Location("hq/factory1/line1"), Location("hq/factory1"), 10**8
        )
        assert large.duration > small.duration

    def test_wan_slower_than_local(self, factory_hierarchy):
        fabric = NetworkFabric(factory_hierarchy)
        local = fabric.transfer(
            Location("hq/factory1/line1/machine1"),
            Location("hq/factory1/line1"),
            10**6,
        )
        wan = fabric.transfer(
            Location("hq/factory1"), Location("hq"), 10**6
        )
        assert wan.duration > local.duration

    def test_zero_hop_transfer_free(self, factory_hierarchy):
        fabric = NetworkFabric(factory_hierarchy)
        record = fabric.transfer(Location("hq"), Location("hq"), 10**6)
        assert record.hops == 0
        assert record.duration == 0.0
        assert fabric.total_bytes() == 0

    def test_link_between_validates(self, factory_hierarchy):
        fabric = NetworkFabric(factory_hierarchy)
        link = fabric.link_between(
            Location("hq"), Location("hq/factory1")
        )
        assert link is fabric.link_between(
            Location("hq/factory1"), Location("hq")
        )
        with pytest.raises(PlacementError):
            fabric.link_between(
                Location("hq"), Location("hq/factory1/line1")
            )

    def test_reset_accounting(self, factory_hierarchy):
        fabric = NetworkFabric(factory_hierarchy)
        fabric.transfer(Location("hq/factory1"), Location("hq"), 500)
        fabric.reset_accounting()
        assert fabric.total_bytes() == 0
        assert fabric.transfers == []

    def test_bandwidth_override(self, factory_hierarchy):
        fast = NetworkFabric(
            factory_hierarchy, bandwidth_by_level={"cloud": 1e12}
        )
        slow = NetworkFabric(
            factory_hierarchy, bandwidth_by_level={"cloud": 1e6}
        )
        fast_t = fast.transfer(Location("hq/factory1"), Location("hq"), 10**7)
        slow_t = slow.transfer(Location("hq/factory1"), Location("hq"), 10**7)
        assert slow_t.duration > fast_t.duration

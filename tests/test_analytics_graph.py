"""Tests for graph analysis over flow summaries."""

import pytest

from repro.analytics.graph import (
    communication_graph,
    demand_weighted_link_load,
    hierarchy_choke_points,
    top_talkers,
    traffic_communities,
)
from repro.flows.records import Score
from repro.flows.tree import Flowtree
from repro.hierarchy.network import NetworkFabric
from repro.hierarchy.topology import smart_factory_hierarchy


@pytest.fixture()
def tree(policy, make_key):
    tree = Flowtree(policy, node_budget=None)
    # cluster 1: 10/8 <-> 20/8, heavy
    tree.add(
        make_key(src_ip="10.0.0.1", dst_ip="20.0.0.1"), Score(1, 5000, 1)
    )
    tree.add(
        make_key(src_ip="10.0.0.2", dst_ip="20.0.0.9", src_port=2),
        Score(1, 3000, 1),
    )
    # cluster 2: 30/8 <-> 40/8, light
    tree.add(
        make_key(src_ip="30.0.0.1", dst_ip="40.0.0.1"), Score(1, 100, 1)
    )
    return tree


class TestCommunicationGraph:
    def test_edges_aggregate_prefix_pairs(self, tree):
        graph = communication_graph(tree, prefix_level=8)
        assert graph.has_edge("10.0.0.0/8", "20.0.0.0/8")
        assert graph["10.0.0.0/8"]["20.0.0.0/8"]["weight"] == 8000
        assert graph["30.0.0.0/8"]["40.0.0.0/8"]["weight"] == 100

    def test_min_edge_weight_filters(self, tree):
        graph = communication_graph(tree, prefix_level=8,
                                    min_edge_weight=1000)
        assert graph.has_edge("10.0.0.0/8", "20.0.0.0/8")
        assert not graph.has_edge("30.0.0.0/8", "40.0.0.0/8")

    def test_works_on_merged_trees(self, tree, policy, make_key):
        other = Flowtree(policy, node_budget=None)
        other.add(
            make_key(src_ip="10.9.9.9", dst_ip="20.9.9.9", src_port=7),
            Score(1, 2000, 1),
        )
        merged = Flowtree.merged(tree, other)
        graph = communication_graph(merged, prefix_level=8)
        assert graph["10.0.0.0/8"]["20.0.0.0/8"]["weight"] == 10000


class TestTopTalkers:
    def test_ranked_by_weighted_degree(self, tree):
        graph = communication_graph(tree, prefix_level=8)
        talkers = top_talkers(graph, k=2)
        names = [name for name, _ in talkers]
        assert set(names) == {"10.0.0.0/8", "20.0.0.0/8"}
        assert talkers[0][1] == 8000

    def test_k_bounds(self, tree):
        graph = communication_graph(tree, prefix_level=8)
        assert len(top_talkers(graph, k=100)) == graph.number_of_nodes()


class TestCommunities:
    def test_two_clusters(self, tree):
        graph = communication_graph(tree, prefix_level=8)
        communities = traffic_communities(graph)
        assert len(communities) == 2
        assert ["10.0.0.0/8", "20.0.0.0/8"] in communities
        assert ["30.0.0.0/8", "40.0.0.0/8"] in communities

    def test_threshold_splits(self, tree):
        graph = communication_graph(tree, prefix_level=8)
        communities = traffic_communities(graph, min_edge_weight=1000)
        assert ["10.0.0.0/8", "20.0.0.0/8"] in communities
        assert len(communities) == 1  # the light pair fell apart


class TestHierarchyGraphs:
    def test_choke_points_surface_wan(self):
        hierarchy = smart_factory_hierarchy(factories=2)
        fabric = NetworkFabric(hierarchy)
        choke = hierarchy_choke_points(fabric, k=2)
        top_edges = {frozenset(edge) for edge, _ in choke}
        # the root's links (the slow WAN) must rank highest
        assert any("hq" in edge for edge in top_edges for edge in edge)
        assert choke[0][1] >= choke[1][1]

    def test_demand_projection(self):
        hierarchy = smart_factory_hierarchy(factories=2)
        fabric = NetworkFabric(hierarchy)
        loads = demand_weighted_link_load(
            fabric,
            {"hq/factory1/line1": 100.0, "hq/factory2/line1": 50.0},
        )
        assert loads[("hq", "hq/factory1")] == 100.0
        assert loads[("hq", "hq/factory2")] == 50.0
        assert loads[("hq/factory1", "hq/factory1/line1")] == 100.0

    def test_unknown_sites_ignored(self):
        hierarchy = smart_factory_hierarchy(factories=1)
        fabric = NetworkFabric(hierarchy)
        loads = demand_weighted_link_load(fabric, {"nowhere/x": 10.0})
        assert loads == {}

"""Unit and property tests for Count-Min sketches and the reservoir."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.primitive import AdaptationFeedback, QueryRequest
from repro.core.reservoir import ReservoirPrimitive, ReservoirSample
from repro.core.sketches import CountMinPrimitive, CountMinSketch
from repro.core.summary import Location
from repro.errors import GranularityError, SchemaMismatchError

LOC = Location("net/region2")


class TestCountMinSketch:
    def test_exact_for_sparse_input(self):
        sketch = CountMinSketch(width=1024, depth=4)
        sketch.add("a", 5)
        sketch.add("b", 3)
        assert sketch.estimate("a") == 5
        assert sketch.estimate("b") == 3

    def test_never_underestimates(self):
        rng = random.Random(0)
        sketch = CountMinSketch(width=64, depth=4)
        truth = {}
        for _ in range(3000):
            item = rng.randrange(500)
            truth[item] = truth.get(item, 0) + 1
            sketch.add(item)
        for item, count in truth.items():
            assert sketch.estimate(item) >= count

    def test_from_error_dimensions(self):
        sketch = CountMinSketch.from_error(eps=0.01, delta=0.01)
        assert sketch.width >= 272
        assert sketch.depth >= 4

    def test_from_error_validation(self):
        with pytest.raises(GranularityError):
            CountMinSketch.from_error(eps=0.0, delta=0.5)

    def test_merge(self):
        a = CountMinSketch(width=128, depth=3, seed=9)
        b = CountMinSketch(width=128, depth=3, seed=9)
        a.add("x", 10)
        b.add("x", 5)
        a.merge(b)
        assert a.estimate("x") >= 15
        assert a.total == 15

    def test_merge_shape_mismatch(self):
        a = CountMinSketch(width=128, depth=3, seed=9)
        b = CountMinSketch(width=64, depth=3, seed=9)
        with pytest.raises(SchemaMismatchError):
            a.merge(b)
        c = CountMinSketch(width=128, depth=3, seed=8)
        with pytest.raises(SchemaMismatchError):
            a.merge(c)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            CountMinSketch(8, 2).add("x", -1)


@settings(max_examples=50, deadline=None)
@given(
    items=st.lists(st.integers(min_value=0, max_value=100), min_size=1,
                   max_size=300)
)
def test_count_min_one_sided_error_property(items):
    sketch = CountMinSketch(width=32, depth=4, seed=1)
    truth = {}
    for item in items:
        truth[item] = truth.get(item, 0) + 1
        sketch.add(item)
    for item, count in truth.items():
        assert sketch.estimate(item) >= count


class TestCountMinPrimitive:
    def test_query(self):
        primitive = CountMinPrimitive(LOC, width=256, depth=3)
        primitive.ingest("k", 0.0)
        primitive.ingest("k", 1.0)
        assert primitive.query(QueryRequest("count", {"item": "k"})) >= 2
        assert primitive.query(QueryRequest("total", {})) == 2

    def test_granularity_applies_next_epoch(self):
        primitive = CountMinPrimitive(LOC, width=256, depth=3)
        primitive.ingest("k", 0.0)
        primitive.set_granularity(64)
        assert primitive.sketch.width == 256  # unchanged mid-epoch
        primitive.reset_epoch()
        assert primitive.sketch.width == 64

    def test_adapt_under_pressure(self):
        primitive = CountMinPrimitive(LOC, width=256, depth=3)
        primitive.adapt(AdaptationFeedback(storage_pressure=0.8))
        primitive.reset_epoch()
        assert primitive.sketch.width == 128

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            CountMinPrimitive(LOC).query(QueryRequest("nope", {}))


class TestReservoirSample:
    def test_keeps_all_under_capacity(self):
        reservoir = ReservoirSample(capacity=10, seed=1)
        for i in range(5):
            reservoir.offer(i)
        assert sorted(reservoir.items) == [0, 1, 2, 3, 4]
        assert reservoir.seen == 5

    def test_bounded_at_capacity(self):
        reservoir = ReservoirSample(capacity=10, seed=1)
        for i in range(1000):
            reservoir.offer(i)
        assert len(reservoir.items) == 10
        assert reservoir.seen == 1000

    def test_uniformity_rough(self):
        """Every stream position should be roughly equally represented."""
        hits = [0] * 10
        for seed in range(300):
            reservoir = ReservoirSample(capacity=3, seed=seed)
            for i in range(10):
                reservoir.offer(i)
            for item in reservoir.items:
                hits[item] += 1
        expected = 300 * 3 / 10
        assert all(expected * 0.5 < h < expected * 1.5 for h in hits)

    def test_resize(self):
        reservoir = ReservoirSample(capacity=10, seed=1)
        for i in range(100):
            reservoir.offer(i)
        reservoir.resize(4)
        assert len(reservoir.items) == 4
        with pytest.raises(GranularityError):
            reservoir.resize(0)

    def test_merge_combines_seen(self):
        a = ReservoirSample(capacity=8, seed=1)
        b = ReservoirSample(capacity=8, seed=2)
        for i in range(50):
            a.offer(("a", i))
            b.offer(("b", i))
        a.merge(b)
        assert a.seen == 100
        assert len(a.items) == 8


class TestReservoirPrimitive:
    def test_query_operators(self):
        primitive = ReservoirPrimitive(LOC, capacity=64, seed=1)
        for i in range(32):
            primitive.ingest(i, float(i))
        assert primitive.query(QueryRequest("seen", {})) == 32
        assert len(primitive.query(QueryRequest("sample", {}))) == 32
        fraction = primitive.query(
            QueryRequest(
                "estimate_fraction", {"predicate": lambda x: x % 2 == 0}
            )
        )
        assert fraction == pytest.approx(0.5)

    def test_estimate_fraction_empty(self):
        primitive = ReservoirPrimitive(LOC, capacity=4)
        assert primitive.query(
            QueryRequest("estimate_fraction", {"predicate": bool})
        ) == 0.0

    def test_adapt_shrinks(self):
        primitive = ReservoirPrimitive(LOC, capacity=64)
        primitive.adapt(AdaptationFeedback(storage_pressure=0.9))
        assert primitive.reservoir.capacity == 32

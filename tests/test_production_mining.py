"""Tests for production-event simulation and event-log process mining."""

import pytest

from repro.analytics.eventlog import (
    analyze_event_log,
    efficiency_gain_estimate,
)
from repro.core.summary import Location
from repro.simulation.factory import Machine
from repro.simulation.production import ProductionLineSimulator

LINE = Location("hq/factory1/line1")


def make_machines(count=3, wear_rates=None):
    rates = wear_rates or [0.001] * count
    return [
        Machine(
            machine_id=f"m{i + 1}",
            location=LINE.child(f"machine{i + 1}"),
            wear_rate_per_hour=rates[i],
            seed=i,
        )
        for i in range(count)
    ]


class TestProductionSimulator:
    def test_items_traverse_all_machines(self):
        machines = make_machines(3)
        simulator = ProductionLineSimulator(
            machines, base_processing_seconds=10.0, seed=1
        )
        events = simulator.run(until=3600.0, interarrival_seconds=60.0)
        assert simulator.completed_items > 10
        by_item = {}
        for event in events:
            by_item.setdefault(event.item_id, []).append(event)
        for item_events in by_item.values():
            assert [e.machine_id for e in item_events] == ["m1", "m2", "m3"]
            for upstream, downstream in zip(item_events, item_events[1:]):
                assert downstream.arrived_at == upstream.finished_at

    def test_events_never_overlap_per_machine(self):
        machines = make_machines(2)
        simulator = ProductionLineSimulator(
            machines, base_processing_seconds=50.0, seed=2
        )
        events = simulator.run(until=3600.0, interarrival_seconds=20.0)
        for machine in machines:
            mine = sorted(
                (e for e in events if e.machine_id == machine.machine_id),
                key=lambda e: e.started_at,
            )
            for a, b in zip(mine, mine[1:]):
                assert b.started_at >= a.finished_at

    def test_wear_slows_processing(self):
        fresh = make_machines(1)[0]
        worn = make_machines(1)[0]
        worn.wear = 0.8
        fresh_sim = ProductionLineSimulator(
            [fresh], base_processing_seconds=10.0, seed=3
        )
        worn_sim = ProductionLineSimulator(
            [worn], base_processing_seconds=10.0, seed=3
        )
        fresh_events = fresh_sim.run(until=600.0, interarrival_seconds=60.0)
        worn_events = worn_sim.run(until=600.0, interarrival_seconds=60.0)
        fresh_mean = sum(e.processing_seconds for e in fresh_events) / len(
            fresh_events
        )
        worn_mean = sum(e.processing_seconds for e in worn_events) / len(
            worn_events
        )
        assert worn_mean > 1.5 * fresh_mean

    def test_needs_machines(self):
        with pytest.raises(ValueError):
            ProductionLineSimulator([])


class TestEventLogMining:
    def test_empty_log(self):
        analysis = analyze_event_log([])
        assert analysis.bottleneck is None
        assert analysis.throughput_per_hour == 0.0

    def test_bottleneck_detected(self):
        machines = make_machines(3)
        machines[1].wear = 0.9  # middle machine is badly worn
        simulator = ProductionLineSimulator(
            machines, base_processing_seconds=10.0, wear_gain=3.0, seed=4
        )
        events = simulator.run(until=2 * 3600.0, interarrival_seconds=30.0)
        analysis = analyze_event_log(events)
        assert analysis.bottleneck == "m2"
        # waiting concentrates at (or right after) the bottleneck
        m2 = analysis.profile("m2")
        m1 = analysis.profile("m1")
        assert m2.utilization > m1.utilization

    def test_flow_time_exceeds_processing_sum_under_load(self):
        machines = make_machines(2)
        simulator = ProductionLineSimulator(
            machines, base_processing_seconds=40.0, seed=5
        )
        events = simulator.run(until=3600.0, interarrival_seconds=30.0)
        analysis = analyze_event_log(events)
        total_processing = sum(
            p.mean_processing_seconds for p in analysis.machines
        )
        # arrivals outpace service: queues form, flow time > work time
        assert analysis.mean_flow_seconds > total_processing

    def test_throughput_matches_completed_items(self):
        machines = make_machines(2)
        simulator = ProductionLineSimulator(
            machines, base_processing_seconds=10.0, seed=6
        )
        simulator.run(until=3600.0, interarrival_seconds=60.0)
        analysis = analyze_event_log(simulator.events)
        assert analysis.throughput_per_hour == pytest.approx(
            simulator.completed_items
            / (max(e.finished_at for e in simulator.events)
               - min(e.arrived_at for e in simulator.events))
            * 3600.0
        )

    def test_efficiency_gain(self):
        machines = make_machines(3)
        machines[2].wear = 0.9
        simulator = ProductionLineSimulator(
            machines, base_processing_seconds=10.0, wear_gain=3.0, seed=7
        )
        events = simulator.run(until=3600.0, interarrival_seconds=60.0)
        analysis = analyze_event_log(events)
        gain = efficiency_gain_estimate(analysis)
        assert gain["potential_speedup"] > 0.3

    def test_no_gain_when_balanced(self):
        machines = make_machines(3)
        simulator = ProductionLineSimulator(
            machines, base_processing_seconds=10.0, seed=8
        )
        events = simulator.run(until=3600.0, interarrival_seconds=60.0)
        gain = efficiency_gain_estimate(analyze_event_log(events))
        assert gain["potential_speedup"] < 0.15

"""Integration: privacy guards on the data store's export paths."""

import pytest

from repro.core.flowtree import FlowtreePrimitive
from repro.core.primitive import QueryRequest
from repro.core.summary import Location
from repro.datastore.aggregator import Aggregator
from repro.datastore.privacy import (
    ExportRule,
    PrivacyGuard,
    PrivacyPolicy,
    PrivacyViolation,
)
from repro.datastore.storage import RoundRobinStorage
from repro.datastore.store import DataStore
from repro.flows.records import FlowRecord
from repro.hierarchy.network import NetworkFabric
from repro.hierarchy.topology import network_monitoring_hierarchy

PRODUCER_LOC = Location("cloud/network/region1/router1")
CONSUMER_LOC = Location("cloud/network/region2/router1")


@pytest.fixture()
def world(policy, make_key):
    hierarchy = network_monitoring_hierarchy(regions=2, routers_per_region=1)
    fabric = NetworkFabric(hierarchy)
    guard = PrivacyGuard(
        PrivacyPolicy(default=ExportRule(min_ip_prefix=16))
    )
    producer = DataStore(
        PRODUCER_LOC, RoundRobinStorage(10**8), fabric=fabric, privacy=guard
    )
    consumer = DataStore(
        CONSUMER_LOC, RoundRobinStorage(10**8), fabric=fabric
    )
    producer.add_peer(consumer)
    producer.install_aggregator(
        Aggregator("ft", FlowtreePrimitive(PRODUCER_LOC, policy))
    )
    for index in range(20):
        record = FlowRecord(
            key=make_key(src_ip=f"203.0.113.{index + 1}", src_port=5000 + index),
            packets=2,
            bytes=200,
            first_seen=float(index),
            last_seen=float(index) + 1,
        )
        producer.ingest("flows", record, record.first_seen)
    producer.close_epoch(60.0)
    return producer, consumer, guard, fabric


class TestReplicaDegradation:
    def test_replica_is_anonymized(self, world, make_key):
        producer, consumer, guard, _ = world
        partition = producer.catalog.all()[0]
        producer.replicate_partition(partition.partition_id, consumer, now=61.0)
        replica_tree = consumer.replicas.all()[0].summary.payload
        for node in replica_tree.nodes():
            key = replica_tree.key_of(node)
            assert key.feature_level("src_ip") <= 16
            assert key.feature_level("dst_ip") <= 16
        assert guard.audit_log

    def test_replica_answers_prefix_queries(self, world, make_key):
        producer, consumer, _, _ = world
        partition = producer.catalog.all()[0]
        producer.replicate_partition(partition.partition_id, consumer, now=61.0)
        result = consumer.query_federated(
            "ft", QueryRequest("total", {}), start=0.0, end=60.0, now=70.0
        )
        assert result.source == "replica"
        assert result.value.flows == 20

    def test_local_data_stays_precise(self, world, make_key):
        producer, consumer, _, _ = world
        partition = producer.catalog.all()[0]
        producer.replicate_partition(partition.partition_id, consumer, now=61.0)
        specific = make_key(src_ip="203.0.113.1", src_port=5000)
        local = producer.query(
            "ft", QueryRequest("query", {"key": specific}),
            start=0.0, end=60.0, now=70.0,
        )
        assert local.value.bytes == 200  # the producer keeps full detail
        replica_tree = consumer.replicas.all()[0].summary.payload
        assert replica_tree.query(specific).bytes == 0  # consumer cannot

    def test_blocked_aggregator_cannot_replicate(self, world):
        producer, consumer, _, _ = world
        producer.privacy = PrivacyGuard(
            PrivacyPolicy(default=ExportRule(shareable=False))
        )
        partition = producer.catalog.all()[0]
        with pytest.raises(PrivacyViolation):
            producer.replicate_partition(
                partition.partition_id, consumer, now=61.0
            )
        assert len(consumer.replicas) == 0


class TestExportDegradation:
    def test_upstream_export_is_anonymized(self, world, policy):
        producer, _, _, fabric = world
        parent_loc = Location("cloud/network/region1")
        parent = DataStore(parent_loc, RoundRobinStorage(10**8), fabric=fabric)
        parent.install_aggregator(
            Aggregator("ft", FlowtreePrimitive(parent_loc, policy))
        )
        # refill the live aggregator (the fixture closed the epoch)
        from repro.flows.flowkey import FIVE_TUPLE

        record_key = FIVE_TUPLE.key(
            proto=6, src_ip="203.0.113.50", dst_ip="192.168.0.1",
            src_port=1234, dst_port=443,
        )
        producer.ingest(
            "flows",
            FlowRecord(key=record_key, packets=1, bytes=100,
                       first_seen=70.0, last_seen=71.0),
            70.0,
        )
        producer.export_summaries("ft", parent, now=80.0)
        parent_tree = parent.aggregator("ft").primitive.tree
        for node in parent_tree.nodes():
            assert parent_tree.key_of(node).feature_level("src_ip") <= 16
        assert parent_tree.total().bytes == 100

"""Tests for the sharded parallel ingest pool and its runtime wiring.

The determinism contract under test: a runtime running with
``parallel=N`` produces *bit-identical* state to the same runtime
running serially — same edge trees (node for node, seq for seq), same
root mass, same WAN bytes, same VolumeStats — because each worker
replays the exact serial ingest semantics on its own shard and the
epoch barrier folds the shards back before the unchanged rollup.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan
from repro.flows.columnar import HAVE_NUMPY
from repro.flows.flowkey import FIVE_TUPLE, GeneralizationPolicy
from repro.flows.tree import Flowtree
from repro.hierarchy.topology import Hierarchy
from repro.parallel import (
    ParallelIngestConfig,
    ShardedIngestPool,
    SiteShardSpec,
)
from repro.runtime import HierarchyRuntime, LevelConfig, tiered_runtime
from repro.simulation.traffic import TrafficConfig, TrafficGenerator

POLICY = GeneralizationPolicy.default_for(FIVE_TUPLE)
SITES = ["region1/router1", "region1/router2", "region2/router1"]


def make_traffic(flows_per_epoch=400, seed=23, sites=tuple(SITES)):
    return TrafficGenerator(
        TrafficConfig(sites=tuple(sites), flows_per_epoch=flows_per_epoch),
        seed=seed,
    )


def drive(runtime, generator, sites, epochs=2, submissions=1):
    """Ingest + close ``epochs`` epochs; returns comparable state."""
    try:
        for epoch in range(epochs):
            for site in sites:
                records = generator.epoch(site, epoch)
                step = max(1, len(records) // submissions)
                for lo in range(0, len(records), step):
                    runtime.ingest(site, records[lo:lo + step])
            runtime.close_epoch((epoch + 1) * runtime.epoch_seconds)
        trees = {
            site: runtime.store_for(site)
            .aggregator("flowtree")
            .primitive.tree.snapshot_state()
            for site in sites
        }
        vols = {
            level: {
                k: v
                for k, v in vars(runtime.stats.level(level)).items()
                if not k.endswith("seconds")
            }
            for level in runtime.store_levels()
        }
        return {
            "mass": runtime.query("SELECT TOTAL FROM ALL").scalar,
            "wan": runtime.wan_bytes(),
            "trees": trees,
            "vols": vols,
            "epochs": runtime.stats.epochs_closed,
        }
    finally:
        runtime.shutdown()


class TestPoolStandalone:
    def test_flush_matches_serial_add_many(self, random_flows):
        records = {
            "s1": random_flows(count=300, seed=1),
            "s2": random_flows(count=250, seed=2),
        }
        specs = {site: SiteShardSpec(node_budget=256) for site in records}
        config = ParallelIngestConfig(workers=2, slot_records=128)
        with ShardedIngestPool(POLICY, specs, config) as pool:
            for site, batch in records.items():
                pool.submit(site, batch[:170])
                pool.submit(site, batch[170:])
            summaries = pool.flush()
        for site, batch in records.items():
            serial = Flowtree(POLICY, node_budget=256)
            serial.add_many((r.key, r.score()) for r in batch[:170])
            serial.add_many((r.key, r.score()) for r in batch[170:])
            assert summaries[site]["state"] == serial.snapshot_state()
            assert summaries[site]["items"] == len(batch)
            assert summaries[site]["opened_at"] == batch[0].first_seen

    def test_empty_epoch_yields_no_summaries(self):
        specs = {"s1": SiteShardSpec()}
        with ShardedIngestPool(POLICY, specs) as pool:
            assert pool.flush() == {}
            assert pool.epoch == 1

    def test_crash_replay_restores_shard(self, random_flows):
        records = random_flows(count=300, seed=4)
        specs = {"s1": SiteShardSpec(node_budget=256)}
        config = ParallelIngestConfig(workers=1, slot_records=64)
        with ShardedIngestPool(
            POLICY, specs, config, crash_points={"s1": [(0, 2)]}
        ) as pool:
            pool.submit("s1", records)
            summaries = pool.flush()
            stats = pool.worker_stats()
        serial = Flowtree(POLICY, node_budget=256)
        serial.add_many((r.key, r.score()) for r in records)
        assert summaries["s1"]["state"] == serial.snapshot_state()
        assert stats[0].restarts == 1
        assert stats[0].replayed_batches >= 2

    def test_worker_stats_progress(self, random_flows):
        specs = {"s1": SiteShardSpec()}
        with ShardedIngestPool(POLICY, specs) as pool:
            pool.submit("s1", random_flows(count=100, seed=5))
            pool.flush()
            (ws,) = pool.worker_stats()
            assert ws.records_done == 100
            assert ws.records_submitted == 100
            assert ws.busy_seconds > 0
            assert ws.queue_depth == 0

    def test_submit_after_shutdown_rejected(self):
        pool = ShardedIngestPool(POLICY, {"s1": SiteShardSpec()})
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.submit("s1", [])

    def test_unknown_site_rejected(self, random_flows):
        with ShardedIngestPool(POLICY, {"s1": SiteShardSpec()}) as pool:
            with pytest.raises(KeyError):
                pool.submit("nowhere", random_flows(count=1))


@pytest.mark.skipif(not HAVE_NUMPY, reason="columnar transport needs numpy")
class TestRuntimeParallelEqualsSerial:
    def test_tiered_bit_identical(self):
        serial = drive(
            tiered_runtime(SITES, router_node_budget=512),
            make_traffic(), SITES,
        )
        parallel = drive(
            tiered_runtime(SITES, router_node_budget=512, parallel=2),
            make_traffic(), SITES,
        )
        assert parallel == serial

    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        workers=st.integers(min_value=1, max_value=4),
        budget=st.sampled_from([64, 512]),
        flows=st.integers(min_value=50, max_value=400),
    )
    @settings(max_examples=6, deadline=None)
    def test_random_configs_bit_identical(self, seed, workers, budget, flows):
        sites = SITES[: 1 + seed % 3]
        serial = drive(
            tiered_runtime(sites, router_node_budget=budget),
            make_traffic(flows, seed, sites), sites,
            submissions=1 + seed % 3,
        )
        parallel = drive(
            tiered_runtime(sites, router_node_budget=budget, parallel=workers),
            make_traffic(flows, seed, sites), sites,
            submissions=1 + seed % 3,
        )
        assert parallel == serial

    def test_crash_mid_epoch_still_bit_identical(self):
        serial = drive(
            tiered_runtime(SITES, router_node_budget=512),
            make_traffic(), SITES, submissions=3,
        )
        faults = FaultPlan.from_spec("crash=region1/router2:1:1")
        runtime = tiered_runtime(
            SITES, router_node_budget=512, parallel=2, faults=faults
        )
        crashed = drive(runtime, make_traffic(), SITES, submissions=3)
        assert crashed == serial

    def test_crash_increments_restart_metric(self):
        faults = FaultPlan.from_spec("crash=region1/router1:0")
        runtime = tiered_runtime(SITES, parallel=3, faults=faults)
        try:
            generator = make_traffic()
            for site in SITES:
                runtime.ingest(site, generator.epoch(site, 0))
            runtime.close_epoch(60.0)
            restarts = {
                ws.worker: ws.restarts
                for ws in runtime._pool.worker_stats()
            }
            assert sum(restarts.values()) == 1
            snap = runtime.obs.registry.snapshot()
            series = snap["repro_parallel_worker_restarts_total"]["series"]
            assert sum(entry["value"] for entry in series) == 1
        finally:
            runtime.shutdown()


class TestOptOutAndWiring:
    def test_parallel_off_never_forks(self):
        runtime = tiered_runtime(SITES)
        try:
            generator = make_traffic()
            for site in SITES:
                runtime.ingest(site, generator.epoch(site, 0))
            assert runtime.parallel_config is None
            assert runtime._pool is None
        finally:
            runtime.shutdown()

    def test_level_config_opt_out(self):
        hierarchy = Hierarchy.from_site_paths(
            SITES, level_names=["region", "router"]
        )
        runtime = HierarchyRuntime(
            hierarchy,
            {
                "router": LevelConfig(
                    aggregator="flowtree", node_budget=512, parallel=False
                ),
                "region": LevelConfig(aggregator="flowtree"),
            },
            parallel=2,
        )
        try:
            generator = make_traffic()
            for site in SITES:
                runtime.ingest(site, generator.epoch(site, 0))
            # the level opted out: no site is pooled, no worker forked
            assert runtime._pool_aggs == {}
            assert runtime._pool is None
        finally:
            runtime.shutdown()

    def test_pool_is_lazy_and_context_managed(self):
        with tiered_runtime(SITES, parallel=2) as runtime:
            assert runtime._pool is None
            runtime.ingest("region1/router1", make_traffic().epoch(SITES[0], 0))
            assert runtime._pool is not None
            pool = runtime._pool
        assert runtime._pool is None
        assert pool._closed


class TestCLI:
    def test_run_with_workers(self, capsys):
        from repro.cli import main

        code = main(
            [
                "run",
                "--epochs", "1",
                "--flows-per-epoch", "120",
                "--workers", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "worker 0:" in out
        assert "worker 1:" in out

    def test_run_workers_matches_serial_wan(self, capsys):
        from repro.cli import main

        main(["run", "--epochs", "1", "--flows-per-epoch", "120"])
        serial = capsys.readouterr().out
        main(
            [
                "run",
                "--epochs", "1",
                "--flows-per-epoch", "120",
                "--workers", "2",
            ]
        )
        parallel = capsys.readouterr().out
        line = next(l for l in serial.splitlines() if "volume:" in l)
        assert line in parallel

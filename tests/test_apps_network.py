"""Tests for the network-monitoring applications."""

import pytest

from repro.apps.ddos import DDoSInvestigationApp
from repro.apps.traffic_matrix import TrafficMatrixApp
from repro.apps.trends import NetworkTrendsApp
from repro.control.controller import Controller
from repro.control.manager import Manager
from repro.core.summary import Location
from repro.datastore.storage import RoundRobinStorage
from repro.datastore.store import DataStore
from repro.flows.features import format_ipv4
from repro.hierarchy.network import NetworkFabric
from repro.hierarchy.topology import network_monitoring_hierarchy
from repro.simulation.sensors import Actuator
from repro.simulation.traffic import TrafficConfig, TrafficGenerator

SITE_NAMES = ("region1/router1", "region2/router1")


@pytest.fixture()
def network():
    hierarchy = network_monitoring_hierarchy(regions=2, routers_per_region=1)
    fabric = NetworkFabric(hierarchy)
    manager = Manager(hierarchy=hierarchy, fabric=fabric)
    sites = []
    for name in SITE_NAMES:
        location = Location(f"cloud/network/{name}")
        store = DataStore(location, RoundRobinStorage(10**8), fabric=fabric)
        manager.register_store(store)
        sites.append(location)
    generator = TrafficGenerator(
        TrafficConfig(sites=SITE_NAMES, flows_per_epoch=800), seed=13
    )
    return manager, sites, generator, fabric


def feed(manager, sites, generator, epoch, ddos_site=None):
    for name, location in zip(SITE_NAMES, sites):
        store = manager.store_at(location)
        if ddos_site == name:
            records = generator.ddos_epoch(name, epoch, attack_flows=1500)
        else:
            records = generator.epoch(name, epoch)
        for record in records:
            store.ingest("flows", record, record.first_seen, size_bytes=48)


class TestTrends:
    def test_reports_service_mix_and_sources(self, network):
        manager, sites, generator, _ = network
        app = NetworkTrendsApp(sites, node_budget=2048)
        app.deploy(manager)
        feed(manager, sites, generator, epoch=0)
        reports = app.on_epoch(manager, 60.0)
        assert len(reports) == len(sites)
        snapshot = app.trend_reports[0]
        ports = [port for port, _ in snapshot.services]
        assert 443 in ports  # HTTPS dominates the default mix
        assert snapshot.top_source_prefixes
        assert snapshot.top_flows

    def test_top_service_is_https_by_bytes(self, network):
        manager, sites, generator, _ = network
        app = NetworkTrendsApp(sites)
        app.deploy(manager)
        feed(manager, sites, generator, epoch=0)
        app.on_epoch(manager, 60.0)
        assert app.trend_reports[0].services[0][0] == 443


class TestTrafficMatrix:
    def test_matrix_covers_sites(self, network):
        manager, sites, generator, fabric = network
        app = TrafficMatrixApp(sites, fabric=fabric)
        app.deploy(manager)
        feed(manager, sites, generator, epoch=0)
        matrix = app.build_matrix(manager, 60.0)
        assert matrix
        covered_sites = {site for _, site in matrix}
        assert covered_sites == {loc.path for loc in sites}

    def test_link_projection(self, network):
        manager, sites, generator, fabric = network
        app = TrafficMatrixApp(sites, fabric=fabric)
        app.deploy(manager)
        feed(manager, sites, generator, epoch=0)
        matrix = app.build_matrix(manager, 60.0)
        utilization = app.project_link_loads(matrix)
        assert utilization
        assert all(value >= 0 for value in utilization.values())
        reports = app.on_epoch(manager, 60.0)
        assert reports[0].body["hottest_link"] is not None

    def test_no_fabric_means_no_projection(self, network):
        manager, sites, generator, _ = network
        app = TrafficMatrixApp(sites, fabric=None)
        assert app.project_link_loads({("p", "s"): 1}) == {}


class TestDDoS:
    def run_scenario(self, network, mitigate=False):
        manager, sites, generator, _ = network
        controllers = {}
        if mitigate:
            for location in sites:
                controller = Controller(location)
                controller.register_actuator(
                    Actuator(f"{location.path}/filter", location)
                )
                controllers[location.path] = controller
        app = DDoSInvestigationApp(
            sites,
            epoch_seconds=60.0,
            node_budget=8192,
            controllers=controllers,
        )
        app.deploy(manager)
        # two clean epochs, then an attack at region1 in epoch 2
        for epoch in range(2):
            feed(manager, sites, generator, epoch=epoch)
            manager.close_epochs((epoch + 1) * 60.0)
            app.on_epoch(manager, (epoch + 1) * 60.0)
        baseline_findings = len(app.findings)
        feed(manager, sites, generator, epoch=2, ddos_site="region1/router1")
        manager.close_epochs(180.0)
        app.on_epoch(manager, 180.0)
        return app, generator, baseline_findings, controllers

    def test_detects_attack_and_victim(self, network):
        app, generator, baseline, _ = self.run_scenario(network)
        assert len(app.findings) > baseline
        finding = app.findings[-1]
        victim = generator.internal_prefix("region1/router1") | 1
        assert finding.victim == format_ipv4(victim)
        assert finding.site == "cloud/network/region1/router1"
        assert finding.surge_bytes > 1_000_000
        assert finding.top_sources

    def test_no_false_positive_on_clean_epochs(self, network):
        app, _, baseline, _ = self.run_scenario(network)
        assert baseline == 0

    def test_mitigation_rule_installed(self, network):
        app, _, _, controllers = self.run_scenario(network, mitigate=True)
        assert app.findings
        site_controller = controllers["cloud/network/region1/router1"]
        assert site_controller.rules()
        rule = site_controller.rules()[0]
        assert rule.command.startswith("rate-limit")
        assert app.reports[-1].body["mitigated"] is True

"""Tests for controller rules, conflict resolution, and the manager."""

import pytest

from repro.control.controller import ACTUATION_DELAY_S, Controller
from repro.control.manager import Manager
from repro.control.requirements import ApplicationRequirement
from repro.control.rules import ControlRule
from repro.core.summary import Location
from repro.datastore.storage import RoundRobinStorage
from repro.datastore.store import DataStore
from repro.datastore.triggers import TriggerFiring
from repro.errors import PlacementError, RuleConflictError
from repro.simulation.sensors import Actuator

LOC = Location("hq/factory1/line1")


def firing(trigger_id="overheat", time=10.0, payload=99.0):
    return TriggerFiring(
        trigger_id=trigger_id,
        stream_id="s",
        time=time,
        payload=payload,
        installed_by="test",
    )


@pytest.fixture()
def controller():
    ctl = Controller(LOC)
    ctl.register_actuator(Actuator("arm1", LOC))
    ctl.register_actuator(Actuator("arm2", LOC))
    return ctl


class TestRuleInstallation:
    def test_install_and_fire(self, controller):
        controller.install_rule(
            ControlRule("r1", command="stop", target_actuator="arm1")
        )
        actions = controller.on_trigger(firing())
        assert len(actions) == 1
        assert actions[0].command == "stop"
        assert actions[0].latency == pytest.approx(ACTUATION_DELAY_S)
        assert controller.actuator("arm1").commands[0].command == "stop"

    def test_duplicate_rule_id(self, controller):
        controller.install_rule(
            ControlRule("r1", command="stop", target_actuator="arm1")
        )
        with pytest.raises(RuleConflictError):
            controller.install_rule(
                ControlRule("r1", command="go", target_actuator="arm1")
            )

    def test_unknown_actuator(self, controller):
        with pytest.raises(RuleConflictError):
            controller.install_rule(
                ControlRule("r", command="stop", target_actuator="ghost")
            )

    def test_conflicting_rules_rejected(self, controller):
        controller.install_rule(
            ControlRule(
                "a", command="stop", target_actuator="arm1",
                exclusive_group="motion", priority=1,
            )
        )
        with pytest.raises(RuleConflictError):
            controller.install_rule(
                ControlRule(
                    "b", command="go", target_actuator="arm1",
                    exclusive_group="motion", priority=1,
                )
            )
        assert "b" in controller.rejected_rules

    def test_different_priorities_allowed(self, controller):
        controller.install_rule(
            ControlRule(
                "a", command="stop", target_actuator="arm1",
                exclusive_group="motion", priority=1,
            )
        )
        controller.install_rule(
            ControlRule(
                "b", command="go", target_actuator="arm1",
                exclusive_group="motion", priority=5,
            )
        )
        actions = controller.on_trigger(firing())
        # only the higher-priority rule wins the exclusive group
        assert len(actions) == 1
        assert actions[0].command == "go"

    def test_same_command_same_group_allowed(self, controller):
        controller.install_rule(
            ControlRule(
                "a", command="stop", target_actuator="arm1",
                exclusive_group="motion", priority=1,
            )
        )
        controller.install_rule(
            ControlRule(
                "b", command="stop", target_actuator="arm1",
                exclusive_group="motion", priority=1,
            )
        )

    def test_certification_enforced(self):
        controller = Controller(LOC, require_certification=True)
        controller.register_actuator(Actuator("arm1", LOC))
        with pytest.raises(RuleConflictError):
            controller.install_rule(
                ControlRule("r", command="stop", target_actuator="arm1")
            )
        controller.install_rule(
            ControlRule(
                "r", command="stop", target_actuator="arm1", certified=True
            )
        )

    def test_remove_rule(self, controller):
        controller.install_rule(
            ControlRule("r", command="stop", target_actuator="arm1")
        )
        controller.remove_rule("r")
        assert controller.on_trigger(firing()) == []
        with pytest.raises(RuleConflictError):
            controller.remove_rule("r")


class TestRuleMatching:
    def test_trigger_id_filter(self, controller):
        controller.install_rule(
            ControlRule(
                "r", command="stop", target_actuator="arm1",
                trigger_id="overheat",
            )
        )
        assert controller.on_trigger(firing("overheat"))
        assert not controller.on_trigger(firing("other"))

    def test_condition_filter(self, controller):
        controller.install_rule(
            ControlRule(
                "r",
                command="slow",
                target_actuator="arm1",
                condition=lambda f: f.payload > 100,
            )
        )
        assert not controller.on_trigger(firing(payload=50))
        assert controller.on_trigger(firing(payload=150))

    def test_independent_actuators_both_fire(self, controller):
        controller.install_rule(
            ControlRule("r1", command="stop", target_actuator="arm1")
        )
        controller.install_rule(
            ControlRule("r2", command="stop", target_actuator="arm2")
        )
        assert len(controller.on_trigger(firing())) == 2


class TestManager:
    def make_manager(self):
        manager = Manager()
        store = DataStore(Location("hq/factory1"), RoundRobinStorage(10**7))
        manager.register_store(store)
        return manager, store

    def test_requirement_installs_aggregator(self):
        manager, store = self.make_manager()
        requirement = ApplicationRequirement(
            app_name="app",
            aggregator_name="vib",
            kind="timebin",
            location=Location("hq/factory1/line1/machine1"),
            precision=30.0,
        )
        aggregator = manager.submit_requirement(requirement)
        assert store.aggregator("vib") is aggregator
        assert aggregator.primitive.bin_seconds == 30.0

    def test_covering_store_walks_up(self):
        manager, store = self.make_manager()
        assert manager.covering_store(
            Location("hq/factory1/line2/machine9")
        ) is store
        with pytest.raises(PlacementError):
            manager.covering_store(Location("elsewhere/x"))

    def test_requirement_reuse_checks_kind(self):
        manager, _ = self.make_manager()
        base = ApplicationRequirement(
            app_name="a",
            aggregator_name="x",
            kind="timebin",
            location=Location("hq/factory1"),
        )
        manager.submit_requirement(base)
        clash = ApplicationRequirement(
            app_name="b",
            aggregator_name="x",
            kind="sample",
            location=Location("hq/factory1"),
        )
        with pytest.raises(PlacementError):
            manager.submit_requirement(clash)

    def test_shared_aggregator_survives_withdrawal(self):
        manager, store = self.make_manager()
        for app in ("a", "b"):
            manager.submit_requirement(
                ApplicationRequirement(
                    app_name=app,
                    aggregator_name="shared",
                    kind="timebin",
                    location=Location("hq/factory1"),
                )
            )
        assert manager.withdraw_application("a") == 0
        assert store.aggregator("shared") is not None
        assert manager.withdraw_application("b") == 1
        from repro.errors import StorageError

        with pytest.raises(StorageError):
            store.aggregator("shared")

    def test_retune(self):
        manager, store = self.make_manager()
        manager.submit_requirement(
            ApplicationRequirement(
                app_name="a",
                aggregator_name="x",
                kind="timebin",
                location=Location("hq/factory1"),
                config={"bin_seconds": 1.0},
            )
        )
        manager.retune(Location("hq/factory1"), "x", 60.0)
        assert store.aggregator("x").primitive.bin_seconds == 60.0

    def test_close_epochs_and_status(self):
        manager, store = self.make_manager()
        manager.submit_requirement(
            ApplicationRequirement(
                app_name="a",
                aggregator_name="x",
                kind="timebin",
                location=Location("hq/factory1"),
            )
        )
        store.ingest("s", 1.0, 0.5)
        created = manager.close_epochs(60.0)
        assert created == 1
        status = manager.status()
        assert len(status) == 1
        assert status[0].partitions == 1
        assert status[0].aggregators == 1

    def test_authorization_enforced(self):
        from repro.datastore.privacy import (
            AuthorizationContext,
            PrivacyViolation,
        )

        manager = Manager(require_authorization=True)
        store = DataStore(Location("hq/factory1"), RoundRobinStorage(10**7))
        manager.register_store(store)
        requirement = ApplicationRequirement(
            app_name="a",
            aggregator_name="x",
            kind="timebin",
            location=Location("hq/factory1"),
        )
        with pytest.raises(PrivacyViolation):
            manager.submit_requirement(requirement)
        operator = AuthorizationContext("op", frozenset({"operate"}))
        with pytest.raises(PrivacyViolation):
            manager.submit_requirement(requirement, context=operator)
        deployer = AuthorizationContext("dep", frozenset({"deploy"}))
        manager.submit_requirement(requirement, context=deployer)
        manager.retune(
            Location("hq/factory1"), "x", 60.0, context=operator
        )
        with pytest.raises(PrivacyViolation):
            manager.withdraw_application("a", context=operator)
        assert manager.withdraw_application("a", context=deployer) == 1

    def test_precision_mapping_for_flowtree(self, policy):
        manager, store = self.make_manager()
        manager.submit_requirement(
            ApplicationRequirement(
                app_name="a",
                aggregator_name="ft",
                kind="flowtree",
                location=Location("hq/factory1"),
                config={"policy": policy},
                precision=512,
            )
        )
        assert store.aggregator("ft").primitive.node_budget == 512

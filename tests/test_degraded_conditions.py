"""Failure injection and degraded conditions.

The paper's Section III.C motivates lineage with "faulty or missing
data"; beyond lineage, the architecture must stay sane when streams
drop out, arrive out of order, or overload the store.  These tests pin
the behaviors down.
"""

import pytest

from repro.core.flowtree import FlowtreePrimitive
from repro.core.primitive import QueryRequest
from repro.core.sampling import RandomSamplePrimitive
from repro.core.summary import Location
from repro.core.timebin import TimeBinStatistics
from repro.datastore.aggregator import Aggregator, prefix_filter
from repro.datastore.storage import RoundRobinStorage
from repro.datastore.store import DataStore
from repro.errors import StorageError
from repro.flows.records import FlowRecord

LOC = Location("cloud/region1/router1")


@pytest.fixture()
def store(policy):
    store = DataStore(LOC, RoundRobinStorage(10**7))
    store.install_aggregator(
        Aggregator(
            "ft",
            FlowtreePrimitive(LOC, policy),
            stream_filter=prefix_filter("flows"),
        )
    )
    return store


class TestSensorDropout:
    def test_timebin_gaps_are_visible(self):
        """A sensor outage leaves holes in the series, not zeros —
        downstream analytics can distinguish 'no data' from 'zero'."""
        primitive = TimeBinStatistics(LOC, bin_seconds=10.0)
        for t in list(range(0, 30)) + list(range(60, 90)):
            primitive.ingest(1.0, float(t))
        series = primitive.query(QueryRequest("series", {}))
        starts = [start for start, _ in series]
        assert 30.0 not in starts and 40.0 not in starts
        assert 0.0 in starts and 60.0 in starts

    def test_idle_epoch_produces_no_partition(self, store):
        assert store.close_epoch(60.0) == []
        assert len(store.catalog) == 0

    def test_stream_resumes_after_dropout(self, store, random_flows):
        for record in random_flows(10, epoch=0):
            store.ingest("flows", record, record.first_seen)
        store.close_epoch(60.0)
        store.close_epoch(120.0)  # silent epoch
        for record in random_flows(10, seed=2, epoch=2):
            store.ingest("flows", record, record.first_seen)
        store.close_epoch(180.0)
        assert len(store.catalog) == 2
        result = store.query(
            "ft", QueryRequest("total", {}), start=0.0, end=180.0, now=190.0
        )
        assert result.value.flows == 20


class TestOutOfOrderData:
    def test_primitive_interval_tracks_min_max(self):
        sampler = RandomSamplePrimitive(LOC, rate=1.0)
        sampler.ingest(1.0, 50.0)
        sampler.ingest(1.0, 10.0)  # late arrival
        sampler.ingest(1.0, 70.0)
        interval = sampler.interval()
        assert interval.start == 10.0
        assert interval.end == 70.0

    def test_flowtree_accepts_out_of_order_records(self, policy, make_key):
        primitive = FlowtreePrimitive(LOC, policy)
        late = FlowRecord(
            key=make_key(), packets=1, bytes=100, first_seen=5.0,
            last_seen=6.0,
        )
        early = FlowRecord(
            key=make_key(src_port=2), packets=1, bytes=100, first_seen=1.0,
            last_seen=2.0,
        )
        primitive.ingest(late, late.first_seen)
        primitive.ingest(early, early.first_seen)
        assert primitive.query(QueryRequest("total", {})).flows == 2


class TestStorageOverload:
    def test_sustained_overload_keeps_store_bounded(self, policy,
                                                    random_flows):
        store = DataStore(LOC, RoundRobinStorage(100_000))
        store.install_aggregator(
            Aggregator("ft", FlowtreePrimitive(LOC, policy,
                                               node_budget=2048))
        )
        for epoch in range(10):
            for record in random_flows(200, seed=epoch, epoch=epoch):
                store.ingest("flows", record, record.first_seen)
            store.close_epoch((epoch + 1) * 60.0)
        assert store.catalog.total_bytes() <= 100_000
        assert store.evictions  # old epochs were sacrificed

    def test_query_after_eviction_uses_what_remains(self, policy,
                                                    random_flows):
        store = DataStore(LOC, RoundRobinStorage(100_000))
        store.install_aggregator(
            Aggregator("ft", FlowtreePrimitive(LOC, policy,
                                               node_budget=2048))
        )
        for epoch in range(10):
            for record in random_flows(200, seed=epoch, epoch=epoch):
                store.ingest("flows", record, record.first_seen)
            store.close_epoch((epoch + 1) * 60.0)
        result = store.query(
            "ft", QueryRequest("total", {}), start=0.0, end=600.0, now=610.0
        )
        # answers reflect surviving partitions only — fewer than the
        # 2000 ingested flows, but internally consistent
        surviving = sum(
            p.summary.payload.total().flows for p in store.catalog.all()
        )
        assert result.value.flows == surviving
        assert result.value.flows < 2000


class TestFederationFailures:
    def test_no_peers_no_data(self, store):
        with pytest.raises(StorageError):
            store.query_federated("ghost", QueryRequest("total", {}))

    def test_peer_without_data_is_skipped(self, store, policy):
        peer = DataStore(
            Location("cloud/region2/router1"), RoundRobinStorage(10**7)
        )
        store.add_peer(peer)
        with pytest.raises(StorageError):
            store.query_federated("ghost", QueryRequest("total", {}))

    def test_unsupported_operator_propagates(self, store, random_flows):
        for record in random_flows(5):
            store.ingest("flows", record, record.first_seen)
        with pytest.raises(ValueError):
            store.query("ft", QueryRequest("bogus_operator", {}))


class TestLinkOutageDuringRollup:
    """End-to-end: a link outage mid-rollup parks exports; the pending
    queue drains at the next reachable epoch close — delayed, not lost."""

    SITE = "network1/region1/router1"

    def _runtime(self):
        from repro import FaultPlan, LinkOutage, network_4level_runtime

        return network_4level_runtime(
            networks=1,
            regions_per_network=2,
            routers_per_region=1,
            retain_partitions=True,
            faults=FaultPlan(outages=[LinkOutage(self.SITE, 1, 2)]),
        )

    def _load(self, runtime, epochs):
        from repro import TrafficConfig, TrafficGenerator

        sites = runtime.ingest_sites()
        generator = TrafficGenerator(
            TrafficConfig(sites=tuple(sites), flows_per_epoch=80), seed=23
        )
        for epoch in range(epochs):
            for site in sites:
                runtime.ingest(site, generator.epoch(site, epoch))
            runtime.close_epoch((epoch + 1) * 60.0)
        return runtime

    def test_outage_parks_export_in_pending_queue(self):
        runtime = self._load(self._runtime(), epochs=1)
        assert runtime.pending_exports() == 1
        queue = runtime.pending_queue(self.SITE)
        assert len(queue) == 1
        assert runtime.stats.exports_parked == 1
        assert runtime.stats.exports_recovered == 0

    def test_pending_queue_drains_next_epoch_close(self):
        runtime = self._load(self._runtime(), epochs=2)
        # the t=120 close falls outside the outage window: the parked
        # export redelivers before the fresh rollup
        assert runtime.pending_exports() == 0
        assert runtime.stats.exports_recovered == 1
        # nothing was lost: the recovered mass shows up at the root
        from repro import network_4level_runtime

        runtime.inject_faults(None)
        total = runtime.query("SELECT TOTAL FROM ALL").scalar
        clean = self._load(
            network_4level_runtime(
                networks=1,
                regions_per_network=2,
                routers_per_region=1,
                retain_partitions=True,
            ),
            epochs=2,
        )
        assert total == clean.query("SELECT TOTAL FROM ALL").scalar

    def test_degraded_query_lists_exact_missing_sites(self):
        from repro import FaultPlan, LinkOutage

        runtime = self._load(self._runtime(), epochs=2)
        runtime.inject_faults(
            FaultPlan(outages=[LinkOutage(self.SITE, 0, 10**9)])
        )
        outcome = runtime.query(
            "SELECT TOTAL FROM ALL "
            f"AT {self.SITE}, network1/region2/router1"
        )
        assert outcome.is_degraded
        assert outcome.missing_sites == [self.SITE]
        assert outcome.scalar.flows > 0  # the reachable site answered


class TestDiffRobustness:
    def test_diff_against_empty_baseline(self, policy, random_flows):
        from repro.flows.tree import Flowtree

        loaded = Flowtree(policy, node_budget=None)
        loaded.ingest(random_flows(20))
        empty = Flowtree(policy, node_budget=None)
        delta = loaded.diff(empty)
        assert delta.total() == loaded.total()
        reverse = empty.diff(loaded)
        assert reverse.total() == -loaded.total()

"""Tests for faulty-sensor detection via anomalies + lineage."""

import random


from repro.apps.sensor_health import SensorHealthApp
from repro.control.manager import Manager
from repro.core.summary import LineageLog, Location

LINE = Location("hq/factory1/line1")


def feed_normal(app, sensor_id, count, base=10.0, seed=0, start=0.0):
    rng = random.Random(seed)
    t = start
    for _ in range(count):
        t += 1.0
        app.observe(sensor_id, base + rng.gauss(0, 0.3), t, location=LINE)
    return t


class TestDetection:
    def test_stuck_sensor_flagged(self):
        app = SensorHealthApp(LineageLog(), consecutive_required=5)
        t = feed_normal(app, "s1", 100)
        fault = None
        for i in range(10):
            fault = app.observe("s1", 99.0, t + i, location=LINE) or fault
        assert fault is not None
        assert fault.sensor_id == "s1"
        assert app.faults

    def test_noise_not_flagged(self):
        app = SensorHealthApp(LineageLog(), consecutive_required=5)
        rng = random.Random(1)
        t = feed_normal(app, "s1", 200, seed=2)
        for i in range(200):
            result = app.observe(
                "s1", 10.0 + rng.gauss(0, 0.3), t + i, location=LINE
            )
            assert result is None

    def test_single_glitch_not_flagged(self):
        app = SensorHealthApp(LineageLog(), consecutive_required=5)
        t = feed_normal(app, "s1", 100)
        assert app.observe("s1", 99.0, t + 1, location=LINE) is None
        # back to normal: counter resets
        feed_normal(app, "s1", 20, start=t + 2)
        assert not app.faults

    def test_flagged_once_until_cleared(self):
        app = SensorHealthApp(LineageLog(), consecutive_required=3)
        t = feed_normal(app, "s1", 100)
        for i in range(10):
            app.observe("s1", 99.0, t + i, location=LINE)
        assert len(app.faults) == 1
        app.clear_flag("s1")
        for i in range(10):
            app.observe("s1", 99.0, t + 20 + i, location=LINE)
        assert len(app.faults) == 2


class TestPeerAgreement:
    def test_coherent_physical_event_not_a_fault(self):
        """All sensors on the machine spike together: real event."""
        app = SensorHealthApp(LineageLog(), consecutive_required=3)
        t = 0.0
        for sensor in ("s1", "s2", "s3"):
            t = max(t, feed_normal(app, sensor, 100, seed=hash(sensor) % 100))
        for i in range(10):
            for sensor in ("s1", "s2", "s3"):
                app.observe(sensor, 99.0, t + i, location=LINE)
        assert not app.faults

    def test_lone_dissenter_is_a_fault(self):
        app = SensorHealthApp(LineageLog(), consecutive_required=3)
        t = 0.0
        for sensor in ("s1", "s2", "s3"):
            t = max(t, feed_normal(app, sensor, 100, seed=hash(sensor) % 100))
        for i in range(10):
            app.observe("s1", 99.0, t + i, location=LINE)
            app.observe("s2", 10.0, t + i, location=LINE)
            app.observe("s3", 10.0, t + i, location=LINE)
        assert [fault.sensor_id for fault in app.faults] == ["s1"]


class TestContaminationTrace:
    def test_descendant_summaries_enumerated(self):
        lineage = LineageLog()
        app = SensorHealthApp(lineage, consecutive_required=3)
        app.watch("s1", LINE)
        ingest = lineage.record("ingest", location=LINE, timestamp=0.0)
        aggregate = lineage.record(
            "aggregate", inputs=[ingest.lineage_id], timestamp=60.0
        )
        merged = lineage.record(
            "merge", inputs=[aggregate.lineage_id], timestamp=120.0
        )
        unrelated = lineage.record("ingest", timestamp=0.0)
        app.note_ingest_lineage("s1", ingest.lineage_id)
        t = feed_normal(app, "s1", 100)
        fault = None
        for i in range(10):
            fault = app.observe("s1", 99.0, t + i, location=LINE) or fault
        assert fault is not None
        assert set(fault.contaminated_lineage_ids) == {
            aggregate.lineage_id,
            merged.lineage_id,
        }
        assert unrelated.lineage_id not in fault.contaminated_lineage_ids

    def test_epoch_summary_reports_open_faults(self):
        app = SensorHealthApp(LineageLog(), consecutive_required=3)
        t = feed_normal(app, "s1", 100)
        for i in range(10):
            app.observe("s1", 99.0, t + i, location=LINE)
        reports = app.on_epoch(Manager(), now=t + 20)
        assert reports
        assert reports[0].body["open_faults"] == ["s1"]
        app.clear_flag("s1")
        # a cleared sensor with no new anomalies reports nothing
        assert app.on_epoch(Manager(), now=t + 40) == []

"""Package health: every module imports, exports resolve, versions agree."""

import importlib
import pkgutil

import pytest

import repro


def _walk_module_names():
    names = ["repro"]
    for module in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(module.name)
    return names


@pytest.mark.parametrize("module_name", _walk_module_names())
def test_module_imports(module_name):
    importlib.import_module(module_name)


def test_all_exports_resolve():
    for name in repro.__all__:
        if name == "__version__":
            continue
        assert getattr(repro, name, None) is not None, name


def test_subpackage_all_exports_resolve():
    for package_name in (
        "repro.core",
        "repro.flows",
        "repro.datastore",
        "repro.analytics",
        "repro.control",
        "repro.apps",
        "repro.hierarchy",
        "repro.faults",
        "repro.flowdb",
        "repro.flowql",
        "repro.flowstream",
        "repro.query",
        "repro.runtime",
        "repro.replication",
        "repro.simulation",
        "repro.scenarios",
    ):
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", []):
            assert getattr(package, name, None) is not None, (
                f"{package_name}.{name}"
            )


def test_version_matches_pyproject():
    import pathlib
    import re

    pyproject = pathlib.Path(__file__).parent.parent / "pyproject.toml"
    match = re.search(
        r'^version\s*=\s*"([^"]+)"', pyproject.read_text(), re.MULTILINE
    )
    assert match is not None
    assert repro.__version__ == match.group(1)

#!/usr/bin/env python
"""Guard the perf-sensitive paths against regressions.

Five committed baselines are checked:

* ``BENCH_flowtree.json`` — re-runs the optimized Flowtree ingest (and
  merge) over the exact recorded trace and fails when fresh throughput
  falls below ``tolerance`` times the committed number.  The same gate
  covers the parallel sharded-ingest section: the committed 4-worker
  curve must clear the aggregate-speedup floor, and a fresh
  ``--parallel-workers``-sized smoke must stay within tolerance of the
  committed per-count speedup while producing trees *bit-identical* to
  serial ingest (root mass and WAN bytes included, via a small
  serial-vs-parallel runtime drive).
* ``BENCH_query.json`` — replays the committed query-planner trace and
  fails when cached repeat queries stop being strictly cheaper than
  federated first queries (bytes moved and wall time).
* ``BENCH_faults.json`` — replays the fault sweep and fails when the
  delivery guarantee breaks (delivered mass < 100% after recovery) or
  when the zero-drop run's WAN volume drifts from the committed
  depth-4 number in ``BENCH_hierarchy.json`` (the fault machinery must
  cost nothing when no faults fire).
* ``BENCH_obs.json`` — re-measures observability overhead on the
  committed depth-4 trace and fails when the instrumented ingest+rollup
  exceeds the uninstrumented wall-clock by 5% or more, when
  instrumentation changes any structural output (WAN/raw/export
  counts), or when the registry exposition drifts from the
  ``VolumeStats``/fabric counters it mirrors.
* ``BENCH_elastic.json`` — replays the scripted reconfiguration storm
  (join, live leave, split, merge, migrate under traffic, clean and
  drop=0.3 fabrics) and fails when root mass stops matching the
  ingested total, when pending migrations fail to drain, or when ops
  stop bumping the topology generation exactly once.
* ``BENCH_durability.json`` — replays the durability sweep and fails
  when the segment log stops answering bit-identically to the memory
  engine, when a crash drill at any epoch boundary loses mass, when
  the memory engine's WAN volume drifts from the committed depth-4
  number (the storage seam must be free when unused), or when a
  parallel memory-engine run diverges from serial.
* ``BENCH_serve.json`` — validates the committed ≥1000-client
  closed-loop serving storm (completed requests, p50/p99, queries/s,
  zero unhandled server errors) and re-runs a reduced 128-client storm
  whose structural claims must all hold: every request completes,
  HTTP answers are payload-identical to in-process ones (degraded
  partials under a fault plan included), and the under-provisioned
  admission arm sheds with 429 + Retry-After while admitted answers
  stay correct.

``--only {all,flowtree,query,faults,obs,elastic,durability,serve}`` selects
one gate (CI runs them in separate jobs).  The default tolerance is deliberately generous —
CI machines vary a lot — so a failure means a real algorithmic
regression, not scheduler noise.

```bash
PYTHONPATH=src python benchmarks/check_regression.py            # default 0.5
PYTHONPATH=src python benchmarks/check_regression.py --tolerance 0.7
PYTHONPATH=src python benchmarks/check_regression.py --only faults
```

Exit status: 0 when everything is within tolerance, 1 on regression, 2
when a baseline file is missing/invalid.  Regenerate the baselines
(e.g. after an intentional perf change) with:

```bash
PYTHONPATH=src python benchmarks/bench_flowtree_hotpath.py
PYTHONPATH=src python benchmarks/bench_query_planner.py
PYTHONPATH=src python benchmarks/bench_faults.py
PYTHONPATH=src python benchmarks/bench_obs.py
PYTHONPATH=src python benchmarks/bench_elastic.py
PYTHONPATH=src python benchmarks/bench_durability.py
```
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # script-mode convenience
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

DEFAULT_BASELINE = REPO_ROOT / "BENCH_flowtree.json"
DEFAULT_QUERY_BASELINE = REPO_ROOT / "BENCH_query.json"
DEFAULT_FAULTS_BASELINE = REPO_ROOT / "BENCH_faults.json"
DEFAULT_HIERARCHY_BASELINE = REPO_ROOT / "BENCH_hierarchy.json"
DEFAULT_OBS_BASELINE = REPO_ROOT / "BENCH_obs.json"
DEFAULT_ELASTIC_BASELINE = REPO_ROOT / "BENCH_elastic.json"
DEFAULT_DURABILITY_BASELINE = REPO_ROOT / "BENCH_durability.json"
DEFAULT_SERVE_BASELINE = REPO_ROOT / "BENCH_serve.json"
DEFAULT_SUBSCRIBE_BASELINE = REPO_ROOT / "BENCH_subscribe.json"
DEFAULT_TOLERANCE = 0.5
#: the zero-drop run is deterministic; allow only float-formatting drift
WAN_MATCH_TOLERANCE = 0.01


def fresh_measurements(trace: dict) -> dict:
    """Re-run the optimized hot path over the committed trace config."""
    from benchmarks.bench_flowtree_hotpath import make_trace, run_fast
    from repro.flows.flowkey import FIVE_TUPLE, GeneralizationPolicy
    from repro.flows.tree import Flowtree

    policy = GeneralizationPolicy.default_for(FIVE_TUPLE)
    records = make_trace(trace["records"], seed=trace["seed"])
    tree, seconds = run_fast(records, policy)
    half = len(records) // 2
    first = Flowtree(policy, node_budget=trace["node_budget"])
    first.ingest(records[:half])
    second = Flowtree(policy, node_budget=trace["node_budget"])
    second.ingest(records[half:])
    started = time.perf_counter()
    first.merge(second)
    merge_seconds = time.perf_counter() - started
    return {
        "fast_records_per_s": len(records) / seconds,
        "fast_merge_ms": merge_seconds * 1000,
        "nodes": tree.node_count,
    }


def _runtime_outcome(workers) -> dict:
    """Root mass + WAN bytes of a small tiered drive (serial when
    ``workers`` is None); the parallel path must reproduce both
    bit-for-bit."""
    from repro.runtime import tiered_runtime
    from repro.simulation.traffic import TrafficConfig, TrafficGenerator

    sites = ["region1/router1", "region1/router2", "region2/router1"]
    generator = TrafficGenerator(
        TrafficConfig(sites=tuple(sites), flows_per_epoch=300), seed=11
    )
    runtime = tiered_runtime(sites, router_node_budget=512, parallel=workers)
    try:
        for epoch in range(2):
            for site in sites:
                runtime.ingest(site, generator.epoch(site, epoch))
            runtime.close_epoch((epoch + 1) * runtime.epoch_seconds)
        return {
            "root_mass": runtime.query("SELECT TOTAL FROM ALL").scalar,
            "wan_bytes": runtime.wan_bytes(),
        }
    finally:
        runtime.shutdown()


def check_parallel(committed: dict, workers: int, tolerance: float) -> int:
    """Gate the parallel sharded-ingest claims.

    Three checks: the committed 4-worker aggregate speedup clears the
    bench gate, a fresh CI-sized smoke at ``workers`` stays within
    ``tolerance`` of the committed per-count speedup (with the
    bit-identity assertions re-run inside), and a serial-vs-parallel
    runtime drive agrees on root mass and WAN bytes exactly.  Returns
    an exit status.
    """
    from repro.flows.columnar import HAVE_NUMPY

    if not HAVE_NUMPY:
        print("note: numpy unavailable; skipping the parallel ingest gate")
        return 0

    from benchmarks.bench_flowtree_hotpath import (
        MIN_PARALLEL_SPEEDUP,
        run_parallel_scaling,
    )

    parallel = committed.get("parallel")
    if not isinstance(parallel, dict) or "curve" not in parallel:
        print(
            "baseline has no parallel section; regenerate it with "
            "bench_flowtree_hotpath.py"
        )
        return 2
    curve = parallel["curve"]
    print(
        "\ncommitted parallel curve: "
        + ", ".join(
            f"{count}w={point['speedup_vs_scalar']:.2f}x"
            for count, point in sorted(
                curve.items(), key=lambda kv: int(kv[0])
            )
        )
    )
    at_four = curve.get("4", {}).get("speedup_vs_scalar", 0.0)
    if at_four < MIN_PARALLEL_SPEEDUP:
        print(
            f"REGRESSION: committed 4-worker aggregate speedup "
            f"{at_four:.2f}x below the {MIN_PARALLEL_SPEEDUP}x gate"
        )
        return 1

    try:
        fresh = run_parallel_scaling(
            records_count=20_000,
            unique_flows=2_000,
            worker_counts=(workers,),
            rounds=2,
        )
    except AssertionError as exc:
        print(f"REGRESSION: parallel ingest diverged from serial ({exc})")
        return 1
    fresh_speedup = fresh["curve"][str(workers)]["speedup_vs_scalar"]
    committed_at = curve.get(str(workers), {}).get("speedup_vs_scalar")
    floor = committed_at * tolerance if committed_at else 1.0
    print(
        f"parallel smoke at {workers} workers: fresh aggregate "
        f"{fresh_speedup:.2f}x vs scalar "
        f"(committed {committed_at}, floor {floor:.2f}x)"
    )
    if fresh_speedup < floor:
        print("REGRESSION: parallel aggregate speedup fell below the floor")
        return 1

    serial = _runtime_outcome(None)
    pooled = _runtime_outcome(workers)
    print(
        f"runtime drive: serial mass={serial['root_mass']} "
        f"wan={serial['wan_bytes']} B, parallel mass={pooled['root_mass']} "
        f"wan={pooled['wan_bytes']} B"
    )
    if serial != pooled:
        print(
            "REGRESSION: parallel runtime diverged from serial "
            "(root mass / WAN bytes)"
        )
        return 1
    print("OK: parallel ingest bit-identical and within tolerance")
    return 0


def check_query_planner(baseline_path: Path) -> int:
    """Replay the committed planner trace; cached must stay cheaper.

    The invariants are structural, not timing-sensitive: a federated
    first pass must move bytes, the cached repeat must move none and
    finish faster.  Returns an exit status.
    """
    try:
        committed = json.loads(baseline_path.read_text())
        trace = committed["trace"]
        committed_phases = committed["phases"]
    except (OSError, json.JSONDecodeError, KeyError, TypeError) as exc:
        print(f"cannot read query baseline {baseline_path}: {exc}")
        return 2

    from benchmarks.bench_query_planner import (
        build_runtime,
        check_claims,
        run_phases,
    )

    print(
        f"\nre-running query planner: {trace['flows_per_epoch']} "
        f"flows/epoch x {trace['epochs']} epochs, seed={trace['seed']}"
    )
    runtime = build_runtime(
        trace["flows_per_epoch"], trace["epochs"], trace["seed"]
    )
    fresh = run_phases(runtime)
    for name in ("federated_first", "cached_repeat"):
        print(
            f"{name}: committed {committed_phases[name]['bytes_moved']} B / "
            f"{committed_phases[name]['seconds'] * 1000:.1f} ms, "
            f"fresh {fresh[name]['bytes_moved']} B / "
            f"{fresh[name]['seconds'] * 1000:.1f} ms"
        )
    try:
        check_claims(fresh)
    except AssertionError as exc:
        print(f"REGRESSION: cached repeats no longer cheaper ({exc!r})")
        return 1
    print("OK: cached repeats cheaper than federated firsts")
    return 0


def check_faults(
    baseline_path: Path, hierarchy_baseline_path: Path
) -> int:
    """Replay the fault sweep; the delivery guarantee must hold.

    Deterministic invariants, not timings: every drop rate delivers
    100% of the fault-free mass once the pending queues drain, and the
    zero-drop run's WAN volume matches the committed depth-4 hierarchy
    number (the fault layer is free when no faults fire).  Returns an
    exit status.
    """
    try:
        committed = json.loads(baseline_path.read_text())
        trace = committed["trace"]
        committed_rates = committed["rates"]
    except (OSError, json.JSONDecodeError, KeyError, TypeError) as exc:
        print(f"cannot read faults baseline {baseline_path}: {exc}")
        return 2

    from benchmarks.bench_faults import check_claims, run_sweep

    print(
        f"\nre-running fault sweep: {trace['flows_per_epoch']} "
        f"flows/epoch x {trace['epochs']} epochs, "
        f"drop rates {trace['drop_rates']}"
    )
    fresh = run_sweep(
        trace["flows_per_epoch"],
        trace["epochs"],
        trace["seed"],
        node_budget=trace["node_budget"],
    )
    for rate, metrics in sorted(fresh.items(), key=lambda kv: float(kv[0])):
        committed_metrics = committed_rates.get(rate, {})
        print(
            f"drop={rate}: delivered {metrics['delivered_mass_pct']}% "
            f"(committed {committed_metrics.get('delivered_mass_pct')}%), "
            f"wasted {metrics['wasted_bytes']} B, "
            f"lag {metrics['recovery_lag_epochs']} epochs"
        )
    try:
        check_claims(fresh)
    except AssertionError as exc:
        print(f"REGRESSION: fault-tolerance claims no longer hold ({exc!r})")
        return 1
    try:
        hierarchy = json.loads(hierarchy_baseline_path.read_text())
        committed_wan = int(hierarchy["depths"]["4"]["wan_bytes"])
    except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
        print(
            f"note: no depth-4 baseline in {hierarchy_baseline_path}; "
            "skipping the zero-drop WAN comparison"
        )
        print("OK: delivered mass 100% at every drop rate")
        return 0
    fresh_wan = fresh["0"]["wan_bytes"]
    # only comparable when the sweep ran the committed full-size trace
    if trace["flows_per_epoch"] == hierarchy["trace"]["flows_per_epoch"]:
        drift = abs(fresh_wan - committed_wan) / committed_wan
        print(
            f"zero-drop WAN: fresh {fresh_wan} B vs committed depth-4 "
            f"{committed_wan} B (drift {drift:.2%})"
        )
        if drift > WAN_MATCH_TOLERANCE:
            print(
                "REGRESSION: the fault machinery changed zero-fault "
                "WAN volume"
            )
            return 1
    print("OK: delivered mass 100% at every drop rate")
    return 0


def check_obs(baseline_path: Path) -> int:
    """Re-measure observability overhead on the committed trace.

    Three claims: instrumented ingest+rollup within the committed
    overhead budget of the uninstrumented run, bit-identical structural
    outputs across modes, and a registry exposition in lockstep with
    the counters it sources.  Returns an exit status.
    """
    try:
        committed = json.loads(baseline_path.read_text())
        trace = committed["trace"]
        committed_results = committed["results"]
    except (OSError, json.JSONDecodeError, KeyError, TypeError) as exc:
        print(f"cannot read obs baseline {baseline_path}: {exc}")
        return 2

    from benchmarks.bench_obs import check_claims, measure

    print(
        f"\nre-measuring obs overhead: {trace['flows_per_epoch']} "
        f"flows/epoch x {trace['epochs']} epochs, seed={trace['seed']}"
    )
    fresh = measure(
        trace["flows_per_epoch"], trace["epochs"], trace["seed"]
    )
    print(
        f"overhead: committed {committed_results['overhead_pct']:.2f}%, "
        f"fresh {fresh['overhead_pct']:.2f}% "
        f"(budget {committed.get('overhead_limit_pct', 5.0)}%)"
    )
    try:
        check_claims(fresh)
    except AssertionError as exc:
        print(f"REGRESSION: observability claims no longer hold ({exc})")
        return 1
    print("OK: instrumentation within the overhead budget")
    return 0


def check_elastic(baseline_path: Path) -> int:
    """Replay the reconfiguration storm; elasticity must stay lossless.

    Deterministic invariants, not timings: at both drop rates root mass
    equals the ingested total once recovery closes drain the parked
    exports and migrations, every op bumps the topology generation
    exactly once, and the clean-fabric run migrates a nonzero ledger-
    tracked byte volume.  The migrated volume is also compared against
    the committed number (the migration protocol is deterministic on a
    clean fabric).  Returns an exit status.
    """
    try:
        committed = json.loads(baseline_path.read_text())
        trace = committed["trace"]
        committed_rates = committed["rates"]
    except (OSError, json.JSONDecodeError, KeyError, TypeError) as exc:
        print(f"cannot read elastic baseline {baseline_path}: {exc}")
        return 2

    from benchmarks.bench_elastic import check_claims, run_sweep

    print(
        f"\nre-running reconfig storm: {trace['flows_per_epoch']} "
        f"flows/epoch, drop rates {trace['drop_rates']}"
    )
    fresh = run_sweep(trace["flows_per_epoch"], trace["seed"])
    for rate, metrics in sorted(fresh.items(), key=lambda kv: float(kv[0])):
        committed_metrics = committed_rates.get(rate, {})
        print(
            f"drop={rate}: root {metrics['root_mass_flows']} / "
            f"expected {metrics['expected_flows']} flows, "
            f"migrated {metrics['migrated_bytes']} B "
            f"(committed {committed_metrics.get('migrated_bytes')} B), "
            f"gen {metrics['generation']}, "
            f"lag {metrics['recovery_lag_epochs']} epochs"
        )
    try:
        check_claims(fresh)
    except AssertionError as exc:
        print(f"REGRESSION: elastic-topology claims no longer hold ({exc!r})")
        return 1
    committed_migrated = committed_rates.get("0", {}).get("migrated_bytes")
    if committed_migrated is not None:
        fresh_migrated = fresh["0"]["migrated_bytes"]
        if fresh_migrated != committed_migrated:
            print(
                f"REGRESSION: clean-fabric migrated volume changed "
                f"({fresh_migrated} B vs committed {committed_migrated} B)"
            )
            return 1
    print("OK: reconfiguration is delayed, never lossy")
    return 0


def check_durability(baseline_path: Path) -> int:
    """Replay the durability sweep; recovery must stay bit-identical.

    Deterministic invariants, not timings: the segment log answers the
    merged-root query bit-identically to the memory engine, a
    full-runtime crash drill at every epoch boundary recovers 100% of
    the uninterrupted mass, the memory engine reproduces the committed
    WAN volume exactly (the seam is free when unused), and a parallel
    memory-engine run matches serial.  Returns an exit status.
    """
    try:
        committed = json.loads(baseline_path.read_text())
        trace = committed["trace"]
        committed_results = committed["results"]
    except (OSError, json.JSONDecodeError, KeyError, TypeError) as exc:
        print(f"cannot read durability baseline {baseline_path}: {exc}")
        return 2

    from benchmarks.bench_durability import check_claims, measure

    print(
        f"\nre-running durability sweep: {trace['flows_per_epoch']} "
        f"flows/epoch x {trace['epochs']} epochs, seed={trace['seed']}"
    )
    fresh = measure(trace["flows_per_epoch"], trace["epochs"])
    print(
        f"close overhead: committed "
        f"{committed_results['close_overhead_ms_per_epoch']} ms/epoch, "
        f"fresh {fresh['close_overhead_ms_per_epoch']} ms/epoch "
        "(informational)"
    )
    for boundary, drill in sorted(fresh["crash_drills"].items()):
        print(
            f"crash@{boundary}: delivered {drill['delivered_mass_pct']}% "
            f"(digest {drill['digest'][:12]})"
        )
    try:
        check_claims(fresh)
    except AssertionError as exc:
        print(f"REGRESSION: durability claims no longer hold ({exc!r})")
        return 1
    committed_wan = committed_results["memory"]["wan_bytes"]
    fresh_wan = fresh["memory"]["wan_bytes"]
    if fresh_wan != committed_wan:
        print(
            f"REGRESSION: memory-engine WAN volume changed "
            f"({fresh_wan} B vs committed {committed_wan} B) — the "
            "storage seam is no longer free when unused"
        )
        return 1
    print(f"zero-overhead check: memory WAN {fresh_wan} B matches committed")

    from repro.flows.columnar import HAVE_NUMPY

    if HAVE_NUMPY:
        serial = _runtime_outcome(None)
        pooled = _runtime_outcome(2)
        if serial != pooled:
            print(
                "REGRESSION: parallel memory-engine run diverged from "
                "serial (root mass / WAN bytes)"
            )
            return 1
        print("parallel drive: bit-identical to serial")
    else:
        print("note: numpy unavailable; skipping the parallel drive check")
    print("OK: crash recovery bit-identical at every epoch boundary")
    return 0


def check_serve(baseline_path: Path) -> int:
    """Validate the committed serving storm + re-run a reduced one.

    The committed baseline must record a ≥1000-client closed-loop run
    that completed every request with zero unhandled server errors and
    carries the p50/p99/throughput numbers the serving plane is judged
    by.  A fresh reduced-fleet storm (128 clients, CI-sized) must then
    satisfy every structural claim live: all requests complete, remote
    answers payload-identical to in-process ones (degraded partials
    included), and the under-provisioned admission arm sheds load with
    429 + Retry-After while admitted answers stay correct.  Returns an
    exit status.
    """
    try:
        committed = json.loads(baseline_path.read_text())
        committed_results = committed["results"]
        committed_latency = committed_results["latency_ms"]
        committed_qps = float(committed_results["throughput_qps"])
    except (OSError, json.JSONDecodeError, KeyError, TypeError) as exc:
        print(f"cannot read serve baseline {baseline_path}: {exc}")
        return 2
    if committed_results.get("clients", 0) < 1000:
        print(
            "REGRESSION: committed serve baseline ran fewer than 1000 "
            f"concurrent clients ({committed_results.get('clients')})"
        )
        return 1
    if committed_results.get("server_errors") != 0:
        print(
            "REGRESSION: committed serve baseline recorded unhandled "
            f"server errors ({committed_results.get('server_errors')})"
        )
        return 1
    for key in ("p50", "p99"):
        if not committed_latency.get(key, 0) > 0:
            print(f"serve baseline is missing latency_ms[{key!r}]")
            return 2
    if not committed_qps > 0:
        print("serve baseline is missing throughput_qps")
        return 2
    print(
        f"\ncommitted storm: {committed_results['clients']} clients, "
        f"{committed_qps} q/s, p50 {committed_latency['p50']} ms, "
        f"p99 {committed_latency['p99']} ms, "
        f"{committed_results['server_errors']} server errors"
    )

    from benchmarks.bench_serve import check_claims, measure

    print("re-running reduced storm: 128 clients x 3 requests")
    fresh = measure(clients=128, requests_per_client=3)
    print(
        f"fresh storm: {fresh['throughput_qps']} q/s, "
        f"p50 {fresh['latency_ms']['p50']} ms, "
        f"p99 {fresh['latency_ms']['p99']} ms (informational), "
        f"identity {fresh['identity']['matched']}/"
        f"{fresh['identity']['queries']}, shedding "
        f"{fresh['shedding']['rejected']}/"
        f"{fresh['shedding']['burst_requests']} rejected"
    )
    try:
        check_claims(fresh)
    except AssertionError as exc:
        print(f"REGRESSION: serving-plane claims no longer hold ({exc!r})")
        return 1
    print("OK: the serving plane completes, matches, and sheds honestly")
    return 0


def check_subscribe(baseline_path: Path) -> int:
    """Validate the committed standing-query baseline + a reduced sweep.

    The committed baseline must record N>=16 standing queries whose
    delta-maintained answers stayed ``to_wire``-identical to full
    re-execution at every epoch close with zero steady-state rebuilds,
    and the headline claim: delta refreshes >=5x cheaper than
    re-execution in both milliseconds and bytes.  A fresh reduced sweep
    (8 subscriptions x 8 epochs) must then hold the structural claims
    live: zero identity mismatches, zero rebuilds, and a clear (>=2x)
    win on both axes.  Returns an exit status.
    """
    try:
        committed = json.loads(baseline_path.read_text())
        committed_results = committed["results"]
    except (OSError, json.JSONDecodeError, KeyError, TypeError) as exc:
        print(f"cannot read subscribe baseline {baseline_path}: {exc}")
        return 2
    if committed_results.get("subscriptions", 0) < 16:
        print(
            "REGRESSION: committed subscribe baseline ran fewer than 16 "
            f"standing queries ({committed_results.get('subscriptions')})"
        )
        return 1
    if committed_results.get("identity_mismatches") != 0:
        print(
            "REGRESSION: committed subscribe baseline recorded delta/"
            "re-execution mismatches "
            f"({committed_results.get('identity_mismatches')})"
        )
        return 1
    if committed_results.get("rebuilds") != 0:
        print(
            "REGRESSION: committed subscribe baseline rebuilt views in "
            f"steady state ({committed_results.get('rebuilds')})"
        )
        return 1
    for axis in ("speedup_ms", "speedup_bytes"):
        if not float(committed_results.get(axis, 0)) >= 5.0:
            print(
                f"REGRESSION: committed subscribe baseline {axis} "
                f"{committed_results.get(axis)} < 5.0"
            )
            return 1
    print(
        f"\ncommitted sweep: {committed_results['subscriptions']} "
        f"standing queries x {committed_results['epochs']} epochs, "
        f"{committed_results['speedup_ms']}x faster / "
        f"{committed_results['speedup_bytes']}x leaner than re-execution"
    )

    from benchmarks.bench_subscribe import measure

    print("re-running reduced sweep: 8 subscriptions x 8 epochs")
    fresh = measure(subscriptions=8, epochs=8)
    print(
        f"fresh sweep: {fresh['speedup_ms']}x ms, "
        f"{fresh['speedup_bytes']}x bytes, "
        f"{fresh['identity_mismatches']} mismatches, "
        f"{fresh['rebuilds']} rebuilds"
    )
    if fresh["identity_mismatches"] != 0:
        print("REGRESSION: delta-maintained views diverged from re-execution")
        return 1
    if fresh["rebuilds"] != 0:
        print("REGRESSION: steady-state closes triggered view rebuilds")
        return 1
    if fresh["delta_refreshes"] <= 0:
        print("REGRESSION: no delta refreshes were recorded")
        return 1
    for axis in ("speedup_ms", "speedup_bytes"):
        if not float(fresh[axis]) >= 2.0:
            print(
                f"REGRESSION: reduced-sweep {axis} {fresh[axis]} < 2.0"
            )
            return 1
    print("OK: standing queries are identical to re-execution, and cheaper")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"committed baseline JSON (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--query-baseline",
        type=Path,
        default=DEFAULT_QUERY_BASELINE,
        help=(
            "committed query-planner baseline JSON "
            f"(default: {DEFAULT_QUERY_BASELINE})"
        ),
    )
    parser.add_argument(
        "--faults-baseline",
        type=Path,
        default=DEFAULT_FAULTS_BASELINE,
        help=(
            "committed fault-sweep baseline JSON "
            f"(default: {DEFAULT_FAULTS_BASELINE})"
        ),
    )
    parser.add_argument(
        "--hierarchy-baseline",
        type=Path,
        default=DEFAULT_HIERARCHY_BASELINE,
        help=(
            "committed hierarchy-depth baseline the zero-drop fault run "
            f"is compared against (default: {DEFAULT_HIERARCHY_BASELINE})"
        ),
    )
    parser.add_argument(
        "--obs-baseline",
        type=Path,
        default=DEFAULT_OBS_BASELINE,
        help=(
            "committed observability-overhead baseline JSON "
            f"(default: {DEFAULT_OBS_BASELINE})"
        ),
    )
    parser.add_argument(
        "--elastic-baseline",
        type=Path,
        default=DEFAULT_ELASTIC_BASELINE,
        help=(
            "committed elastic-topology baseline JSON "
            f"(default: {DEFAULT_ELASTIC_BASELINE})"
        ),
    )
    parser.add_argument(
        "--durability-baseline",
        type=Path,
        default=DEFAULT_DURABILITY_BASELINE,
        help=(
            "committed durability baseline JSON "
            f"(default: {DEFAULT_DURABILITY_BASELINE})"
        ),
    )
    parser.add_argument(
        "--serve-baseline",
        type=Path,
        default=DEFAULT_SERVE_BASELINE,
        help=(
            "committed serving-plane baseline JSON "
            f"(default: {DEFAULT_SERVE_BASELINE})"
        ),
    )
    parser.add_argument(
        "--subscribe-baseline",
        type=Path,
        default=DEFAULT_SUBSCRIBE_BASELINE,
        help=(
            "committed standing-query baseline JSON "
            f"(default: {DEFAULT_SUBSCRIBE_BASELINE})"
        ),
    )
    parser.add_argument(
        "--only",
        choices=(
            "all", "flowtree", "query", "faults", "obs", "elastic",
            "durability", "serve", "subscribe",
        ),
        default="all",
        help="run a single regression gate (default: all)",
    )
    parser.add_argument(
        "--parallel-workers",
        type=int,
        default=2,
        help=(
            "worker count for the fresh parallel-ingest smoke in the "
            "flowtree gate (default: 2, sized for CI runners)"
        ),
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=(
            "fresh throughput must be >= tolerance * committed throughput "
            f"(default: {DEFAULT_TOLERANCE})"
        ),
    )
    args = parser.parse_args(argv)

    if not 0.0 < args.tolerance <= 1.0:
        print(f"tolerance must be in (0, 1], got {args.tolerance}")
        return 2
    if args.only == "query":
        return check_query_planner(args.query_baseline)
    if args.only == "faults":
        return check_faults(args.faults_baseline, args.hierarchy_baseline)
    if args.only == "obs":
        return check_obs(args.obs_baseline)
    if args.only == "elastic":
        return check_elastic(args.elastic_baseline)
    if args.only == "durability":
        return check_durability(args.durability_baseline)
    if args.only == "serve":
        return check_serve(args.serve_baseline)
    if args.only == "subscribe":
        return check_subscribe(args.subscribe_baseline)
    try:
        committed = json.loads(args.baseline.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read baseline {args.baseline}: {exc}")
        return 2
    try:
        committed_rps = float(committed["fast_records_per_s"])
        trace = committed["trace"]
    except (KeyError, TypeError, ValueError) as exc:
        print(f"baseline {args.baseline} is malformed: {exc}")
        return 2

    print(
        f"re-running hot path: {trace['records']} records, "
        f"node_budget={trace['node_budget']}, seed={trace['seed']}"
    )
    fresh = fresh_measurements(trace)
    floor = committed_rps * args.tolerance
    print(
        f"ingest: committed {committed_rps:.0f} rec/s, "
        f"fresh {fresh['fast_records_per_s']:.0f} rec/s, "
        f"floor {floor:.0f} rec/s (tolerance {args.tolerance})"
    )
    if "fast_merge_ms" in committed:
        print(
            f"merge: committed {committed['fast_merge_ms']:.1f} ms, "
            f"fresh {fresh['fast_merge_ms']:.1f} ms (informational)"
        )
    if fresh["fast_records_per_s"] < floor:
        print("REGRESSION: ingest throughput fell below the floor")
        return 1
    print("OK: no hot-path regression")
    status = check_parallel(
        committed, args.parallel_workers, args.tolerance
    )
    if status != 0:
        return status
    if args.only == "flowtree":
        return 0
    status = check_query_planner(args.query_baseline)
    if status != 0:
        return status
    status = check_faults(args.faults_baseline, args.hierarchy_baseline)
    if status != 0:
        return status
    status = check_obs(args.obs_baseline)
    if status != 0:
        return status
    status = check_elastic(args.elastic_baseline)
    if status != 0:
        return status
    status = check_durability(args.durability_baseline)
    if status != 0:
        return status
    status = check_serve(args.serve_baseline)
    if status != 0:
        return status
    return check_subscribe(args.subscribe_baseline)


if __name__ == "__main__":
    sys.exit(main())

"""Shared fixtures and reporting helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables/figures (see
DESIGN.md §3 and EXPERIMENTS.md).  The paper is a vision paper with no
measured numbers, so each bench (a) times the relevant operation with
pytest-benchmark and (b) computes the *claim metric* the artifact makes
(reduction factors, competitive ratios, loop latencies) — printed via
``report()`` and attached to ``benchmark.extra_info`` so it lands in the
benchmark table/JSON.
"""

from __future__ import annotations

import pytest

from repro.flows.flowkey import FIVE_TUPLE, GeneralizationPolicy
from repro.simulation.traffic import TrafficConfig, TrafficGenerator

SITES = ("region1/router1", "region2/router1", "region3/router1",
         "region4/router1")


@pytest.fixture(scope="session")
def policy() -> GeneralizationPolicy:
    return GeneralizationPolicy.default_for(FIVE_TUPLE)


@pytest.fixture(scope="session")
def traffic() -> TrafficGenerator:
    return TrafficGenerator(
        TrafficConfig(sites=SITES, flows_per_epoch=3000), seed=2019
    )


@pytest.fixture(scope="session")
def small_traffic() -> TrafficGenerator:
    return TrafficGenerator(
        TrafficConfig(sites=SITES, flows_per_epoch=600), seed=2019
    )


def report(title: str, rows, columns=None) -> None:
    """Print one claim table under the benchmark output."""
    print(f"\n=== {title} ===")
    if columns:
        print("  " + " | ".join(str(c) for c in columns))
    for row in rows:
        print("  " + " | ".join(str(c) for c in row))

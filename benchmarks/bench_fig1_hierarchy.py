"""Figure 1: hierarchical aggregation tames the data flood.

The figure's claim: data rates at each level of the hierarchy (machine →
line → factory/edge → cloud; router → region → network → cloud) must
fall fast enough that each level can act within its deadline and the
WAN only carries summaries.  We measure the per-level byte rate before
and after aggregation in both settings.
"""

from __future__ import annotations


from benchmarks.conftest import SITES, report
from repro.core.flowtree import FlowtreePrimitive
from repro.core.summary import Location
from repro.datastore.aggregator import Aggregator
from repro.datastore.storage import RoundRobinStorage
from repro.datastore.store import DataStore
from repro.hierarchy.network import DEFAULT_BANDWIDTH_BPS, NetworkFabric
from repro.hierarchy.topology import network_monitoring_hierarchy
from repro.simulation.factory import build_factory


def test_factory_rate_reduction_per_level(benchmark):
    """Machine-level raw rate vs line-level bin summaries vs factory-level
    epoch stats: each level cuts the rate by orders of magnitude."""
    factory = build_factory(lines=3, machines_per_line=8)

    def compute():
        raw = factory.raw_bytes_per_second()
        scalar_raw = sum(
            sensor.bytes_per_second()
            for machine in factory.machines
            for sensor in machine.sensors
        )
        # line level: 1-second bins per sensor stream (48 B/bin)
        line_rate = sum(
            48.0 for machine in factory.machines for _ in machine.sensors
        )
        # factory level: 60-second bins
        factory_rate = line_rate / 60.0
        # cloud level: one stats row per sensor per hour
        cloud_rate = line_rate / 3600.0
        return raw, scalar_raw, line_rate, factory_rate, cloud_rate

    raw, scalar_raw, line_rate, factory_rate, cloud_rate = benchmark(compute)
    wan = DEFAULT_BANDWIDTH_BPS["cloud"] / 8.0
    report(
        "Fig. 1a: factory data rates per level (bytes/s)",
        [
            ("machine (raw, incl. cameras)", f"{raw:.3g}"),
            ("machine (scalar sensors)", f"{scalar_raw:.3g}"),
            ("line (1 s bins)", f"{line_rate:.3g}"),
            ("factory (60 s bins)", f"{factory_rate:.3g}"),
            ("cloud (1 h stats)", f"{cloud_rate:.3g}"),
            ("WAN capacity", f"{wan:.3g}"),
        ],
    )
    assert raw > wan, "raw rate must exceed the WAN (the premise)"
    assert cloud_rate < wan, "aggregated rate must fit the WAN (the claim)"
    assert raw / cloud_rate > 1e6
    benchmark.extra_info["reduction_factor"] = raw / cloud_rate


def test_network_rate_reduction_per_level(benchmark, policy, traffic):
    """Router flow exports vs per-epoch Flowtree summaries up the tree."""
    hierarchy = network_monitoring_hierarchy(regions=4, routers_per_region=1)
    fabric = NetworkFabric(hierarchy)

    def run_epoch():
        fabric.reset_accounting()
        raw_bytes = 0
        summary_bytes = 0
        cloud = hierarchy.root.location
        for index, site in enumerate(SITES):
            location = Location(f"cloud/network/region{index + 1}/router1")
            store = DataStore(location, RoundRobinStorage(10**8), fabric=fabric)
            store.install_aggregator(
                Aggregator(
                    "ft", FlowtreePrimitive(location, policy, node_budget=4096)
                )
            )
            records = traffic.epoch(site, 0)
            for record in records:
                store.ingest("flows", record, record.first_seen, size_bytes=48)
                raw_bytes += record.bytes
            partition = store.close_epoch(60.0)[0]
            fabric.transfer(location, cloud, partition.size_bytes, 60.0)
            summary_bytes += partition.size_bytes
        return raw_bytes, summary_bytes

    raw_bytes, summary_bytes = benchmark.pedantic(
        run_epoch, rounds=2, iterations=1
    )
    report(
        "Fig. 1b: network volumes per epoch (bytes)",
        [
            ("raw traffic observed at routers", raw_bytes),
            ("summaries shipped to cloud", summary_bytes),
            ("reduction factor", f"{raw_bytes / summary_bytes:.1f}x"),
            ("wan bytes accounted", fabric.wan_bytes()),
        ],
    )
    assert summary_bytes < raw_bytes / 10
    benchmark.extra_info["reduction_factor"] = raw_bytes / summary_bytes


def test_deadlines_vs_loop_latencies(benchmark):
    """Each level's decision deadline (Fig. 1a annotations) is met by the
    corresponding loop in the architecture."""
    from repro.control.controller import ACTUATION_DELAY_S
    from repro.hierarchy.topology import (
        LINE_DEADLINE,
        MACHINE_DEADLINE,
        smart_factory_hierarchy,
    )

    hierarchy = smart_factory_hierarchy()
    fabric = NetworkFabric(hierarchy)

    def compute():
        machine_latency = ACTUATION_DELAY_S
        # line level: one summary export machine -> line + decision
        line_latency = fabric.transfer(
            Location("hq/factory1/line1/machine1"),
            Location("hq/factory1/line1"),
            50_000,
        ).duration
        # cloud level: factory -> hq export of a compressed epoch summary
        cloud_latency = fabric.transfer(
            Location("hq/factory1"), Location("hq"), 5_000_000
        ).duration
        return machine_latency, line_latency, cloud_latency

    machine_latency, line_latency, cloud_latency = benchmark(compute)
    report(
        "Fig. 1a: deadlines vs measured path latencies (seconds)",
        [
            ("machine", MACHINE_DEADLINE, f"{machine_latency:.5f}"),
            ("line", LINE_DEADLINE, f"{line_latency:.5f}"),
            ("cloud (weekly horizon)", "604800", f"{cloud_latency:.3f}"),
        ],
        columns=("level", "deadline", "measured"),
    )
    assert machine_latency < MACHINE_DEADLINE
    assert line_latency < LINE_DEADLINE

"""Figure 2: the four-building-block feedback loop, end to end.

Claim: sensor data flows Data Store (aggregate) → Analytics (transfer &
process) → Application (model & learn) → Controller (decide &
implement) and back to the physical world, and the whole loop closes.
We drive one wear-degradation episode through the full chain and time
each block.
"""

from __future__ import annotations


from benchmarks.conftest import report
from repro.analytics.inference import LinearTrend, time_to_threshold
from repro.analytics.pipeline import Pipeline
from repro.control.controller import Controller
from repro.control.rules import ControlRule
from repro.core.primitive import QueryRequest
from repro.core.timebin import TimeBinStatistics
from repro.datastore.aggregator import Aggregator, prefix_filter
from repro.datastore.storage import RoundRobinStorage
from repro.datastore.store import DataStore
from repro.datastore.triggers import TriggerFiring
from repro.simulation.factory import build_factory
from repro.simulation.sensors import Actuator


def test_full_feedback_loop(benchmark):
    """One complete aggregate→process→infer→decide→implement cycle."""

    def run_loop():
        workload = build_factory(lines=1, machines_per_line=1, seed=3)
        machine = workload.machines[0]
        machine.wear_rate_per_hour = 0.4
        store = DataStore(workload.root, RoundRobinStorage(10**7))
        sensor = machine.vibration_sensor
        store.install_aggregator(
            Aggregator(
                "vibration",
                TimeBinStatistics(machine.location, bin_seconds=60.0),
                stream_filter=prefix_filter(sensor.sensor_id),
                item_of=lambda reading: reading.value,
            )
        )
        controller = Controller(machine.location)
        actuator = Actuator("machine-control", machine.location)
        controller.register_actuator(actuator)
        controller.install_rule(
            ControlRule(
                "preventive-stop",
                command="schedule-maintenance",
                target_actuator="machine-control",
                trigger_id="degradation-predicted",
            )
        )

        # Data Store: collect & aggregate (2 h of readings at 1/s)
        t = 0.0
        while t < 2 * 3600.0:
            t += 1.0
            reading = sensor.reading_at(t)
            store.ingest(sensor.sensor_id, reading, t,
                         size_bytes=reading.size_bytes)
        store.close_epoch(t)

        # Analytics: process (series) + infer (trend)
        outputs = []
        pipeline = (
            Pipeline("degradation")
            .add_stage(
                "fetch-series",
                lambda now: store.query(
                    "vibration",
                    QueryRequest("series", {"field": "mean"}),
                    start=0.0, end=now, now=now,
                ).value,
                role="preprocess",
            )
            .add_stage("fit-trend", LinearTrend.fit, role="infer")
            .feed_to(outputs.append)
        )
        run = pipeline.run(t, at_time=t)

        # Application: model & learn → decide
        trend = outputs[0]
        eta = time_to_threshold(trend, t, threshold=8.0)
        fired = False
        if eta is not None and eta < 24 * 3600.0:
            firing = TriggerFiring(
                trigger_id="degradation-predicted",
                stream_id="vibration",
                time=t,
                payload=eta,
                installed_by="maintenance-app",
            )
            # Controller: resolve & implement
            actions = controller.on_trigger(firing)
            fired = bool(actions)
        return trend, eta, fired, actuator, run

    trend, eta, fired, actuator, run = benchmark.pedantic(
        run_loop, rounds=3, iterations=1
    )
    report(
        "Fig. 2: feedback-loop blocks",
        [
            ("aggregate", "7200 readings -> 120 bins"),
            ("process+infer", f"slope={trend.slope:.2e}/s "
                              f"r2={trend.r_squared:.3f}"),
            ("decide", f"predicted crossing in {eta:.0f} s"),
            ("implement", f"command={actuator.commands[0].command!r}"),
        ],
    )
    assert trend.slope > 0
    assert fired, "the loop must close back to the actuator"
    assert actuator.commands[0].command == "schedule-maintenance"
    benchmark.extra_info["pipeline_seconds"] = run.total_seconds

"""Cloud vs. federated vs. cached query cost through the planner.

Section VII motivates both reactive caching and proactive replication
with the cost of repeated federated queries.  This benchmark drives the
same 4-level network preset (interior partitions retained so the
planner can drill below the export tier) through three phases:

* **cloud** — queries the root FlowDB covers (route ``cloud``),
* **federated-first** — per-router drilldowns on a cold cache: partial
  summaries are shipped across the fabric (route ``federated``),
* **cached-repeat** — the identical drilldowns again within the epoch:
  answered from the planner's :class:`QueryCache`, zero bytes moved.

Per phase it records wall time and the fabric-byte delta; the claim is
that cached repeats are strictly cheaper than federated firsts on both
axes.

Run as a script to execute the full trace and (re)write the committed
baseline ``BENCH_query.json`` at the repo root:

```bash
PYTHONPATH=src python benchmarks/bench_query_planner.py
```

The pytest entry point uses a smaller trace so ``pytest benchmarks/``
stays quick; ``check_regression.py`` replays the committed trace and
fails when the cached phase stops being cheaper.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from repro.runtime.presets import network_4level_runtime
from repro.simulation.traffic import TrafficConfig, TrafficGenerator

try:  # script mode runs without pytest on the path
    from benchmarks.conftest import report
except ImportError:  # pragma: no cover
    def report(title, rows, columns=None):
        print(f"\n=== {title} ===")
        if columns:
            print("  " + " | ".join(str(c) for c in columns))
        for row in rows:
            print("  " + " | ".join(str(cell) for cell in row))

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_query.json"

NODE_BUDGET = 4096
EPOCH_SECONDS = 60.0


def build_runtime(flows_per_epoch: int, epochs: int, seed: int):
    """A loaded 4-level runtime with drillable interior partitions."""
    runtime = network_4level_runtime(
        networks=1,
        regions_per_network=2,
        routers_per_region=2,
        router_node_budget=NODE_BUDGET,
        region_node_budget=NODE_BUDGET,
        network_node_budget=NODE_BUDGET,
        retain_partitions=True,
    )
    generator = TrafficGenerator(
        TrafficConfig(
            sites=tuple(runtime.ingest_sites()),
            flows_per_epoch=flows_per_epoch,
        ),
        seed=seed,
    )
    for epoch in range(epochs):
        for site in runtime.ingest_sites():
            runtime.ingest(site, generator.epoch(site, epoch))
        runtime.close_epoch((epoch + 1) * EPOCH_SECONDS)
    return runtime


def _timed_phase(runtime, queries):
    fabric_before = runtime.total_network_bytes()
    started = time.perf_counter()
    for text in queries:
        runtime.query(text)
    seconds = time.perf_counter() - started
    return {
        "queries": len(queries),
        "seconds": round(seconds, 6),
        "bytes_moved": runtime.total_network_bytes() - fabric_before,
    }


def run_phases(runtime) -> dict:
    """Cloud, federated-first, and cached-repeat over one loaded runtime."""
    cloud_queries = [
        "SELECT TOTAL FROM ALL",
        "SELECT TOPK(5) FROM ALL BY bytes",
        "SELECT GROUPBY(dst_port, 16) FROM ALL BY bytes LIMIT 5",
    ]
    edge_queries = [
        f"SELECT TOPK(5) FROM ALL AT {site} BY bytes"
        for site in runtime.ingest_sites()
    ]
    runtime.planner.invalidate_cache()
    phases = {
        "cloud": _timed_phase(runtime, cloud_queries),
        "federated_first": _timed_phase(runtime, edge_queries),
        "cached_repeat": _timed_phase(runtime, edge_queries),
    }
    stats = runtime.stats
    phases["routing"] = {
        "cloud": stats.queries_cloud,
        "federated": stats.queries_federated,
        "cached": stats.queries_cached,
    }
    return phases


def rows_of(phases: dict):
    return [
        (
            name,
            metrics["queries"],
            f"{metrics['seconds'] * 1000:.1f} ms",
            metrics["bytes_moved"],
        )
        for name, metrics in phases.items()
        if name != "routing"
    ]


def check_claims(phases: dict) -> None:
    """The paper's Section VII claim: cached repeats are cheaper."""
    federated = phases["federated_first"]
    cached = phases["cached_repeat"]
    assert federated["bytes_moved"] > 0
    assert cached["bytes_moved"] == 0
    assert cached["seconds"] < federated["seconds"]
    assert phases["routing"]["cached"] >= cached["queries"]
    assert phases["routing"]["federated"] >= federated["queries"]


def test_cached_repeats_cheaper_than_federated_firsts(benchmark):
    runtime = build_runtime(flows_per_epoch=600, epochs=2, seed=2019)

    def full_run():
        return run_phases(runtime)

    phases = benchmark.pedantic(full_run, rounds=1, iterations=1)
    report(
        "Section VII: query routing cost (planner)",
        rows_of(phases),
        columns=("phase", "queries", "wall", "bytes moved"),
    )
    benchmark.extra_info.update(
        {
            f"{name}_bytes_moved": metrics["bytes_moved"]
            for name, metrics in phases.items()
            if name != "routing"
        }
    )
    check_claims(phases)


def main() -> None:
    flows_per_epoch, epochs, seed = 3000, 3, 2019
    runtime = build_runtime(flows_per_epoch, epochs, seed)
    phases = run_phases(runtime)
    report(
        "Section VII: query routing cost (full trace)",
        rows_of(phases),
        columns=("phase", "queries", "wall", "bytes moved"),
    )
    check_claims(phases)
    baseline = {
        "trace": {
            "flows_per_epoch": flows_per_epoch,
            "epochs": epochs,
            "seed": seed,
            "node_budget": NODE_BUDGET,
        },
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "phases": phases,
    }
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"\nwrote {BASELINE_PATH}")


if __name__ == "__main__":
    main()

"""Section V.B: the toy random-sampling primitive's five properties.

The paper walks through Query / Combine / Aggregate / Self-adapt /
Domain-knowledge for the sampling primitive; this bench demonstrates and
times each on a volatile-rate time series, and quantifies the
self-adaptation claim: the retained-point rate tracks the requested
granularity while the stream rate swings by two orders of magnitude.
"""

from __future__ import annotations

import math


from benchmarks.conftest import report
from repro.core.primitive import AdaptationFeedback, QueryRequest
from repro.core.sampling import RandomSamplePrimitive
from repro.core.summary import Location

LOC_A = Location("hq/factory1/line1")
LOC_B = Location("hq/factory1/line2")


def volatile_stream(seconds: int, base_rate: float = 10.0):
    """A stream whose rate swings x100 over the run (sinusoidal)."""
    t = 0.0
    while t < seconds:
        rate = base_rate * (1.0 + 99.0 * (0.5 + 0.5 * math.sin(t / 60.0)))
        t += 1.0 / rate
        yield t, math.sin(t / 10.0) * 5.0 + 20.0


def test_property_query(benchmark):
    sampler = RandomSamplePrimitive(LOC_A, rate=0.2, seed=1)
    for t, value in volatile_stream(120):
        sampler.ingest(value, t)

    def run_queries():
        selected = sampler.query(
            QueryRequest("select", {"start": 30.0, "end": 90.0,
                                    "min_value": 22.0})
        )
        estimate = sampler.query(
            QueryRequest("estimate_count", {"start": 30.0, "end": 90.0})
        )
        return selected, estimate

    selected, estimate = benchmark(run_queries)
    assert all(p.value >= 22.0 for p in selected)
    assert estimate > len(selected)


def test_property_combine(benchmark):
    def combine():
        a = RandomSamplePrimitive(LOC_A, rate=0.5, seed=1)
        b = RandomSamplePrimitive(LOC_B, rate=0.1, seed=2)
        for t, value in volatile_stream(60):
            a.ingest(value, t)
            b.ingest(value, t)
        true_count = a.items_ingested + b.items_ingested
        a.combine(b)
        estimate = a.query(QueryRequest("estimate_count", {}))
        return a, true_count, estimate

    combined, true_count, estimate = benchmark.pedantic(
        combine, rounds=3, iterations=1
    )
    assert combined.rate == 0.1  # coarser of the two
    # estimates stay unbiased after rate-aligned combination
    assert 0.6 * true_count < estimate < 1.4 * true_count


def test_property_aggregate_and_self_adapt(benchmark):
    """Granularity tracks queries; footprint tracks pressure."""

    def run_epochs():
        sampler = RandomSamplePrimitive(LOC_A, rate=1.0, seed=3)
        footprint = []
        for epoch in range(6):
            count = 0
            for t, value in volatile_stream(60):
                sampler.ingest(value, t + epoch * 60)
                count += 1
            # queries only ever need one point per second
            sampler.adapt(
                AdaptationFeedback(
                    ingest_rate=count / 60.0, requested_granularity=1.0
                )
            )
            footprint.append((count, len(sampler.points), sampler.rate))
            sampler.reset_epoch()
        return footprint

    footprint = benchmark.pedantic(run_epochs, rounds=1, iterations=1)
    report(
        "Sec. V.B: sampler self-adaptation per epoch",
        [
            (f"epoch {i}", ingested, kept, f"{rate:.4f}")
            for i, (ingested, kept, rate) in enumerate(footprint)
        ],
        columns=("epoch", "ingested", "kept", "rate"),
    )
    # after the first adaptation, retained points hover near the
    # requested one-per-second budget regardless of the stream rate
    for ingested, kept, _rate in footprint[1:]:
        assert kept < ingested
        assert kept < 60 * 4  # ~one point/second, generous noise margin


def test_property_domain_knowledge(benchmark):
    """The sampling primitive is the domain-agnostic example; the
    Flowtree is the domain-aware counterexample."""
    from repro.core.flowtree import FlowtreePrimitive
    from repro.flows.flowkey import FIVE_TUPLE, GeneralizationPolicy

    def construct():
        sampler = RandomSamplePrimitive(LOC_A, rate=0.5)
        flowtree = FlowtreePrimitive(
            LOC_A, GeneralizationPolicy.default_for(FIVE_TUPLE)
        )
        return sampler, flowtree

    sampler, flowtree = benchmark(construct)
    assert sampler.uses_domain_knowledge is False
    assert flowtree.uses_domain_knowledge is True

"""Durable storage: close-epoch overhead, recovery time, crash drills.

The storage seam must be free when unused and cheap when used: the
default :class:`~repro.storage.MemoryEngine` adds only bookkeeping to
an epoch close, while :class:`~repro.storage.SegmentLogEngine` pays
serialization + fsync per close to make every epoch boundary a
durability point.  The measured claims:

* **bit-identical queries** — the merged root tree read back from the
  segment log equals the in-memory run's tree exactly (same trace, same
  canonical ``to_dict`` form), serial and parallel;
* **crash recovery** — a full-runtime kill + recover drill
  (``restart=cloud:<epoch>``) at *every* epoch boundary still produces
  the uninterrupted run's root tree: delivered mass is 100%, recovery
  re-indexes from the manifest + record log;
* **close-epoch overhead** — the segment engine's extra wall-clock per
  close (serialize + fsync) is recorded as a curve against the memory
  engine (informational: the gate checks structure, not timings);
* **recovery time** — reopening a data directory scales with the
  segment count; the curve (segments vs reopen seconds vs records) is
  recorded per epoch count.

Run as a script to execute the full trace (the exact
``BENCH_hierarchy.json`` depth-4 trace, so the memory engine's WAN
volume must reproduce the committed 707616 B) and (re)write
``BENCH_durability.json`` at the repo root:

```bash
PYTHONPATH=src python benchmarks/bench_durability.py
```

The pytest entry point uses a smaller trace so ``pytest benchmarks/``
stays quick.
"""

from __future__ import annotations

import hashlib
import json
import platform
import shutil
import tempfile
import time
from pathlib import Path

from repro.faults import FaultPlan
from repro.runtime.presets import network_4level_runtime
from repro.simulation.traffic import TrafficConfig, TrafficGenerator
from repro.storage import SegmentLogEngine

try:  # script mode runs without pytest on the path
    from benchmarks.conftest import report
except ImportError:  # pragma: no cover
    def report(title, rows, columns=None):
        print(f"\n=== {title} ===")
        if columns:
            print("  " + " | ".join(str(c) for c in columns))
        for row in rows:
            print("  " + " | ".join(str(cell) for cell in row))

BASELINE_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_durability.json"
)

#: the exact trace of BENCH_hierarchy.json, so WAN volume is comparable
SITES = (
    "region1/router1",
    "region1/router2",
    "region2/router1",
    "region2/router2",
)
NODE_BUDGET = 4096
SEED = 2019


def build_runtime(storage=None, faults=None, node_budget: int = NODE_BUDGET):
    return network_4level_runtime(
        networks=1,
        regions_per_network=2,
        routers_per_region=2,
        router_node_budget=node_budget,
        region_node_budget=node_budget,
        network_node_budget=node_budget,
        retain_partitions=True,
        storage=storage,
        faults=faults,
    )


def root_digest(runtime) -> str:
    """A canonical hash of the merged root tree (bit-identity probe)."""
    document = json.dumps(
        runtime.db.merged_tree().to_dict(),
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(document.encode("utf-8")).hexdigest()


def run_trace(
    flows_per_epoch: int,
    epochs: int,
    seed: int = SEED,
    storage=None,
    faults=None,
    node_budget: int = NODE_BUDGET,
) -> dict:
    """Drive the depth-4 trace once; returns structure + close timings."""
    runtime = build_runtime(
        storage=storage, faults=faults, node_budget=node_budget
    )
    generator = TrafficGenerator(
        TrafficConfig(sites=SITES, flows_per_epoch=flows_per_epoch),
        seed=seed,
    )
    close_seconds = 0.0
    for epoch in range(epochs):
        for site in SITES:
            runtime.ingest(f"network1/{site}", generator.epoch(site, epoch))
        started = time.perf_counter()
        runtime.close_epoch((epoch + 1) * 60.0)
        close_seconds += time.perf_counter() - started
    mass = runtime.query("SELECT TOTAL FROM ALL").scalar
    return {
        "engine": runtime.engine.name,
        "digest": root_digest(runtime),
        "wan_bytes": runtime.wan_bytes(),
        "root_mass_bytes": mass.bytes,
        "root_mass_flows": mass.flows,
        "entries": len(runtime.db),
        "pending_exports": runtime.pending_exports(),
        "restarts": runtime._restarts,
        "close_seconds": round(close_seconds, 6),
        "close_ms_per_epoch": round(close_seconds * 1000 / epochs, 3),
        "storage": runtime.storage_stats(),
    }


def measure_recovery(flows_per_epoch: int, epochs: int) -> list:
    """Reopen time vs segment count: one data dir per epoch count."""
    curve = []
    for count in range(1, epochs + 1):
        data_dir = tempfile.mkdtemp(prefix="repro-bench-recover-")
        try:
            run_trace(
                flows_per_epoch, count, storage=SegmentLogEngine(data_dir)
            )
            started = time.perf_counter()
            reopened = build_runtime(storage=SegmentLogEngine(data_dir))
            reopen_seconds = time.perf_counter() - started
            curve.append(
                {
                    "epochs": count,
                    "segments": len(reopened.engine.segments()),
                    "records": reopened._recovered_records,
                    "reopen_seconds": round(reopen_seconds, 6),
                }
            )
        finally:
            shutil.rmtree(data_dir, ignore_errors=True)
    return curve


def run_crash_drills(flows_per_epoch: int, epochs: int) -> dict:
    """Kill + recover the whole runtime at every epoch boundary."""
    drills = {}
    for boundary in range(epochs):
        data_dir = tempfile.mkdtemp(prefix="repro-bench-crash-")
        try:
            metrics = run_trace(
                flows_per_epoch,
                epochs,
                storage=SegmentLogEngine(data_dir),
                faults=FaultPlan.from_spec(f"restart=cloud:{boundary}"),
            )
        finally:
            shutil.rmtree(data_dir, ignore_errors=True)
        drills[str(boundary)] = {
            "digest": metrics["digest"],
            "root_mass_bytes": metrics["root_mass_bytes"],
            "restarts": metrics["restarts"],
        }
    return drills


def measure(flows_per_epoch: int, epochs: int) -> dict:
    """The full durability sweep: overhead, recovery, crash drills."""
    memory = run_trace(flows_per_epoch, epochs)
    data_dir = tempfile.mkdtemp(prefix="repro-bench-seg-")
    try:
        segment = run_trace(
            flows_per_epoch, epochs, storage=SegmentLogEngine(data_dir)
        )
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)
    drills = run_crash_drills(flows_per_epoch, epochs)
    results = {
        "memory": memory,
        "segment": segment,
        "close_overhead_ms_per_epoch": round(
            segment["close_ms_per_epoch"] - memory["close_ms_per_epoch"], 3
        ),
        "recovery_curve": measure_recovery(flows_per_epoch, epochs),
        "crash_drills": drills,
    }
    for drill in drills.values():
        drill["delivered_mass_pct"] = round(
            100.0 * drill["root_mass_bytes"] / memory["root_mass_bytes"], 3
        )
    return results


def check_claims(results: dict) -> None:
    """The qualitative claims any run of the sweep must satisfy."""
    memory, segment = results["memory"], results["segment"]
    # the segment log answers queries bit-identically to process memory
    assert segment["digest"] == memory["digest"]
    assert segment["wan_bytes"] == memory["wan_bytes"]
    assert segment["entries"] == memory["entries"]
    assert segment["pending_exports"] == 0
    assert segment["storage"]["segments"] >= 1
    assert segment["storage"]["manifest_writes"] >= 1
    # a crash at every boundary recovers to the uninterrupted run
    for boundary, drill in results["crash_drills"].items():
        assert drill["restarts"] == 1, boundary
        assert drill["digest"] == memory["digest"], boundary
        assert drill["delivered_mass_pct"] == 100.0, boundary
    # recovery re-indexes everything sealed so far, lazily
    curve = results["recovery_curve"]
    records = [point["records"] for point in curve]
    assert records == sorted(records)
    assert records[-1] == memory["entries"]


def rows_of(results: dict):
    rows = [
        (
            name,
            metrics["engine"],
            metrics["entries"],
            metrics["wan_bytes"],
            metrics["close_ms_per_epoch"],
            metrics["digest"][:12],
        )
        for name, metrics in (
            ("memory", results["memory"]),
            ("segment", results["segment"]),
        )
    ]
    for boundary, drill in sorted(results["crash_drills"].items()):
        rows.append(
            (
                f"crash@{boundary}",
                "segment-log",
                "-",
                "-",
                f"{drill['delivered_mass_pct']}%",
                drill["digest"][:12],
            )
        )
    return rows


COLUMNS = ("run", "engine", "entries", "wan B", "close ms | mass", "digest")


def test_durability_survives_crash_at_every_boundary(benchmark):
    """Crash drills recover bit-identical root state (small trace)."""
    results = benchmark.pedantic(
        lambda: measure(flows_per_epoch=400, epochs=2),
        rounds=1,
        iterations=1,
    )
    report(
        "Durability: engines, overhead, crash drills",
        rows_of(results),
        columns=COLUMNS,
    )
    benchmark.extra_info.update(
        {
            "close_overhead_ms": results["close_overhead_ms_per_epoch"],
            "segments": results["segment"]["storage"]["segments"],
        }
    )
    check_claims(results)


def main() -> None:
    results = measure(flows_per_epoch=3000, epochs=3)
    report(
        "Durability: engines, overhead, crash drills (full trace)",
        rows_of(results),
        columns=COLUMNS,
    )
    check_claims(results)
    baseline = {
        "trace": {
            "sites": list(SITES),
            "flows_per_epoch": 3000,
            "epochs": 3,
            "seed": SEED,
            "node_budget": NODE_BUDGET,
        },
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "results": results,
    }
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"\nwrote {BASELINE_PATH}")


if __name__ == "__main__":
    main()

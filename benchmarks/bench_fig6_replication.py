"""Figure 6: adaptive replication vs shipping — the Section VII trade-off.

Claims measured:

* always-ship and always-replicate are both dominated by adaptive
  policies on heavy-tailed access traces;
* the deterministic break-even rule stays within its 2x competitive
  bound of the offline optimum;
* the distribution-aware threshold (learning from completed partitions,
  as the paper proposes) matches or beats break-even across demand
  distributions;
* in the live system, replication converts WAN traffic into local reads.
"""

from __future__ import annotations


from benchmarks.conftest import report
from repro.core.flowtree import FlowtreePrimitive
from repro.core.primitive import QueryRequest
from repro.core.summary import Location
from repro.datastore.aggregator import Aggregator
from repro.datastore.storage import RoundRobinStorage
from repro.datastore.store import DataStore
from repro.hierarchy.network import NetworkFabric
from repro.hierarchy.topology import network_monitoring_hierarchy
from repro.replication.engine import (
    AdaptiveReplicationEngine,
    offline_optimal_cost,
    simulate_policy_on_trace,
)
from repro.replication.ski_rental import (
    BreakEvenPolicy,
    DistributionAwarePolicy,
    default_policies,
)
from repro.simulation.querytrace import QueryTraceConfig, QueryTraceGenerator

PARTITION_BYTES = 10_000_000


def make_trace(distribution: str, param: float, seed: int = 7):
    config = QueryTraceConfig(
        partitions=400,
        partition_bytes=PARTITION_BYTES,
        mean_result_bytes=1_000_000,
        run_length_distribution=distribution,
        run_length_param=param,
    )
    return QueryTraceGenerator(config, seed=seed).trace()


def test_policy_comparison_pareto(benchmark):
    """The headline Figure 6 comparison on a heavy-tailed trace."""
    trace = make_trace("pareto", 1.3)

    def sweep():
        optimal = offline_optimal_cost(trace, PARTITION_BYTES)
        rows = []
        for policy in default_policies(seed=1):
            costs = simulate_policy_on_trace(trace, policy, PARTITION_BYTES)
            rows.append(
                (
                    costs.policy,
                    costs.total_bytes,
                    costs.competitive_ratio(optimal),
                    costs.replications,
                    costs.accesses_served_locally,
                )
            )
        return optimal, rows

    optimal, rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "Fig. 6: policies on a Pareto access trace "
        f"(offline OPT = {optimal / 1e6:.0f} MB)",
        [
            (name, f"{total/1e6:.0f} MB", f"{ratio:.3f}", repl, local)
            for name, total, ratio, repl, local in rows
        ],
        columns=("policy", "network bytes", "vs OPT", "replications",
                 "local hits"),
    )
    ratios = {name: ratio for name, _, ratio, _, _ in rows}
    # the shape the figure claims:
    assert ratios["break-even"] <= 2.0 + 0.1
    assert ratios["break-even"] < ratios["always"]
    assert ratios["break-even"] < ratios["count>=3"]
    assert ratios["distribution-aware"] < ratios["always"]
    assert ratios["distribution-aware"] < ratios["randomized"]
    benchmark.extra_info["ratios"] = {k: round(v, 3) for k, v in
                                      ratios.items()}


def test_distribution_sweep(benchmark):
    """Break-even vs distribution-aware across demand families —
    learning the distribution pays once it is known (the [9,13]
    average-case result)."""

    def sweep():
        rows = []
        for distribution, param in (
            ("geometric", 1.0),
            ("pareto", 1.3),
            ("lognormal", 1.0),
        ):
            trace = make_trace(distribution, param)
            optimal = offline_optimal_cost(trace, PARTITION_BYTES)
            break_even = simulate_policy_on_trace(
                trace, BreakEvenPolicy(), PARTITION_BYTES
            )
            aware = simulate_policy_on_trace(
                trace, DistributionAwarePolicy(), PARTITION_BYTES
            )
            rows.append(
                (
                    distribution,
                    break_even.competitive_ratio(optimal),
                    aware.competitive_ratio(optimal),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "Fig. 6: break-even vs distribution-aware across demand families",
        [
            (dist, f"{be:.3f}", f"{aware:.3f}")
            for dist, be, aware in rows
        ],
        columns=("distribution", "break-even vs OPT",
                 "distribution-aware vs OPT"),
    )
    # learned thresholds must not lose badly anywhere, and must win
    # somewhere
    assert all(aware <= be * 1.10 for _, be, aware in rows)
    assert any(aware < be for _, be, aware in rows)


def test_live_engine_cuts_wan_traffic(benchmark, policy):
    """The live Figure 6 loop between two data stores: after the engine
    replicates a hot partition, repeat queries stop crossing the WAN."""
    hierarchy = network_monitoring_hierarchy(regions=2, routers_per_region=1)

    def run():
        fabric = NetworkFabric(hierarchy)
        producer_loc = Location("cloud/network/region1/router1")
        consumer_loc = Location("cloud/network/region2/router1")
        producer = DataStore(producer_loc, RoundRobinStorage(10**8),
                             fabric=fabric)
        consumer = DataStore(consumer_loc, RoundRobinStorage(10**8),
                             fabric=fabric)
        producer.add_peer(consumer)
        producer.install_aggregator(
            Aggregator("ft", FlowtreePrimitive(producer_loc, policy))
        )
        import random

        from repro.flows.flowkey import FIVE_TUPLE
        from repro.flows.records import FlowRecord

        rng = random.Random(1)
        for _ in range(300):
            key = FIVE_TUPLE.key(
                proto=6,
                src_ip=rng.randrange(2**32),
                dst_ip=rng.randrange(2**32),
                src_port=rng.randrange(2**16),
                dst_port=443,
            )
            record = FlowRecord(
                key=key, packets=10, bytes=10_000,
                first_seen=rng.uniform(0, 50), last_seen=55.0,
            )
            producer.ingest("flows", record, record.first_seen)
        producer.close_epoch(60.0)
        partition = producer.catalog.all()[0]
        engine = AdaptiveReplicationEngine(BreakEvenPolicy())

        wan_per_query = []
        for index in range(30):
            before = fabric.total_bytes()
            result = consumer.query_federated(
                "ft", QueryRequest("top_k", {"k": 50}), start=0.0,
                end=60.0, now=70.0 + index,
            )
            if result.source == "remote":
                engine.on_remote_access(
                    producer, consumer, partition.partition_id,
                    result.result_bytes, now=70.0 + index,
                )
            wan_per_query.append(fabric.total_bytes() - before)
        return wan_per_query, engine

    wan_per_query, engine = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "Fig. 6: WAN bytes per repeated query (live engine)",
        [(f"query {i}", wan) for i, wan in enumerate(wan_per_query)
         if i % 5 == 0 or wan != wan_per_query[max(0, i - 1)]],
    )
    assert engine.outcomes, "the engine never replicated"
    assert wan_per_query[0] > 0
    assert wan_per_query[-1] == 0, "post-replication queries must be local"

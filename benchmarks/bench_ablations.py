"""Ablations over the design choices called out in DESIGN.md §6.

* Flowtree node budget sweep — accuracy of Top-k under compression.
* Merge order — compress-then-merge vs merge-then-compress.
* Trigger placement — in-store trigger vs application-polled detection.
* Replication threshold sweep — total cost as the break-even point moves.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SITES, report
from repro.flows.tree import Flowtree
from repro.replication.engine import (
    offline_optimal_cost,
    simulate_policy_on_trace,
)
from repro.replication.ski_rental import PercentThresholdPolicy
from repro.simulation.querytrace import QueryTraceConfig, QueryTraceGenerator


@pytest.fixture(scope="module")
def records(traffic):
    return [r for e in range(2) for r in traffic.epoch(SITES[0], e)]


@pytest.fixture(scope="module")
def exact_top(policy, records):
    tree = Flowtree(policy, node_budget=None)
    tree.ingest(records)
    return [key for key, _ in tree.top_k(20)]


def test_node_budget_sweep(benchmark, policy, records, exact_top):
    """Top-k recall as the node budget shrinks: graceful degradation."""

    def sweep():
        rows = []
        for budget in (16384, 4096, 1024, 256, 64):
            tree = Flowtree(policy, node_budget=budget)
            tree.ingest(records)
            answered = [key for key, _ in tree.top_k(20)]
            recall = len(set(answered) & set(exact_top)) / len(exact_top)
            rows.append((budget, tree.node_count, recall,
                         tree.compressions))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "Ablation: Flowtree node budget vs top-20 recall",
        [
            (budget, nodes, f"{recall:.0%}", compressions)
            for budget, nodes, recall, compressions in rows
        ],
        columns=("budget", "nodes", "top-20 recall", "compressions"),
    )
    recalls = [recall for _, _, recall, _ in rows]
    assert recalls[0] >= 0.95, "large budgets must be near-exact"
    assert all(a >= b - 0.25 for a, b in zip(recalls, recalls[1:])), (
        "recall must degrade gracefully, not collapse between steps"
    )


def test_compression_trigger_policy(benchmark, policy, records, exact_top):
    """Eager vs lazy self-compression: a high compress ratio (shrink
    just below the budget) compresses often in small steps; a low ratio
    compresses rarely in big steps.  Work shifts, recall barely moves —
    the design choice is about smoothing latency, not accuracy."""

    def sweep():
        rows = []
        for ratio in (0.95, 0.8, 0.5, 0.25):
            tree = Flowtree(
                policy, node_budget=1024, compress_ratio=ratio
            )
            tree.ingest(records)
            answered = [key for key, _ in tree.top_k(20)]
            recall = len(set(answered) & set(exact_top)) / len(exact_top)
            rows.append((ratio, tree.compressions, recall))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "Ablation: compression trigger (budget 1024)",
        [
            (f"ratio {ratio}", passes, f"{recall:.0%}")
            for ratio, passes, recall in rows
        ],
        columns=("compress to", "passes", "top-20 recall"),
    )
    passes = [p for _, p, _ in rows]
    assert passes[0] > passes[-1], "eager compression must run more often"
    recalls = [r for _, _, r in rows]
    assert min(recalls) >= max(recalls) - 0.25


def test_merge_order(benchmark, policy, traffic):
    """compress(merge(A,B)) vs merge(compress(A),compress(B)):
    compressing late preserves more mass specificity."""
    a_records = traffic.epoch(SITES[0], 0)
    b_records = traffic.epoch(SITES[1], 0)
    target = 512

    def compare():
        a = Flowtree(policy, node_budget=None)
        b = Flowtree(policy, node_budget=None)
        a.ingest(a_records)
        b.ingest(b_records)
        exact = Flowtree.merged(a, b)
        exact_top = {key for key, _ in exact.top_k(20)}

        # late compression
        late = Flowtree.merged(a, b)
        late.compress(target_nodes=target)
        late_recall = len(
            {k for k, _ in late.top_k(20)} & exact_top
        ) / 20

        # early compression
        a_small, b_small = a.copy(), b.copy()
        a_small.compress(target_nodes=target // 2)
        b_small.compress(target_nodes=target // 2)
        early = Flowtree.merged(a_small, b_small)
        early.compress(target_nodes=target)
        early_recall = len(
            {k for k, _ in early.top_k(20)} & exact_top
        ) / 20
        return late_recall, early_recall, exact.total()

    late_recall, early_recall, exact_total = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    report(
        "Ablation: merge order (512-node result)",
        [
            ("compress after merge", f"{late_recall:.0%}"),
            ("compress before merge", f"{early_recall:.0%}"),
        ],
        columns=("order", "top-20 recall"),
    )
    # both orders conserve mass; late compression cannot be worse
    assert late_recall >= early_recall - 0.051


def test_trigger_placement(benchmark):
    """In-store trigger (paper design) vs application polling: detection
    delay for an out-of-range reading."""
    from repro.core.summary import Location
    from repro.core.timebin import TimeBinStatistics
    from repro.datastore.aggregator import Aggregator
    from repro.datastore.storage import RoundRobinStorage
    from repro.datastore.store import DataStore
    from repro.datastore.triggers import RawTrigger

    loc = Location("hq/factory1/line1")
    epoch_seconds = 60.0

    def run():
        store = DataStore(loc, RoundRobinStorage(10**7))
        store.install_aggregator(
            Aggregator("temps", TimeBinStatistics(loc, bin_seconds=1.0))
        )
        fired = {}
        store.install_raw_trigger(
            RawTrigger("hot", predicate=lambda v: v > 100)
        )
        store.subscribe_triggers(
            lambda firing: fired.setdefault("store", firing.time)
        )
        anomaly_at = 31.5
        t = 0.0
        while t < epoch_seconds:
            t += 1.0
            value = 200.0 if abs(t - anomaly_at) <= 0.5 else 40.0
            store.ingest("temps", value, t)
        store.close_epoch(epoch_seconds)
        # the polling application only sees data at the epoch boundary
        fired["app"] = epoch_seconds
        return anomaly_at, fired

    anomaly_at, fired = benchmark.pedantic(run, rounds=3, iterations=1)
    in_store_delay = fired["store"] - anomaly_at
    app_delay = fired["app"] - anomaly_at
    report(
        "Ablation: trigger placement (detection delay, seconds)",
        [
            ("in-store raw trigger", f"{in_store_delay:.1f}"),
            ("application poll (epoch)", f"{app_delay:.1f}"),
        ],
    )
    assert in_store_delay < 1.0
    assert app_delay > 10 * max(in_store_delay, 0.1)


def test_tiered_vs_flat_aggregation(benchmark, policy):
    """Flat (router -> cloud) vs tiered (router -> region -> cloud):
    the mid-tier merge of Figure 2b dedups shared generalized nodes and
    cuts WAN volume further, at identical query answers."""
    from repro.flowstream.system import Flowstream
    from repro.flowstream.tiered import TieredFlowstream
    from repro.simulation.traffic import TrafficConfig, TrafficGenerator

    sites = [
        "region1/router1", "region1/router2",
        "region2/router1", "region2/router2",
    ]
    generator = TrafficGenerator(
        TrafficConfig(sites=tuple(sites), flows_per_epoch=1000), seed=61
    )

    def run_both():
        flat = Flowstream(sites=sites, node_budget=4096, policy=policy)
        tiered = TieredFlowstream(
            sites=sites, router_node_budget=4096, region_node_budget=4096,
            policy=policy,
        )
        for epoch in range(2):
            for site in sites:
                records = generator.epoch(site, epoch)
                flat.ingest(site, records)
                tiered.ingest(site, records)
            flat.close_epoch((epoch + 1) * 60.0)
            tiered.close_epoch((epoch + 1) * 60.0)
        return flat, tiered

    flat, tiered = benchmark.pedantic(run_both, rounds=1, iterations=1)
    flat_wan = flat.wan_summary_bytes()
    tiered_wan = tiered.wan_bytes()
    report(
        "Ablation: flat vs tiered aggregation (WAN summary bytes)",
        [
            ("flat (router->cloud)", f"{flat_wan:,}"),
            ("tiered (router->region->cloud)", f"{tiered_wan:,}"),
            ("saving", f"{1 - tiered_wan / flat_wan:.0%}"),
        ],
    )
    assert tiered_wan < flat_wan
    assert (
        tiered.query("SELECT TOTAL FROM ALL").scalar
        == flat.query("SELECT TOTAL FROM ALL").scalar
    )


def test_replication_threshold_sweep(benchmark):
    """Total cost as the buy threshold moves from 'always' to 'never':
    the classic U-shape with the break-even region near the bottom."""
    trace = QueryTraceGenerator(
        QueryTraceConfig(
            partitions=300,
            partition_bytes=10_000_000,
            mean_result_bytes=1_000_000,
        ),
        seed=21,
    ).trace()

    def sweep():
        optimal = offline_optimal_cost(trace, 10_000_000)
        rows = []
        for percent in (1, 10, 25, 50, 100, 200, 400, 10**6):
            costs = simulate_policy_on_trace(
                trace, PercentThresholdPolicy(percent), 10_000_000
            )
            rows.append((percent, costs.competitive_ratio(optimal)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "Ablation: replication threshold sweep (percent of partition size)",
        [(f"{p}%", f"{ratio:.3f}") for p, ratio in rows],
        columns=("threshold", "vs OPT"),
    )
    ratios = [ratio for _, ratio in rows]
    best = min(ratios)
    # the extremes (buy at 1%, never buy) are both worse than the middle
    assert ratios[0] > best
    assert ratios[-1] > best

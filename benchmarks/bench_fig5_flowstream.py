"""Figure 5: the Flowstream system end to end.

Claims measured:

* the router → data store → Flowtree → FlowDB path works at multi-site,
  multi-epoch scale with a large raw-to-summary reduction factor;
* FlowQL answers the Section II.B question catalogue (trends, matrices,
  incidents, interactive queries) on merged summaries;
* merged-summary answers stay close to exact ground truth for aggregate
  (prefix-level) queries despite compression.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SITES, report
from repro.flowstream.system import Flowstream
from repro.simulation.traffic import TrafficConfig, TrafficGenerator

EPOCHS = 4


@pytest.fixture(scope="module")
def generator():
    return TrafficGenerator(
        TrafficConfig(sites=SITES, flows_per_epoch=2000), seed=99
    )


@pytest.fixture(scope="module")
def loaded_system(generator):
    system = Flowstream(sites=list(SITES), node_budget=4096)
    for epoch in range(EPOCHS):
        for site in SITES:
            system.ingest(site, generator.epoch(site, epoch))
        system.close_epoch((epoch + 1) * 60.0)
    return system


def test_ingest_to_export_pipeline(benchmark, generator):
    """Steps 1-4: one epoch from router export to FlowDB entry."""

    def one_epoch():
        system = Flowstream(sites=[SITES[0]], node_budget=4096)
        system.ingest(SITES[0], generator.epoch(SITES[0], 0))
        system.close_epoch(60.0)
        return system

    system = benchmark.pedantic(one_epoch, rounds=3, iterations=1)
    assert len(system.db) == 1
    report(
        "Fig. 5: single-epoch volumes",
        [
            ("raw bytes observed", system.stats.raw_bytes),
            ("summary bytes exported", system.stats.exported_bytes),
            ("reduction", f"{system.stats.reduction_factor:.0f}x"),
        ],
    )
    assert system.stats.reduction_factor > 10


def test_flowql_query_mix(benchmark, loaded_system):
    """Step 5: the Section II.B question catalogue over FlowDB."""
    queries = [
        # (a) network trends: popular applications
        "SELECT GROUPBY(dst_port, 16) FROM ALL BY bytes",
        # (a) popular traffic sources
        "SELECT GROUPBY(src_ip, 8) FROM ALL BY bytes",
        # (b) traffic matrix row: per-site totals
        f"SELECT TOTAL FROM ALL AT {SITES[0]}",
        # (c) incident investigation: what changed between epochs
        "SELECT TOPK(10) FROM TIME(180, 240) VS TIME(120, 180) BY bytes",
        # (d) dynamic traffic engineering: heavy prefixes across sites
        "SELECT HHH(0.02) FROM ALL BY bytes",
        # (e) interactive query on the network state
        "SELECT QUERY FROM TIME(0, 120) WHERE dst_port = 443",
    ]

    def run_mix():
        return [loaded_system.query(text) for text in queries]

    results = benchmark.pedantic(run_mix, rounds=3, iterations=1)
    report(
        "Fig. 5: FlowQL query mix",
        [
            (query[:60], len(result.rows) if result.rows else "scalar")
            for query, result in zip(queries, results)
        ],
        columns=("query", "rows"),
    )
    assert all(
        result.rows or result.scalar is not None for result in results
    )


def test_merged_accuracy_vs_ground_truth(benchmark, loaded_system, generator):
    """Compression keeps aggregate answers near-exact.

    Per-/8-source-prefix byte counts from the merged, compressed trees
    are compared with exact ground truth recomputed from the raw
    records; compressed mass only loses *specificity*, so prefix-level
    sums must stay within a small relative error.
    """

    def measure():
        result = loaded_system.query(
            "SELECT GROUPBY(src_ip, 8) FROM ALL BY bytes"
        )
        answered = {row[0]: row[2] for row in result.rows}
        truth = {}
        for epoch in range(EPOCHS):
            for site in SITES:
                for record in generator.epoch(site, epoch):
                    octet = record.key.feature_value("src_ip") >> 24
                    truth[octet] = truth.get(octet, 0) + record.bytes
        return answered, truth

    answered, truth = benchmark.pedantic(measure, rounds=1, iterations=1)
    total_truth = sum(truth.values())
    total_answered = sum(answered.values())
    rows = []
    for flow_text, measured in sorted(
        answered.items(), key=lambda pair: -pair[1]
    ):
        octet = int(flow_text.split("src_ip=")[1].split(".")[0])
        exact = truth.get(octet, 0)
        error = abs(measured - exact) / max(1, exact)
        rows.append((flow_text[:50], exact, measured, f"{error:.2%}"))
    report(
        "Fig. 5: merged answers vs ground truth (per /8 source)",
        rows,
        columns=("prefix", "exact", "merged", "rel err"),
    )
    # totals are conserved exactly; per-prefix answers are lower bounds
    # that stay within 20% on the heavy prefixes
    assert total_answered <= total_truth
    assert total_answered >= 0.95 * total_truth
    heavy = [r for r in rows if r[1] > total_truth * 0.05]
    for _prefix, exact, measured, _err in heavy:
        assert measured >= 0.8 * exact

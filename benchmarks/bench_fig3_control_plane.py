"""Figure 3: control cycle vs adaptive cycle, and Manager reconfiguration.

Claims measured here:

* **Fig. 3a** — the trigger→controller control cycle is orders of
  magnitude faster than the analytics→application adaptive cycle, which
  is why machines "may not be able to wait for input from applications".
* **Fig. 3b** — the Manager can change a primitive's parameters on a
  running store (un/subscribe, change parameter) and the aggregator
  self-adapts to rate changes between epochs.
"""

from __future__ import annotations

import time as wallclock


from benchmarks.conftest import report
from repro.control.controller import Controller
from repro.control.manager import Manager
from repro.control.requirements import ApplicationRequirement
from repro.control.rules import ControlRule
from repro.core.primitive import QueryRequest
from repro.core.summary import Location
from repro.datastore.aggregator import Aggregator
from repro.datastore.storage import RoundRobinStorage
from repro.datastore.store import DataStore
from repro.datastore.triggers import TriggerFiring
from repro.simulation.sensors import Actuator

LOC = Location("hq/factory1/line1")


def test_control_cycle_latency(benchmark):
    """Trigger firing → rule match → actuation (the fast path)."""
    controller = Controller(LOC)
    controller.register_actuator(Actuator("arm", LOC))
    controller.install_rule(
        ControlRule("stop", command="stop", target_actuator="arm")
    )
    firing = TriggerFiring(
        trigger_id="t", stream_id="s", time=0.0, payload=1, installed_by="x"
    )
    benchmark(lambda: controller.on_trigger(firing))
    assert controller.actions


def test_adaptive_cycle_latency(benchmark):
    """Epoch close → window query → app decision (the slow path)."""
    store = DataStore(LOC, RoundRobinStorage(10**7))
    store.install_aggregator(
        Aggregator(
            "temps",
            __import__(
                "repro.core.timebin", fromlist=["TimeBinStatistics"]
            ).TimeBinStatistics(LOC, bin_seconds=1.0),
        )
    )
    clock = {"t": 0.0}

    def one_cycle():
        start = clock["t"]
        for i in range(600):
            clock["t"] += 1.0
            store.ingest("temps", 40.0 + i * 0.01, clock["t"])
        store.close_epoch(clock["t"])
        result = store.query(
            "temps",
            QueryRequest("stats", {}),
            start=start,
            end=clock["t"],
            now=clock["t"],
        )
        return result.value

    stats = benchmark.pedantic(one_cycle, rounds=5, iterations=1)
    assert stats.count == 600


def test_cycle_separation(benchmark, policy):
    """The paper's premise: control cycle << adaptive cycle."""
    controller = Controller(LOC)
    controller.register_actuator(Actuator("arm", LOC))
    controller.install_rule(
        ControlRule("stop", command="stop", target_actuator="arm")
    )
    firing = TriggerFiring(
        trigger_id="t", stream_id="s", time=0.0, payload=1, installed_by="x"
    )
    def thousand_triggers():
        for _ in range(1000):
            controller.on_trigger(firing)

    started = wallclock.perf_counter()
    benchmark.pedantic(thousand_triggers, rounds=1, iterations=1)
    control_cycle = (wallclock.perf_counter() - started) / 1000

    store = DataStore(LOC, RoundRobinStorage(10**7))
    from repro.core.timebin import TimeBinStatistics

    store.install_aggregator(
        Aggregator("temps", TimeBinStatistics(LOC, bin_seconds=1.0))
    )
    started = wallclock.perf_counter()
    for i in range(600):
        store.ingest("temps", 1.0, float(i))
    store.close_epoch(600.0)
    store.query(
        "temps", QueryRequest("stats", {}), start=0.0, end=600.0, now=600.0
    )
    adaptive_cycle = wallclock.perf_counter() - started
    report(
        "Fig. 3a: cycle latencies (wall-clock seconds)",
        [
            ("control cycle (per trigger)", f"{control_cycle:.2e}"),
            ("adaptive cycle (per epoch)", f"{adaptive_cycle:.2e}"),
            ("separation", f"{adaptive_cycle / control_cycle:.0f}x"),
        ],
    )
    assert adaptive_cycle > 10 * control_cycle


def test_manager_reconfiguration(benchmark):
    """Fig. 3b: change-parameter and un/subscribe through the Manager."""
    manager = Manager()
    store = DataStore(LOC, RoundRobinStorage(10**7))
    manager.register_store(store)

    def reconfigure():
        manager.submit_requirement(
            ApplicationRequirement(
                app_name="app",
                aggregator_name="temps",
                kind="timebin",
                location=LOC,
                config={"bin_seconds": 1.0},
            )
        )
        store.ingest("s", 1.0, 0.5)
        manager.retune(LOC, "temps", 60.0)
        width = store.aggregator("temps").primitive.bin_seconds
        manager.withdraw_application("app")
        return width

    width = benchmark.pedantic(reconfigure, rounds=20, iterations=1)
    assert width == 60.0
    assert not store.aggregators()  # unsubscribe completed


def test_self_adaptation_to_rate_change(benchmark):
    """Aggregators re-tune between epochs when the stream rate explodes
    and storage pressure mounts (the adaptive cycle's purpose)."""
    from repro.core.sampling import RandomSamplePrimitive

    def run():
        store = DataStore(LOC, RoundRobinStorage(200_000))
        sampler = RandomSamplePrimitive(LOC, rate=1.0, seed=1)
        store.install_aggregator(Aggregator("s", sampler))
        rates = []
        t = 0.0
        for epoch in range(6):
            # rate doubles every epoch: 1k, 2k, 4k ... items
            for _ in range(1000 * 2**epoch):
                t += 0.001
                store.ingest("s", 1.0, t)
            store.close_epoch(t)
            rates.append(sampler.rate)
        return rates

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "Fig. 3b: sampler rate under storage pressure",
        [(f"epoch {i}", f"{rate:.4f}") for i, rate in enumerate(rates)],
    )
    assert rates[-1] < rates[0], "sampler must shed load as pressure rises"

"""Flowtree hot-path throughput: optimized ingest vs. the pre-overhaul
implementation.

Every subsystem's throughput rides on ``Flowtree.add`` — datastore
aggregators, Flowstream, the tiered hierarchy, and all paper benchmarks
funnel records through it — so this module is the repo's perf anchor.
It embeds :class:`BaselineFlowtree`, a faithful copy of the
pre-overhaul hot path (per-level ``tuple``/``zip`` projection done twice
per level, frozen :class:`Score` allocation per update, per-record
budget checks, full heap rebuild per compression pass), ingests the
same Zipf flow trace through both implementations, and asserts:

* the optimized path is at least ``MIN_SPEEDUP``× faster (records/s);
* the answers are identical — ``tree.total()`` equals the summed record
  scores exactly, and ``top_k``/``hhh``/``query`` agree between the two
  trees on the stable (heavy) part of the distribution.

Run as a script to execute the full 100k-record trace and (re)write the
committed baseline ``BENCH_flowtree.json`` at the repo root:

```bash
PYTHONPATH=src python benchmarks/bench_flowtree_hotpath.py
```

``benchmarks/check_regression.py`` compares a fresh run against that
file.  The pytest entry point uses a smaller trace so
``pytest benchmarks/`` stays quick.
"""

from __future__ import annotations

import heapq
import itertools
import json
import random
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.flows.columnar import (
    HAVE_NUMPY,
    SCALAR_FALLBACK_RECORDS,
    ColumnarBatch,
    ingest_batch,
)
from repro.flows.flowkey import FIVE_TUPLE, FlowKey, GeneralizationPolicy
from repro.flows.records import FlowRecord, Score
from repro.flows.tree import Flowtree
from repro.parallel import (
    ParallelIngestConfig,
    ShardedIngestPool,
    SiteShardSpec,
)
from repro.simulation.traffic import TrafficConfig, TrafficGenerator

try:  # script mode runs without pytest on the path
    from benchmarks.conftest import report
except ImportError:  # pragma: no cover
    def report(title, rows, columns=None):
        print(f"\n=== {title} ===")
        if columns:
            print("  " + " | ".join(str(c) for c in columns))
        for row in rows:
            print("  " + " | ".join(str(c) for c in row))

#: The committed throughput baseline (repo root).
BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_flowtree.json"

TRACE_RECORDS = 100_000
TRACE_SEED = 2019
TRACE_SITE = "bench/router1"
NODE_BUDGET = 4096
MIN_SPEEDUP = 3.0

# -- parallel sharded ingest arm ---------------------------------------
# The parallel arm uses a *re-export* trace: a fixed population of
# heavy-hitter flows exported over and over (routers re-export active
# flows every interval), so the tree reaches steady state and the
# per-record cost is dominated by updates rather than node births.
PARALLEL_TRACE_RECORDS = 100_000
PARALLEL_UNIQUE_FLOWS = 10_000
PARALLEL_RESAMPLE_SEED = 7
PARALLEL_NODE_BUDGET = 65_536
PARALLEL_WORKER_COUNTS = (1, 2, 4)
PARALLEL_ROUNDS = 5
MIN_PARALLEL_SPEEDUP = 4.0
#: depth of the default chain at which both src and dst are /16 — deep
#: enough to rank real prefixes, shallow enough that the heavy nodes are
#: orders of magnitude above any compression victim (answer-stable).
ANSWER_DEPTH = 4
TOP_K = 10


class BaselineFlowtree:
    """The pre-overhaul Flowtree ingest/compress path, verbatim.

    Kept here (not in :mod:`repro`) so the production tree carries no
    dead code; the differential tests in
    ``tests/test_flowtree_fastpath_reference.py`` pin semantics, this
    class pins the *cost* being compared against.
    """

    class Node:
        __slots__ = ("depth", "values", "own", "folded", "subtree", "children")

        def __init__(self, depth: int, values: Tuple[int, ...]) -> None:
            self.depth = depth
            self.values = values
            self.own = Score.zero()
            self.folded = Score.zero()
            self.subtree = Score.zero()
            self.children: Dict[Tuple[int, ...], "BaselineFlowtree.Node"] = {}

        def is_leaf(self) -> bool:
            return not self.children

    def __init__(
        self,
        policy: GeneralizationPolicy,
        node_budget: Optional[int] = 4096,
        compress_ratio: float = 0.8,
        metric: str = "bytes",
    ) -> None:
        self.policy = policy
        self.schema = policy.schema
        self.node_budget = node_budget
        self.compress_ratio = compress_ratio
        self.metric = metric
        root = self.Node(0, self._project((0,) * len(self.schema), 0))
        self._nodes: Dict[Tuple[int, Tuple[int, ...]], BaselineFlowtree.Node]
        self._nodes = {(0, root.values): root}
        self._root = root
        self.compressions = 0

    # the pre-overhaul GeneralizationPolicy.project: per-call zip and
    # bound-method mask dispatch, no precompiled mask tables
    def _project(self, values: Sequence[int], depth: int) -> Tuple[int, ...]:
        levels = self.policy.levels_at(depth)
        return tuple(
            feature.mask(value, level)
            for feature, value, level in zip(
                self.schema.features, values, levels
            )
        )

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    def total(self) -> Score:
        return self._root.subtree

    def add(self, key: FlowKey, score: Score) -> None:
        depth = self.policy.depth_of(key.levels)
        node = self._ensure_chain(key.values, depth)
        node.own = node.own + score
        self._bubble(node.values, depth, score)
        if self.node_budget is not None and self.node_count > self.node_budget:
            self.compress(int(self.node_budget * self.compress_ratio))
            self.compressions += 1

    def ingest(self, records: Iterable[FlowRecord]) -> int:
        count = 0
        for record in records:
            self.add(record.key, record.score())
            count += 1
        return count

    def _ensure_chain(self, values: Sequence[int], depth: int) -> "Node":
        parent = self._root
        for d in range(1, depth + 1):
            projected = self._project(values, d)
            node = self._nodes.get((d, projected))
            if node is None:
                node = self.Node(d, projected)
                self._nodes[(d, projected)] = node
                parent.children[projected] = node
            parent = node
        return parent

    def _bubble(self, values: Sequence[int], depth: int, score: Score) -> None:
        for d in range(depth + 1):
            projected = self._project(values, d)
            self._nodes[(d, projected)].subtree = (
                self._nodes[(d, projected)].subtree + score
            )

    def compress(self, target_nodes: int) -> int:
        metric_name = self.metric
        if self.node_count <= target_nodes:
            return 0
        counter = itertools.count()
        heap: List[Tuple[int, int, Tuple[int, Tuple[int, ...]]]] = []
        for node in self._nodes.values():
            if node.depth > 0 and node.is_leaf():
                heapq.heappush(
                    heap,
                    (
                        node.subtree.metric(metric_name),
                        next(counter),
                        (node.depth, node.values),
                    ),
                )
        removed = 0
        while self.node_count > target_nodes and heap:
            _, _, node_id = heapq.heappop(heap)
            node = self._nodes.get(node_id)
            if node is None or not node.is_leaf() or node.depth == 0:
                continue
            projected = self._project(node.values, node.depth - 1)
            parent = self._nodes[(node.depth - 1, projected)]
            parent.folded = parent.folded + node.own + node.folded
            del parent.children[node.values]
            del self._nodes[node_id]
            removed += 1
            if parent.depth > 0 and parent.is_leaf():
                heapq.heappush(
                    heap,
                    (
                        parent.subtree.metric(metric_name),
                        next(counter),
                        (parent.depth, parent.values),
                    ),
                )
        return removed

    def merge(self, other: "BaselineFlowtree") -> None:
        for node in sorted(other._nodes.values(), key=lambda n: n.depth):
            if node.depth == 0:
                self._root.own = self._root.own + node.own
                self._root.folded = self._root.folded + node.folded
                self._root.subtree = self._root.subtree + node.subtree
                continue
            mine = self._ensure_chain(node.values, node.depth)
            mine.own = mine.own + node.own
            mine.folded = mine.folded + node.folded
            contribution = node.own + node.folded
            if not contribution.is_zero():
                for d in range(1, node.depth + 1):
                    projected = self._project(node.values, d)
                    target = self._nodes[(d, projected)]
                    target.subtree = target.subtree + contribution
        if self.node_budget is not None and self.node_count > self.node_budget:
            self.compress(int(self.node_budget * self.compress_ratio))
            self.compressions += 1

    def top_k(self, k: int, depth: int) -> List[Tuple[Tuple[int, ...], int]]:
        metric_name = self.metric
        candidates = [n for n in self._nodes.values() if n.depth == depth]
        candidates.sort(
            key=lambda n: (-n.subtree.metric(metric_name), n.values)
        )
        return [
            (n.values, n.subtree.metric(metric_name)) for n in candidates[:k]
        ]


# ----------------------------------------------------------------------
# trace + measurement

def make_trace(records: int, seed: int = TRACE_SEED) -> List[FlowRecord]:
    """One epoch of Zipf-popular flow exports from a single router."""
    generator = TrafficGenerator(
        TrafficConfig(sites=(TRACE_SITE,), flows_per_epoch=records),
        seed=seed,
    )
    return generator.epoch(TRACE_SITE, 0)


def run_fast(
    records: List[FlowRecord], policy: GeneralizationPolicy
) -> Tuple[Flowtree, float]:
    tree = Flowtree(policy, node_budget=NODE_BUDGET)
    started = time.perf_counter()
    tree.ingest(records)
    return tree, time.perf_counter() - started


def run_baseline(
    records: List[FlowRecord], policy: GeneralizationPolicy
) -> Tuple[BaselineFlowtree, float]:
    tree = BaselineFlowtree(policy, node_budget=NODE_BUDGET)
    started = time.perf_counter()
    tree.ingest(records)
    return tree, time.perf_counter() - started


def check_answers(
    fast: Flowtree,
    baseline: BaselineFlowtree,
    records: List[FlowRecord],
) -> List[Tuple[Tuple[int, ...], int]]:
    """Assert both trees answer identically; returns the shared top-k."""
    expected = Score.zero()
    for record in records:
        expected = expected + record.score()
    assert fast.total() == expected, "fast tree lost mass"
    assert baseline.total() == expected, "baseline tree lost mass"

    fast_top = [
        (key.values, score.metric(fast.metric))
        for key, score in fast.top_k(TOP_K, depth=ANSWER_DEPTH)
    ]
    base_top = baseline.top_k(TOP_K, depth=ANSWER_DEPTH)
    assert fast_top == base_top, "top_k answers diverged"

    threshold = max(1, expected.metric(fast.metric) // 100)  # 1% of mass
    fast_hhh = [
        (r.key.values, r.key.levels, r.residual.metric(fast.metric))
        for r in fast.hhh(threshold)
    ]
    base_like = Flowtree(fast.policy, node_budget=None)
    for node in baseline._nodes.values():
        contribution = node.own + node.folded
        if not contribution.is_zero():
            key = FlowKey(
                baseline.schema,
                node.values,
                baseline.policy.levels_at(node.depth),
            )
            base_like.add(key, contribution)
    base_hhh = [
        (r.key.values, r.key.levels, r.residual.metric(fast.metric))
        for r in base_like.hhh(threshold)
    ]
    assert fast_hhh == base_hhh, "hhh answers diverged"

    for values, metric_value in fast_top:
        key = FlowKey(
            fast.schema, values, fast.policy.levels_at(ANSWER_DEPTH)
        )
        fast_answer = fast.query(key).metric(fast.metric)
        base_node = baseline._nodes[(ANSWER_DEPTH, values)]
        assert fast_answer == base_node.subtree.metric(fast.metric) == (
            metric_value
        ), f"query answer diverged for {values}"
    return fast_top


def run_hotpath(records_count: int = TRACE_RECORDS) -> dict:
    """Run both implementations over one trace; return the measurements."""
    policy = GeneralizationPolicy.default_for(FIVE_TUPLE)
    records = make_trace(records_count)
    baseline_tree, baseline_seconds = run_baseline(records, policy)
    fast_tree, fast_seconds = run_fast(records, policy)
    check_answers(fast_tree, baseline_tree, records)

    # merge cost rides along: two half-trace trees folded together
    half = len(records) // 2
    fast_a = Flowtree(policy, node_budget=NODE_BUDGET)
    fast_a.ingest(records[:half])
    fast_b = Flowtree(policy, node_budget=NODE_BUDGET)
    fast_b.ingest(records[half:])
    started = time.perf_counter()
    fast_a.merge(fast_b)
    fast_merge_seconds = time.perf_counter() - started

    base_a = BaselineFlowtree(policy, node_budget=NODE_BUDGET)
    base_a.ingest(records[:half])
    base_b = BaselineFlowtree(policy, node_budget=NODE_BUDGET)
    base_b.ingest(records[half:])
    started = time.perf_counter()
    base_a.merge(base_b)
    base_merge_seconds = time.perf_counter() - started

    count = len(records)
    return {
        "benchmark": "flowtree_hotpath",
        "trace": {
            "records": count,
            "seed": TRACE_SEED,
            "site": TRACE_SITE,
            "schema": "five_tuple",
            "node_budget": NODE_BUDGET,
        },
        "baseline_records_per_s": round(count / baseline_seconds, 1),
        "fast_records_per_s": round(count / fast_seconds, 1),
        "ingest_speedup": round(baseline_seconds / fast_seconds, 2),
        "baseline_merge_ms": round(base_merge_seconds * 1000, 2),
        "fast_merge_ms": round(fast_merge_seconds * 1000, 2),
        "merge_speedup": round(base_merge_seconds / fast_merge_seconds, 2),
        "fast_compressions": fast_tree.compressions,
        "baseline_compressions": baseline_tree.compressions,
        "generated_by": "benchmarks/bench_flowtree_hotpath.py",
    }


def run_small_batch_crossover(
    sizes: Sequence[int] = (64, 128, 256, 1024, 4096),
    trace_records: int = 40_000,
) -> dict:
    """Pin the columnar window planner's small-batch crossover.

    ``ingest_batch`` routes batches at or below
    ``SCALAR_FALLBACK_RECORDS`` down the scalar ``add_many`` walk
    because the planner's fixed per-chunk cost dominates there.  This
    arm measures the *planner* path against the scalar fallback at
    sizes straddling the threshold and asserts the routing is sane:
    below the threshold the fallback must not lose, so a planner
    overhead fix (or regression) that moves the crossover shows up
    here instead of silently mis-routing small batches.
    """
    policy = GeneralizationPolicy.default_for(FIVE_TUPLE)
    records = make_trace(trace_records)
    curve: Dict[str, dict] = {}
    for size in sizes:
        count = max(4, min(50, len(records) // size))
        batches = [
            ColumnarBatch.encode(
                records[i * size : (i + 1) * size], FIVE_TUPLE
            )
            for i in range(count)
        ]
        # the planner path, forced (threshold bypassed via chunks of
        # exactly `size` fed to a fresh tree through ingest_batch with
        # the fallback disabled by measuring add_many separately)
        planner_tree = Flowtree(policy, node_budget=NODE_BUDGET)
        started = time.perf_counter()
        for batch in batches:
            _ingest_batch_planner(planner_tree, batch)
        planner_seconds = time.perf_counter() - started
        scalar_tree = Flowtree(policy, node_budget=NODE_BUDGET)
        started = time.perf_counter()
        for batch in batches:
            scalar_tree.add_many(
                (
                    (record.key, record.score())
                    for record in batch.decode(FIVE_TUPLE)
                )
            )
        scalar_seconds = time.perf_counter() - started
        assert planner_tree.total() == scalar_tree.total(), (
            f"planner/scalar divergence at batch size {size}"
        )
        curve[str(size)] = {
            "planner_ms_per_batch": round(
                planner_seconds / count * 1000, 3
            ),
            "scalar_ms_per_batch": round(
                scalar_seconds / count * 1000, 3
            ),
            "planner_over_scalar": round(
                planner_seconds / scalar_seconds, 2
            ),
        }
    return {
        "threshold_records": SCALAR_FALLBACK_RECORDS,
        "curve": curve,
    }


def _ingest_batch_planner(tree: Flowtree, batch: ColumnarBatch) -> int:
    """``ingest_batch`` with the small-batch fallback disabled."""
    from repro.flows import columnar

    saved = columnar.SCALAR_FALLBACK_RECORDS
    columnar.SCALAR_FALLBACK_RECORDS = 0
    try:
        return ingest_batch(tree, batch)
    finally:
        columnar.SCALAR_FALLBACK_RECORDS = saved


def print_small_batch_results(results: dict) -> None:
    rows = [
        (
            size,
            f"{data['planner_ms_per_batch']:.2f} ms",
            f"{data['scalar_ms_per_batch']:.2f} ms",
            f"{data['planner_over_scalar']:.2f}x",
        )
        for size, data in results["curve"].items()
    ]
    report(
        f"Columnar window planner vs scalar walk "
        f"(fallback at <= {results['threshold_records']})",
        rows,
        columns=("batch", "planner", "scalar", "planner/scalar"),
    )


def print_results(results: dict) -> None:
    report(
        "Flowtree hot path: optimized vs pre-overhaul",
        [
            (
                "ingest",
                f"{results['baseline_records_per_s']:.0f} rec/s",
                f"{results['fast_records_per_s']:.0f} rec/s",
                f"{results['ingest_speedup']:.2f}x",
            ),
            (
                "merge",
                f"{results['baseline_merge_ms']:.1f} ms",
                f"{results['fast_merge_ms']:.1f} ms",
                f"{results['merge_speedup']:.2f}x",
            ),
        ],
        columns=("op", "baseline", "optimized", "speedup"),
    )


# ----------------------------------------------------------------------
# parallel sharded ingest: cores-vs-throughput curve

def make_reexport_trace(
    records: int = PARALLEL_TRACE_RECORDS,
    unique_flows: int = PARALLEL_UNIQUE_FLOWS,
    seed: int = TRACE_SEED,
) -> List[FlowRecord]:
    """Heavy-hitter re-export mix: ``unique_flows`` distinct flows
    resampled with replacement to ``records`` exports.

    Built ONCE per run and shared by every arm (serial scalar, serial
    columnar, and each worker count) so all arms measure the same work.
    """
    epoch = make_trace(unique_flows, seed=seed)
    rng = random.Random(PARALLEL_RESAMPLE_SEED)
    count = len(epoch)
    return [epoch[rng.randrange(count)] for _ in range(records)]


def _best_serial_arms(
    records: List[FlowRecord],
    policy: GeneralizationPolicy,
    rounds: int,
) -> Tuple[Flowtree, float, float]:
    """Best-of-``rounds`` scalar and columnar ingest, arms alternating
    within each round so neither systematically sees a warmer cache."""
    batch = ColumnarBatch.encode(records, policy.schema)
    scalar_tree: Optional[Flowtree] = None
    scalar_best = columnar_best = float("inf")
    for _ in range(rounds):
        tree = Flowtree(policy, node_budget=PARALLEL_NODE_BUDGET)
        started = time.perf_counter()
        tree.ingest(records)
        scalar_best = min(scalar_best, time.perf_counter() - started)
        scalar_tree = tree

        tree = Flowtree(policy, node_budget=PARALLEL_NODE_BUDGET)
        started = time.perf_counter()
        tree.ingest_columnar(batch)
        columnar_best = min(columnar_best, time.perf_counter() - started)
        assert tree.snapshot_state() == scalar_tree.snapshot_state(), (
            "columnar ingest diverged from scalar"
        )
    assert scalar_tree is not None
    return scalar_tree, scalar_best, columnar_best


def _run_parallel_arm(
    records: List[FlowRecord],
    policy: GeneralizationPolicy,
    workers: int,
    rounds: int,
) -> Tuple[dict, float, float]:
    """One worker-count arm: ``workers`` sites, one worker per site,
    every site ingesting the full trace (weak scaling — in the paper's
    model each site exports its own stream, and workers scale with
    sites, so aggregate throughput is what N cores sustain on N
    streams).

    Returns ``(first_round_summaries, best_capacity, best_wall)`` where
    capacity is the sum of per-worker ``records / busy_cpu_seconds`` —
    the aggregate rate the workers sustain while actually ingesting.
    On a host with >= ``workers`` cores wall-clock converges to the
    same number; on fewer cores the workers time-slice one CPU and
    wall-clock reflects that, so both are reported.
    """
    sites = [f"{TRACE_SITE}/shard{i}" for i in range(workers)]
    specs = {
        site: SiteShardSpec(node_budget=PARALLEL_NODE_BUDGET)
        for site in sites
    }
    config = ParallelIngestConfig(workers=workers)
    first_summaries: Optional[dict] = None
    best_capacity = 0.0
    best_wall = float("inf")
    for _ in range(rounds):
        with ShardedIngestPool(policy, specs, config) as pool:
            started = time.perf_counter()
            for site in sites:
                pool.submit(site, records)
            summaries = pool.flush()
            wall = time.perf_counter() - started
            stats = pool.worker_stats()
        capacity = sum(
            ws.records_done / ws.busy_seconds
            for ws in stats
            if ws.busy_seconds > 0
        )
        best_capacity = max(best_capacity, capacity)
        best_wall = min(best_wall, wall)
        if first_summaries is None:
            first_summaries = summaries
    assert first_summaries is not None
    return first_summaries, best_capacity, best_wall


def run_parallel_scaling(
    records_count: int = PARALLEL_TRACE_RECORDS,
    unique_flows: int = PARALLEL_UNIQUE_FLOWS,
    worker_counts: Sequence[int] = PARALLEL_WORKER_COUNTS,
    rounds: int = PARALLEL_ROUNDS,
) -> dict:
    """Cores-vs-throughput curve for the sharded ingest pool.

    Guarantees checked every run, not just reported:

    * every site's worker-built tree is *bit-identical* to the serial
      scalar tree over the same records (same nodes, seqs,
      compressions) — root mass conservation follows;
    * throughput is measured in CPU terms (records per busy-CPU-second,
      summed over workers), so a time-sliced CI host reports the same
      capacity a multi-core host realizes in wall-clock.
    """
    policy = GeneralizationPolicy.default_for(FIVE_TUPLE)
    records = make_reexport_trace(records_count, unique_flows)
    scalar_tree, scalar_seconds, columnar_seconds = _best_serial_arms(
        records, policy, rounds
    )
    scalar_state = scalar_tree.snapshot_state()
    scalar_rate = len(records) / scalar_seconds
    columnar_rate = len(records) / columnar_seconds

    curve: Dict[str, dict] = {}
    for workers in worker_counts:
        summaries, capacity, wall = _run_parallel_arm(
            records, policy, workers, rounds
        )
        for i in range(workers):
            site = f"{TRACE_SITE}/shard{i}"
            assert summaries[site]["state"] == scalar_state, (
                f"worker site {i}/{workers} diverged from serial ingest"
            )
            assert summaries[site]["items"] == len(records)
        curve[str(workers)] = {
            "aggregate_records_per_s": round(capacity, 1),
            "wall_records_per_s": round(workers * len(records) / wall, 1),
            "speedup_vs_scalar": round(capacity / scalar_rate, 2),
        }

    return {
        "trace": {
            "records": records_count,
            "unique_flows": unique_flows,
            "seed": TRACE_SEED,
            "resample_seed": PARALLEL_RESAMPLE_SEED,
            "site": TRACE_SITE,
            "schema": "five_tuple",
            "node_budget": PARALLEL_NODE_BUDGET,
        },
        "scalar_records_per_s": round(scalar_rate, 1),
        "columnar_records_per_s": round(columnar_rate, 1),
        "columnar_speedup": round(columnar_rate / scalar_rate, 2),
        "curve": curve,
        "note": (
            "weak scaling: N workers each ingest one site's full trace;"
            " aggregate_records_per_s sums per-worker records per"
            " busy-CPU-second (equal to wall-clock rate on hosts with"
            " >= N cores); wall_records_per_s is total records over"
            " wall-clock on the benchmark host and collapses toward the"
            " single-core rate when workers time-slice one CPU"
        ),
    }


def print_parallel_results(parallel: dict) -> None:
    rows = [
        (
            "serial scalar", "1",
            f"{parallel['scalar_records_per_s']:.0f} rec/s",
            "-", "1.00x",
        ),
        (
            "serial columnar", "1",
            f"{parallel['columnar_records_per_s']:.0f} rec/s",
            "-", f"{parallel['columnar_speedup']:.2f}x",
        ),
    ]
    for workers, point in sorted(
        parallel["curve"].items(), key=lambda kv: int(kv[0])
    ):
        rows.append(
            (
                "sharded pool", workers,
                f"{point['aggregate_records_per_s']:.0f} rec/s",
                f"{point['wall_records_per_s']:.0f} rec/s",
                f"{point['speedup_vs_scalar']:.2f}x",
            )
        )
    report(
        "Parallel sharded ingest: cores vs throughput (re-export trace)",
        rows,
        columns=("arm", "workers", "aggregate", "wall-clock", "speedup"),
    )


# ----------------------------------------------------------------------
# pytest entry point (small trace so `pytest benchmarks/` stays quick)

def test_hotpath_speedup_and_answer_identity(benchmark):
    results = run_hotpath(records_count=20_000)
    policy = GeneralizationPolicy.default_for(FIVE_TUPLE)
    records = make_trace(5_000)
    benchmark.pedantic(
        lambda: run_fast(records, policy), rounds=3, iterations=1
    )
    benchmark.extra_info.update(results)
    print_results(results)
    # the full-trace gate is MIN_SPEEDUP (script mode / check_regression);
    # the short trace amortizes less, so the floor here is softer
    assert results["ingest_speedup"] >= 2.0, results


def test_parallel_scaling_identity_and_capacity():
    if not HAVE_NUMPY:  # pool falls back to raw transport; skip the arm
        return
    parallel = run_parallel_scaling(
        records_count=20_000,
        unique_flows=2_000,
        worker_counts=(1, 2),
        rounds=2,
    )
    print_parallel_results(parallel)
    # identity assertions already ran inside run_parallel_scaling; the
    # short trace amortizes less, so the capacity floor here is softer
    assert parallel["curve"]["2"]["speedup_vs_scalar"] >= 1.5, parallel


def test_small_batch_crossover_identity():
    if not HAVE_NUMPY:  # no planner path without numpy; nothing to pin
        return
    results = run_small_batch_crossover(
        sizes=(64, 256, 1024), trace_records=8_000
    )
    print_small_batch_results(results)
    # identity asserted inside; here just pin the routing constant is
    # one of the measured sizes so the curve brackets the threshold
    assert str(results["threshold_records"]) in results["curve"], results


def main() -> None:
    results = run_hotpath()
    print_results(results)
    speedup = results["ingest_speedup"]
    assert speedup >= MIN_SPEEDUP, (
        f"ingest speedup {speedup:.2f}x below the {MIN_SPEEDUP}x gate"
    )
    if HAVE_NUMPY:
        results["small_batch"] = run_small_batch_crossover()
        print_small_batch_results(results["small_batch"])
        for size, data in results["small_batch"]["curve"].items():
            if int(size) <= SCALAR_FALLBACK_RECORDS:
                assert data["planner_over_scalar"] >= 0.85, (
                    f"scalar fallback loses at batch size {size} "
                    f"({data['planner_over_scalar']:.2f}x); the "
                    f"crossover moved — retune SCALAR_FALLBACK_RECORDS"
                )
        results["parallel"] = run_parallel_scaling()
        print_parallel_results(results["parallel"])
        at_four = results["parallel"]["curve"].get("4", {})
        parallel_speedup = at_four.get("speedup_vs_scalar", 0.0)
        assert parallel_speedup >= MIN_PARALLEL_SPEEDUP, (
            f"parallel aggregate speedup {parallel_speedup:.2f}x at 4"
            f" workers below the {MIN_PARALLEL_SPEEDUP}x gate"
        )
    else:  # pragma: no cover
        print("numpy unavailable: skipping the parallel scaling arm")
    BASELINE_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {BASELINE_PATH}")


if __name__ == "__main__":
    main()

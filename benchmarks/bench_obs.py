"""Observability overhead on the depth-4 ingest+rollup hot path.

The obs layer promises a **zero behavioral footprint**: spans and
sourced metrics must not change what the runtime computes, and the
instrumented hot path must stay within 5% of the uninstrumented
wall-clock.  This benchmark drives the same depth-4 trace as
``bench_hierarchy_depth.py`` twice through ``network_4level_runtime``
— once with ``Observability.disabled()`` (the honest baseline: every
span is the shared no-op) and once fully instrumented — and records:

* ingest+rollup wall-clock per mode (best of ``REPEATS`` runs),
* the overhead percentage (the <5% claim),
* structural equality: WAN bytes, raw bytes, and exported summaries
  must be bit-identical across modes,
* lockstep: the instrumented registry's sourced families must equal
  the ``VolumeStats``/fabric counters they mirror.

Run as a script to execute the full trace and (re)write the committed
baseline ``BENCH_obs.json`` at the repo root:

```bash
PYTHONPATH=src python benchmarks/bench_obs.py
```

The pytest entry point uses a smaller trace so ``pytest benchmarks/``
stays quick.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from repro.obs import Observability, parse_prometheus, render_prometheus
from repro.runtime.presets import network_4level_runtime
from repro.simulation.traffic import TrafficConfig, TrafficGenerator

try:  # script mode runs without pytest on the path
    from benchmarks.conftest import report
except ImportError:  # pragma: no cover
    def report(title, rows, columns=None):
        print(f"\n=== {title} ===")
        if columns:
            print("  " + " | ".join(str(c) for c in columns))
        for row in rows:
            print("  " + " | ".join(str(cell) for cell in row))

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

SITES = (
    "region1/router1",
    "region1/router2",
    "region2/router1",
    "region2/router2",
)
NODE_BUDGET = 4096
OVERHEAD_LIMIT_PCT = 5.0
REPEATS = 5

#: sourced registry families checked against their authoritative source
_LOCKSTEP_FAMILIES = (
    "repro_raw_bytes_total",
    "repro_summary_bytes_total",
    "repro_retried_bytes_total",
    "repro_fabric_carried_bytes_total",
    "repro_fabric_wasted_bytes_total",
)


def build_runtime(instrumented: bool, node_budget: int = NODE_BUDGET):
    """The depth-4 preset, instrumented or honestly uninstrumented."""
    obs = Observability() if instrumented else Observability.disabled()
    return network_4level_runtime(
        networks=1,
        regions_per_network=2,
        routers_per_region=2,
        router_node_budget=node_budget,
        region_node_budget=node_budget,
        network_node_budget=node_budget,
        observability=obs,
    )


def run_trace(runtime, flows_per_epoch: int, epochs: int, seed: int):
    """Drive ingest+rollup once; returns (seconds, structural metrics)."""
    generator = TrafficGenerator(
        TrafficConfig(sites=SITES, flows_per_epoch=flows_per_epoch),
        seed=seed,
    )
    started = time.perf_counter()
    for epoch in range(epochs):
        for site in SITES:
            runtime.ingest(
                f"network1/{site}", generator.epoch(site, epoch)
            )
        runtime.close_epoch((epoch + 1) * 60.0)
    seconds = time.perf_counter() - started
    return seconds, {
        "wan_bytes": runtime.wan_bytes(),
        "raw_bytes": runtime.stats.raw_bytes,
        "exported_summaries": runtime.stats.exported_summaries,
    }


def _lockstep_errors(runtime) -> list:
    """Registry sourced families vs. their authoritative counters."""
    parsed = parse_prometheus(render_prometheus(runtime.obs.registry))
    totals = {}
    for (name, _labels), value in parsed.items():
        totals[name] = totals.get(name, 0) + value
    expected = {
        "repro_raw_bytes_total": runtime.stats.raw_bytes,
        "repro_summary_bytes_total": sum(
            v.summary_bytes_in + v.summary_bytes_out
            for v in runtime.stats.levels()
        ),
        "repro_retried_bytes_total": runtime.stats.retried_bytes,
        "repro_fabric_carried_bytes_total": runtime.fabric.total_bytes(),
        "repro_fabric_wasted_bytes_total": runtime.fabric.wasted_bytes(),
    }
    errors = []
    for family in _LOCKSTEP_FAMILIES:
        if totals.get(family, 0) != expected[family]:
            errors.append(
                f"{family}: exposition {totals.get(family)} != "
                f"source {expected[family]}"
            )
    return errors


def measure(flows_per_epoch: int, epochs: int, seed: int) -> dict:
    """Best-of-``REPEATS`` per mode, alternating so noise hits both."""
    seconds = {"disabled": [], "instrumented": []}
    structure = {}
    lockstep = []
    # one untimed warmup run so import costs and branch-predictor/alloc
    # warmup do not land on whichever mode happens to run first
    run_trace(
        build_runtime(instrumented=True),
        max(1, flows_per_epoch // 4),
        1,
        seed,
    )
    for _ in range(REPEATS):
        for mode in ("disabled", "instrumented"):
            runtime = build_runtime(instrumented=mode == "instrumented")
            elapsed, metrics = run_trace(
                runtime, flows_per_epoch, epochs, seed
            )
            seconds[mode].append(elapsed)
            structure[mode] = metrics
            if mode == "instrumented":
                lockstep = _lockstep_errors(runtime)
    best_disabled = min(seconds["disabled"])
    best_instrumented = min(seconds["instrumented"])
    overhead_pct = (
        (best_instrumented - best_disabled) / best_disabled * 100.0
    )
    return {
        "disabled_seconds": round(best_disabled, 6),
        "instrumented_seconds": round(best_instrumented, 6),
        "overhead_pct": round(overhead_pct, 3),
        "structure": structure,
        "lockstep_errors": lockstep,
    }


def check_claims(results: dict) -> None:
    """The obs-layer claims, as hard assertions."""
    assert results["overhead_pct"] < OVERHEAD_LIMIT_PCT, (
        f"instrumentation overhead {results['overhead_pct']:.2f}% "
        f"exceeds the {OVERHEAD_LIMIT_PCT}% budget"
    )
    disabled = results["structure"]["disabled"]
    instrumented = results["structure"]["instrumented"]
    assert disabled == instrumented, (
        "instrumentation changed runtime behavior: "
        f"{disabled} != {instrumented}"
    )
    assert not results["lockstep_errors"], results["lockstep_errors"]


def rows_of(results: dict):
    return [
        ("disabled", f"{results['disabled_seconds'] * 1000:.1f} ms"),
        (
            "instrumented",
            f"{results['instrumented_seconds'] * 1000:.1f} ms",
        ),
        ("overhead", f"{results['overhead_pct']:.2f}%"),
    ]


def test_obs_overhead(benchmark):
    """Instrumentation must stay inside the overhead budget."""

    def full_run():
        return measure(flows_per_epoch=600, epochs=2, seed=2019)

    results = benchmark.pedantic(full_run, rounds=1, iterations=1)
    report(
        "Observability overhead (small trace)",
        rows_of(results),
        columns=("mode", "ingest+rollup"),
    )
    benchmark.extra_info["overhead_pct"] = results["overhead_pct"]
    # the structural claims never depend on trace size; the wall-clock
    # budget is only enforced on the committed full trace (script mode),
    # where the runs are long enough that scheduler noise cannot
    # dominate the ratio
    disabled = results["structure"]["disabled"]
    instrumented = results["structure"]["instrumented"]
    assert disabled == instrumented
    assert not results["lockstep_errors"], results["lockstep_errors"]


def main() -> None:
    results = measure(flows_per_epoch=3000, epochs=3, seed=2019)
    report(
        "Observability overhead (full depth-4 trace)",
        rows_of(results),
        columns=("mode", "ingest+rollup"),
    )
    check_claims(results)
    baseline = {
        "trace": {
            "sites": list(SITES),
            "flows_per_epoch": 3000,
            "epochs": 3,
            "seed": 2019,
            "node_budget": NODE_BUDGET,
            "repeats": REPEATS,
        },
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "overhead_limit_pct": OVERHEAD_LIMIT_PCT,
        "results": {
            key: value
            for key, value in results.items()
            if key != "lockstep_errors"
        },
    }
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"\nwrote {BASELINE_PATH}")


if __name__ == "__main__":
    main()

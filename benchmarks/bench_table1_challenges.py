"""Table I: the nine challenges, quantified on both use cases.

The paper's Table I is qualitative; this bench regenerates it as a
quantitative table from the two simulated settings, verifying that each
challenge actually manifests in the workloads we built:

1. computation requirements  — per-camera byte rates (52 GB/h cited)
2. many devices              — sensor / router counts
3. massive combined rates    — aggregate bytes/s vs WAN capacity
4. rapid local decisions     — control-path latency vs 1 s deadline
5. high data variability     — distinct stream kinds
6. full-knowledge analytics  — multi-site merge needed for global top-k
7. hierarchical structure    — levels in both hierarchies
8. varying requirements      — per-app precision demands
9. a-priori-unknown queries  — FlowQL answers unplanned queries
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SITES, report
from repro.control.controller import ACTUATION_DELAY_S
from repro.flows.tree import Flowtree
from repro.hierarchy.network import DEFAULT_BANDWIDTH_BPS
from repro.hierarchy.topology import (
    MACHINE_DEADLINE,
    network_monitoring_hierarchy,
    smart_factory_hierarchy,
)
from repro.simulation.factory import build_factory
from repro.simulation.sensors import BYTES_3D_CAMERA_PER_HOUR


@pytest.fixture(scope="module")
def factory():
    return build_factory(lines=3, machines_per_line=8)


def test_table1_challenge_metrics(benchmark, factory, traffic, policy):
    """Regenerate Table I with measured values from both settings."""

    def compute():
        rows = []
        # 1: computation requirements
        camera_rate = BYTES_3D_CAMERA_PER_HOUR / 3600.0
        epoch = traffic.epoch(SITES[0], 0)
        flow_rate = sum(r.bytes for r in epoch) / 60.0
        rows.append(
            ("1 computation", f"camera {camera_rate/1e6:.1f} MB/s",
             f"traffic {flow_rate/1e6:.1f} MB/s"),
        )
        # 2: many devices
        rows.append(
            ("2 devices", f"{factory.sensor_count()} sensors",
             f"{len(SITES)} routers"),
        )
        # 3: combined rates vs WAN
        factory_rate = factory.raw_bytes_per_second()
        wan = DEFAULT_BANDWIDTH_BPS["cloud"] / 8.0
        rows.append(
            ("3 combined rate",
             f"{factory_rate/1e6:.0f} MB/s vs WAN {wan/1e6:.1f} MB/s "
             f"({factory_rate/wan:.0f}x over)",
             f"{len(SITES)*flow_rate/1e6:.1f} MB/s"),
        )
        # 4: rapid local decisions
        rows.append(
            ("4 local decisions",
             f"control path {ACTUATION_DELAY_S*1000:.2f} ms "
             f"<< deadline {MACHINE_DEADLINE*1000:.0f} ms",
             "same"),
        )
        # 5: variability — distinct stream kinds in the factory
        kinds = {s.sensor_id.split("/")[-1] for m in factory.machines
                 for s in m.sensors} | {"camera"}
        rows.append(("5 variability", f"{len(kinds)} stream kinds",
                     "logs/flows/packets"))
        # 6: full knowledge — global top flow differs from any single site
        trees = {}
        for site in SITES:
            tree = Flowtree(policy, node_budget=None)
            tree.ingest(traffic.epoch(site, 0))
            trees[site] = tree
        merged = Flowtree(policy, node_budget=None)
        for tree in trees.values():
            merged.merge(tree)
        global_top = merged.top_k(1, depth=1)[0][0]
        rows.append(
            ("6 full knowledge",
             "global top prefix needs all sites merged",
             str(global_top)),
        )
        # 7: hierarchy
        rows.append(
            ("7 hierarchy",
             f"{len(smart_factory_hierarchy().levels())} factory levels",
             f"{len(network_monitoring_hierarchy().levels())} network levels"),
        )
        # 8: varying requirements (precision knobs per app)
        rows.append(
            ("8 requirements", "maintenance: 60 s bins",
             "mitigation: per-epoch trees"),
        )
        # 9: a-priori-unknown queries answered post hoc
        rows.append(
            ("9 unknown queries",
             f"{len(merged.top_k(5))} rows for a query never planned for",
             "FlowQL"),
        )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    report(
        "Table I: challenges quantified",
        rows,
        columns=("challenge", "smart factory", "network monitoring"),
    )
    # the claims that make the table true:
    factory_rate = factory.raw_bytes_per_second()
    assert factory_rate > DEFAULT_BANDWIDTH_BPS["cloud"] / 8.0  # ch. 3
    assert ACTUATION_DELAY_S < MACHINE_DEADLINE  # ch. 4
    benchmark.extra_info["factory_bytes_per_s"] = factory_rate

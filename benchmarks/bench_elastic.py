"""Live reconfiguration under traffic: cost, correctness, recovery.

The paper's Sec. V.A self-adaptation claim, measured.  A scripted
reconfiguration storm — ``site_join``, live-mass ``site_leave``,
``level_split``, ``level_merge``, ``migrate_store`` — runs between
epoch closes of a continuously-ingesting tiered hierarchy, once on a
clean fabric and once under a 0.3-drop :class:`~repro.faults.FaultPlan`.
The claims are deterministic invariants, not timings:

* **mass conservation** — after the recovery closes drain every parked
  export and migration, the root holds exactly the ingested flow
  count, at *both* drop rates (reconfiguration is delayed, never
  lossy);
* **migration accounting** — live summary migrations move a nonzero,
  ledger-tracked byte volume, and the pending-migration ledger drains
  to empty;
* **versioning** — every op bumps the topology generation exactly
  once, and the query issued after each op's close answers from the
  *new* topology (a stale cached plan would miscount or fail);
* **op latency** — wall-ms per reconfiguration op, informational
  (drain + migrate + resync, dominated by summary serialization).

Run as a script to execute the full trace and (re)write the committed
baseline ``BENCH_elastic.json`` at the repo root:

```bash
PYTHONPATH=src python benchmarks/bench_elastic.py
```

The pytest entry point uses a smaller trace so ``pytest benchmarks/``
stays quick.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from repro.faults import FaultPlan
from repro.runtime.config import LevelConfig
from repro.runtime.presets import tiered_runtime
from repro.simulation.traffic import TrafficConfig, TrafficGenerator

try:  # script mode runs without pytest on the path
    from benchmarks.conftest import report
except ImportError:  # pragma: no cover
    def report(title, rows, columns=None):
        print(f"\n=== {title} ===")
        if columns:
            print("  " + " | ".join(str(c) for c in columns))
        for row in rows:
            print("  " + " | ".join(str(cell) for cell in row))

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_elastic.json"

SITES = ("east/r1", "east/r2", "west/r3")
#: every trace label the scenario will ever ingest under
TRACE_LABELS = SITES + ("east/r4",)
DROP_RATES = (0.0, 0.3)
FAULT_SEED = 2019
MAX_RECOVERY_CLOSES = 12


def _ingest(runtime, generator, epoch, flows, origin=None):
    """One epoch into every current ingest site; returns flows fed."""
    sites = runtime.ingest_sites()
    for site in sites:
        label = (origin or {}).get(site, site)
        runtime.ingest(site, generator.epoch(label, epoch))
    return flows * len(sites)


def run_scenario(flows_per_epoch: int, seed: int, drop: float) -> dict:
    """The scripted reconfiguration storm over a live tiered runtime.

    Each step ingests a full epoch, applies one reconfiguration op
    (timed), queries the root through the *new* topology, then closes.
    """
    plan = FaultPlan(seed=FAULT_SEED, drop_probability=drop)
    runtime = tiered_runtime(sites=list(SITES), faults=plan)
    generator = TrafficGenerator(
        TrafficConfig(sites=TRACE_LABELS, flows_per_epoch=flows_per_epoch),
        seed=seed,
    )
    split_origin = {
        "east/pod1/r1": "east/r1",
        "east/pod1/r2": "east/r2",
        "east/pod1/r4": "east/r4",
    }
    migrate_origin = {"west/r4": "east/r4"}
    steps = (
        ("site_join",
         lambda now: runtime.site_join("east/r4"), None),
        ("site_leave",
         lambda now: runtime.site_leave("east/r2", now=now), None),
        ("level_split",
         lambda now: runtime.level_split(
             "router", "pod", {"pod1": ["east/r1", "east/r4"]},
             config=LevelConfig(aggregator="flowtree", node_budget=4096),
         ), split_origin),
        ("level_merge",
         lambda now: runtime.level_merge("pod", now=now), None),
        ("migrate_store",
         lambda now: runtime.migrate_store("east/r4", "west", now=now),
         migrate_origin),
    )
    ops = []
    ingested = 0
    clock = 0.0
    origin = {}
    ingested += _ingest(runtime, generator, 0, flows_per_epoch)
    for epoch, (name, apply_op, new_origin) in enumerate(steps, start=1):
        bytes_before = runtime.model.ledger.migrated_bytes
        start = time.perf_counter()
        apply_op(clock + 30.0)
        elapsed_ms = (time.perf_counter() - start) * 1e3
        origin = dict(new_origin) if new_origin is not None else {}
        ops.append(
            {
                "op": name,
                "ms": round(elapsed_ms, 3),
                "generation_after": runtime.model.generation,
                "migrated_bytes_delta": (
                    runtime.model.ledger.migrated_bytes - bytes_before
                ),
            }
        )
        clock += 60.0
        runtime.close_epoch(clock)
        # the op must be visible to queries through the new topology
        runtime.query("SELECT TOTAL FROM ALL")
        ingested += _ingest(
            runtime, generator, epoch, flows_per_epoch, origin=origin
        )
    clock += 60.0
    runtime.close_epoch(clock)
    runtime.inject_faults(None)  # lift faults, then drain to quiescence
    lag = 0
    while runtime.pending_exports() and lag < MAX_RECOVERY_CLOSES:
        lag += 1
        clock += 60.0
        runtime.close_epoch(clock)
    mass = runtime.query("SELECT TOTAL FROM ALL").scalar
    ledger = runtime.model.ledger
    return {
        "ops": ops,
        "generation": runtime.model.generation,
        "op_counts": dict(ledger.op_counts),
        "migrated_bytes": ledger.migrated_bytes,
        "migrated_summaries": ledger.migrated_summaries,
        "pending_migrations": len(ledger.pending),
        "pending_exports": runtime.pending_exports(),
        "recovery_lag_epochs": lag,
        "root_mass_flows": mass.flows,
        "expected_flows": ingested,
        "mass_conserved": mass.flows == ingested,
        "wan_bytes": runtime.wan_bytes(),
    }


def run_sweep(flows_per_epoch: int, seed: int) -> dict:
    return {
        f"{drop:g}": run_scenario(flows_per_epoch, seed, drop)
        for drop in DROP_RATES
    }


def check_claims(results: dict) -> None:
    """The qualitative claims any run of the sweep must satisfy."""
    for metrics in results.values():
        # reconfiguration is delayed, never lossy
        assert metrics["mass_conserved"], (
            f"root {metrics['root_mass_flows']} != "
            f"ingested {metrics['expected_flows']}"
        )
        assert metrics["pending_exports"] == 0
        assert metrics["pending_migrations"] == 0
        # one generation bump per op, counted per kind
        assert metrics["generation"] == len(metrics["ops"])
        assert sum(metrics["op_counts"].values()) == len(metrics["ops"])
        assert [op["generation_after"] for op in metrics["ops"]] == list(
            range(1, len(metrics["ops"]) + 1)
        )
    clean = results["0"]
    # a clean fabric migrates live mass synchronously and needs no
    # recovery closes; the lossy run may park, but must still drain
    assert clean["migrated_bytes"] > 0
    assert clean["migrated_summaries"] >= 1
    assert clean["recovery_lag_epochs"] == 0


def rows_of(results: dict):
    rows = []
    for drop, metrics in sorted(results.items(), key=lambda kv: float(kv[0])):
        for op in metrics["ops"]:
            rows.append(
                (
                    drop,
                    op["op"],
                    f"{op['ms']:.1f}",
                    op["generation_after"],
                    op["migrated_bytes_delta"],
                )
            )
        rows.append(
            (
                drop,
                "TOTAL",
                "-",
                metrics["generation"],
                metrics["migrated_bytes"],
            )
        )
    return rows


COLUMNS = ("drop", "op", "ms", "gen", "migrated B")


def test_reconfig_storm_conserves_mass(benchmark):
    """Mass survives the scripted reconfig storm (small trace)."""
    results = benchmark.pedantic(
        lambda: run_sweep(flows_per_epoch=200, seed=2019),
        rounds=1,
        iterations=1,
    )
    report("Reconfig storm: op cost and migrated volume", rows_of(results),
           columns=COLUMNS)
    benchmark.extra_info.update(
        {
            f"migrated_bytes_drop{drop}": metrics["migrated_bytes"]
            for drop, metrics in results.items()
        }
    )
    check_claims(results)


def main() -> None:
    results = run_sweep(flows_per_epoch=1500, seed=2019)
    report("Reconfig storm: op cost and migrated volume (full trace)",
           rows_of(results), columns=COLUMNS)
    check_claims(results)
    baseline = {
        "trace": {
            "sites": list(SITES),
            "flows_per_epoch": 1500,
            "seed": 2019,
            "fault_seed": FAULT_SEED,
            "drop_rates": list(DROP_RATES),
        },
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "rates": results,
    }
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"\nwrote {BASELINE_PATH}")


if __name__ == "__main__":
    main()

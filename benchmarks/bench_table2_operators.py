"""Table II: the eight Flowtree operators — correctness shape + cost.

One benchmark per operator (Merge, Compress, Diff, Query, Drilldown,
Top-k, Above-x, HHH), timed on a realistic tree built from Zipf traffic.
The claim the table makes is that all eight exist and are cheap enough
for on-the-fly use inside a data store; the per-operator timings are the
evidence.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SITES, report
from repro.flows.tree import Flowtree

BUDGET = 8192


@pytest.fixture(scope="module")
def tree_a(policy, traffic):
    tree = Flowtree(policy, node_budget=BUDGET)
    for epoch in range(3):
        tree.ingest(traffic.epoch(SITES[0], epoch))
    return tree


@pytest.fixture(scope="module")
def tree_b(policy, traffic):
    tree = Flowtree(policy, node_budget=BUDGET)
    for epoch in range(3):
        tree.ingest(traffic.epoch(SITES[1], epoch))
    return tree


@pytest.fixture(scope="module")
def sample_key(traffic):
    return traffic.epoch(SITES[0], 0)[0].key


def test_insert_throughput(benchmark, policy, traffic):
    """Not in Table II but the precondition: 'works on the fly'."""
    records = traffic.epoch(SITES[2], 0)

    def build():
        tree = Flowtree(policy, node_budget=BUDGET)
        tree.ingest(records)
        return tree

    tree = benchmark(build)
    benchmark.extra_info["records_per_round"] = len(records)
    benchmark.extra_info["nodes"] = tree.node_count
    assert tree.node_count <= BUDGET


def test_op_merge(benchmark, tree_a, tree_b):
    result = benchmark(lambda: Flowtree.merged(tree_a, tree_b))
    assert result.total() == tree_a.total() + tree_b.total()


def test_op_compress(benchmark, tree_a):
    def compress():
        clone = tree_a.copy()
        clone.compress(target_nodes=BUDGET // 4)
        return clone

    result = benchmark(compress)
    assert result.node_count <= BUDGET // 4
    assert result.total() == tree_a.total()


def test_op_diff(benchmark, tree_a, tree_b):
    result = benchmark(lambda: tree_a.diff(tree_b))
    assert result.total() == tree_a.total() - tree_b.total()


def test_op_query(benchmark, tree_a, sample_key):
    result = benchmark(lambda: tree_a.query(sample_key))
    assert result.bytes >= 0


def test_op_drilldown(benchmark, tree_a):
    root_key = tree_a.key_of(tree_a.root)
    result = benchmark(lambda: tree_a.drilldown(root_key))
    assert result


def test_op_top_k(benchmark, tree_a):
    result = benchmark(lambda: tree_a.top_k(10))
    assert len(result) == 10


def test_op_above_x(benchmark, tree_a):
    threshold = tree_a.total().bytes // 100
    result = benchmark(lambda: tree_a.above_x(threshold))
    assert result


def test_op_hhh(benchmark, tree_a):
    threshold = tree_a.total().bytes // 50
    result = benchmark(lambda: tree_a.hhh(threshold))
    assert result
    report(
        "Table II: HHH sample output (top 5)",
        [
            (str(r.key), r.score.bytes, r.residual.bytes)
            for r in result[:5]
        ],
        columns=("flow", "score(bytes)", "residual"),
    )

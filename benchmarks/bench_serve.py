"""The serving plane under load: thousands of closed-loop clients.

The paper's hierarchies exist to be *queried*, and ``repro serve``
turns the query plane into a networked one — so this benchmark drives
it the way a serving system is actually judged: a closed loop of
concurrent clients (each waits for its answer, honors ``Retry-After``
on a 429, then sends its next query) against the 4-level network
preset, all sharing one event loop with the plane itself.  Real
loopback TCP, real HTTP/1.1 framing, real bounded queues.

Measured claims:

* **zero unhandled errors** — ≥1000 concurrent clients complete their
  scripts with ``server_errors == 0`` (nothing 500s, nothing hangs)
  and every client-side response decodes under the versioned wire
  schema;
* **latency / throughput** — p50/p90/p99/max latency and completed
  queries/s for the mixed query set (cloud rollups, cached repeats,
  federated edge drilldowns);
* **answer identity** — a sample of every query in the mix, fetched
  over HTTP after the storm, is payload-identical to the in-process
  planner's answer — including a degraded partial under a link outage;
* **load shedding** — a deliberately under-provisioned admission arm
  (tiny per-client buckets) sheds most of a burst with 429 +
  ``Retry-After`` while every *admitted* answer stays correct.

Run as a script to execute the full storm (1200 clients) and
(re)write ``BENCH_serve.json`` at the repo root:

```bash
PYTHONPATH=src python benchmarks/bench_serve.py
```

The pytest entry point uses a smaller client fleet so
``pytest benchmarks/`` stays quick; ``check_regression.py --only
serve`` validates the committed baseline and re-runs a reduced smoke.
"""

from __future__ import annotations

import asyncio
import json
import platform
import time
from pathlib import Path

from repro.errors import WireSchemaError
from repro.faults import FaultPlan, LinkOutage
from repro.runtime.presets import network_4level_runtime
from repro.serve import ServePlane, wire
from repro.serve.http11 import HTTPConnection
from repro.simulation.traffic import TrafficConfig, TrafficGenerator

try:  # script mode runs without pytest on the path
    from benchmarks.conftest import report
except ImportError:  # pragma: no cover
    def report(title, rows, columns=None):
        print(f"\n=== {title} ===")
        if columns:
            print("  " + " | ".join(str(c) for c in columns))
        for row in rows:
            print("  " + " | ".join(str(cell) for cell in row))

BASELINE_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_serve.json"
)

SEED = 2019
EPOCHS = 2
FLOWS_PER_EPOCH = 600
DRILL_SITE = "network1/region1/router1"
#: kept out of the storm mix so its answer is never cached — the
#: degraded-identity probe needs a fresh federated read, not a cached
#: complete answer served through the outage
DEGRADED_SITE = "network1/region1/router2"

#: the mixed client script: cloud rollups, groupbys, edge drilldowns
QUERY_MIX = (
    "SELECT TOTAL FROM ALL",
    "SELECT TOPK(5) FROM ALL BY bytes",
    "SELECT GROUPBY(dst_port, 16) FROM ALL BY bytes LIMIT 5",
    f"SELECT TOPK(3) FROM ALL AT {DRILL_SITE} BY bytes",
    f"SELECT TOTAL FROM ALL AT {DRILL_SITE}",
)

#: a client that keeps getting 429s retries at most this many times
MAX_RETRIES = 50


def _retry_after_hint(headers, body) -> float:
    """The precise retry hint of one 429 response.

    The ``Retry-After`` header is RFC 9110 integer delta-seconds
    (ceiled, so a 50 ms hint reads ``1``); the rejection body carries
    the exact float.  Well-behaved clients prefer the body and fall
    back to the header.
    """
    try:
        _, rejection = wire.open_envelope(body)
        return float(rejection["retry_after_s"])
    except (WireSchemaError, KeyError, TypeError, ValueError):
        return float(headers.get("retry-after", "1"))


def ensure_fd_headroom(needed: int = 8192) -> None:
    """Thousands of sockets need file descriptors; raise the soft cap."""
    try:
        import resource

        soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
        if soft < needed:
            resource.setrlimit(
                resource.RLIMIT_NOFILE, (min(needed, hard), hard)
            )
    except (ImportError, ValueError, OSError):  # pragma: no cover
        pass


def build_runtime():
    runtime = network_4level_runtime(retain_partitions=True)
    sites = runtime.ingest_sites()
    generator = TrafficGenerator(
        TrafficConfig(sites=tuple(sites), flows_per_epoch=FLOWS_PER_EPOCH),
        seed=SEED,
    )
    for epoch in range(EPOCHS):
        for site in sites:
            runtime.ingest(site, generator.epoch(site, epoch))
        runtime.close_epoch((epoch + 1) * runtime.epoch_seconds)
    return runtime


def percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(fraction * len(sorted_values))
    )
    return sorted_values[index]


async def _one_client(
    plane, client_index, requests_per_client, latencies, counters
):
    """One closed-loop client: query, await, honor Retry-After, repeat."""
    # stagger connects so a thousand SYNs don't land in one instant
    await asyncio.sleep((client_index % 100) * 0.002)
    connection = HTTPConnection(plane.gateway.host, plane.gateway.port)
    client_id = f"client-{client_index}"
    try:
        for request_index in range(requests_per_client):
            text = QUERY_MIX[
                (client_index + request_index) % len(QUERY_MIX)
            ]
            started = time.perf_counter()
            for _ in range(MAX_RETRIES):
                status, headers, body = await connection.request(
                    "POST",
                    "/v1/query",
                    body={"query": text, "client_id": client_id},
                )
                if status != 429:
                    break
                counters["rejected_429"] += 1
                retry_after = _retry_after_hint(headers, body)
                if retry_after <= 0:
                    counters["bad_retry_after"] += 1
                await asyncio.sleep(min(retry_after, 0.5))
            elapsed = time.perf_counter() - started
            if status == 200:
                outcome = wire.decode_outcome(body)  # schema enforced
                counters[
                    "degraded" if outcome.is_degraded else "ok"
                ] += 1
                latencies.append(elapsed)
            else:
                counters["error"] += 1
    except Exception:  # noqa: BLE001 - any client crash fails the gate
        counters["client_crashes"] += 1
    finally:
        await connection.close()


async def run_storm(plane, clients, requests_per_client):
    """The closed loop; returns (latency list, counter dict, seconds)."""
    latencies: list = []
    counters = {
        "ok": 0,
        "degraded": 0,
        "rejected_429": 0,
        "bad_retry_after": 0,
        "error": 0,
        "client_crashes": 0,
    }
    started = time.perf_counter()
    await asyncio.gather(
        *(
            _one_client(
                plane, index, requests_per_client, latencies, counters
            )
            for index in range(clients)
        )
    )
    return latencies, counters, time.perf_counter() - started


async def check_identity(runtime, plane):
    """Every query in the mix: the HTTP payload is the local payload."""
    matched = 0
    connection = HTTPConnection(plane.gateway.host, plane.gateway.port)
    try:
        for text in QUERY_MIX:
            local = runtime.query(text)
            status, _headers, body = await connection.request(
                "POST",
                "/v1/query",
                body={"query": text, "client_id": "identity"},
            )
            assert status == 200, f"identity probe got HTTP {status}"
            remote = wire.decode_outcome(body)
            if remote.result.to_wire() == local.result.to_wire():
                matched += 1
        # the same holds for a degraded partial under a link outage
        runtime.inject_faults(
            FaultPlan(outages=[LinkOutage(DEGRADED_SITE, 0, 10**9)])
        )
        try:
            text = f"SELECT TOTAL FROM ALL AT {DEGRADED_SITE}"
            local = runtime.query(text)
            status, _headers, body = await connection.request(
                "POST",
                "/v1/query",
                body={"query": text, "client_id": "identity"},
            )
            assert status == 200
            remote = wire.decode_outcome(body)
            degraded_identical = (
                remote.is_degraded
                and local.is_degraded
                and remote.result.to_wire() == local.result.to_wire()
                and remote.missing_sites == local.missing_sites
            )
        finally:
            runtime.inject_faults(None)
    finally:
        await connection.close()
    return {
        "queries": len(QUERY_MIX),
        "matched": matched,
        "degraded_identical": degraded_identical,
    }


async def run_shedding_arm(runtime):
    """An under-provisioned plane must shed bursts, not corrupt them."""
    expected = runtime.query("SELECT TOTAL FROM ALL").result.to_wire()
    plane = ServePlane(
        runtime, admission_rate_per_s=1.0, admission_burst=2.0
    )
    await plane.start()
    try:
        connection = HTTPConnection(
            plane.gateway.host, plane.gateway.port
        )
        admitted, rejected, correct, retry_hints = 0, 0, 0, []
        try:
            for client in range(8):  # 8 clients burst 5 each: 2 admitted
                for _ in range(5):
                    status, headers, body = await connection.request(
                        "POST",
                        "/v1/query",
                        body={
                            "query": "SELECT TOTAL FROM ALL",
                            "client_id": f"burst-{client}",
                        },
                    )
                    if status == 429:
                        rejected += 1
                        retry_hints.append(_retry_after_hint(headers, body))
                        kind, _body = wire.open_envelope(body)
                        assert kind == wire.KIND_REJECTED
                        assert headers.get("retry-after", "1").isdigit()
                    else:
                        admitted += 1
                        outcome = wire.decode_outcome(body)
                        if outcome.result.to_wire() == expected:
                            correct += 1
        finally:
            await connection.close()
        census = plane.census()
    finally:
        await plane.stop()
        plane.data_executor.shutdown(wait=True)
    return {
        "burst_requests": 40,
        "admitted": admitted,
        "rejected": rejected,
        "admitted_correct": correct,
        "min_retry_after_s": round(min(retry_hints), 4)
        if retry_hints
        else None,
        "gateway_rejections": census["admission"]["rejected"],
    }


async def _measure_async(runtime, clients, requests_per_client):
    # the storm arm provisions the queue for its own closed-loop
    # concurrency (every client can have one request in flight); the
    # shedding arm below is where refusal behavior is measured
    plane = ServePlane(runtime, queue_limit=max(2048, 2 * clients))
    await plane.start()
    try:
        latencies, counters, elapsed = await run_storm(
            plane, clients, requests_per_client
        )
        identity = await check_identity(runtime, plane)
        census = plane.census()
    finally:
        await plane.stop()
        plane.data_executor.shutdown(wait=True)
    latencies.sort()
    completed = counters["ok"] + counters["degraded"]
    queue_peaks = {
        label: node["queue_peak"]
        for label, node in census["nodes"].items()
        if node["queue_peak"]
    }
    results = {
        "clients": clients,
        "requests_per_client": requests_per_client,
        "requests_total": clients * requests_per_client,
        "completed": completed,
        "elapsed_s": round(elapsed, 3),
        "throughput_qps": round(completed / elapsed, 1),
        "latency_ms": {
            "p50": round(percentile(latencies, 0.50) * 1000, 3),
            "p90": round(percentile(latencies, 0.90) * 1000, 3),
            "p99": round(percentile(latencies, 0.99) * 1000, 3),
            "max": round(latencies[-1] * 1000, 3) if latencies else 0.0,
        },
        "statuses": counters,
        "rejection_rate": round(
            counters["rejected_429"]
            / max(1, completed + counters["rejected_429"]),
            4,
        ),
        "queue": {
            "limit": plane.queue_limit,
            "peaks": queue_peaks,
            "peak_max": max(queue_peaks.values(), default=0),
            "backpressure_rejections": sum(
                node["backpressure_rejections"]
                for node in census["nodes"].values()
            ),
        },
        "routing": census["routing"],
        "server_errors": census["server_errors"],
        "identity": identity,
    }
    results["shedding"] = await run_shedding_arm(runtime)
    return results


def measure(clients: int, requests_per_client: int) -> dict:
    """The full serving sweep on a fresh loaded runtime."""
    ensure_fd_headroom(max(8192, 4 * clients))
    runtime = build_runtime()
    try:
        return asyncio.run(
            _measure_async(runtime, clients, requests_per_client)
        )
    finally:
        runtime.shutdown()


def check_claims(results: dict) -> None:
    """The qualitative claims any run of the storm must satisfy."""
    # every client completed its script; nothing 500ed, nothing crashed
    assert results["server_errors"] == 0, "unhandled server errors"
    assert results["statuses"]["client_crashes"] == 0
    assert results["statuses"]["error"] == 0
    assert results["completed"] == results["requests_total"]
    assert results["statuses"]["bad_retry_after"] == 0
    assert results["throughput_qps"] > 0
    assert results["latency_ms"]["p99"] >= results["latency_ms"]["p50"]
    # remote answers are the local answers, degraded ones included
    assert results["identity"]["matched"] == results["identity"]["queries"]
    assert results["identity"]["degraded_identical"]
    # the under-provisioned arm sheds most of the burst, correctly
    shedding = results["shedding"]
    assert shedding["rejected"] > shedding["admitted"]
    assert shedding["admitted_correct"] == shedding["admitted"]
    assert shedding["min_retry_after_s"] is None or (
        shedding["min_retry_after_s"] > 0
    )


def rows_of(results: dict):
    latency = results["latency_ms"]
    shedding = results["shedding"]
    return [
        (
            "storm",
            results["clients"],
            results["completed"],
            f"{results['throughput_qps']} q/s",
            f"{latency['p50']} ms",
            f"{latency['p99']} ms",
            results["statuses"]["rejected_429"],
            results["server_errors"],
        ),
        (
            "shedding",
            8,
            shedding["admitted"],
            "-",
            "-",
            "-",
            shedding["rejected"],
            0,
        ),
    ]


COLUMNS = (
    "arm", "clients", "completed", "throughput", "p50", "p99",
    "429s", "500s",
)


def test_serving_plane_survives_closed_loop_storm(benchmark):
    """A small client fleet completes with zero unhandled errors."""
    results = benchmark.pedantic(
        lambda: measure(clients=64, requests_per_client=3),
        rounds=1,
        iterations=1,
    )
    report(
        "Serving plane: closed-loop storm (small fleet)",
        rows_of(results),
        columns=COLUMNS,
    )
    benchmark.extra_info.update(
        {
            "throughput_qps": results["throughput_qps"],
            "p99_ms": results["latency_ms"]["p99"],
            "rejection_rate": results["rejection_rate"],
        }
    )
    check_claims(results)


def main() -> None:
    results = measure(clients=1200, requests_per_client=5)
    report(
        "Serving plane: closed-loop storm (full fleet)",
        rows_of(results),
        columns=COLUMNS,
    )
    check_claims(results)
    baseline = {
        "trace": {
            "flows_per_epoch": FLOWS_PER_EPOCH,
            "epochs": EPOCHS,
            "seed": SEED,
            "clients": results["clients"],
            "requests_per_client": results["requests_per_client"],
            "query_mix": list(QUERY_MIX),
        },
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "results": results,
    }
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"\nwrote {BASELINE_PATH}")


if __name__ == "__main__":
    main()

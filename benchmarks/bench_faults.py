"""Delivered mass, retry overhead, and recovery lag under link faults.

Table I's "unreliable connections" challenge, measured: the same
4-level trace as ``BENCH_hierarchy.json`` runs under seeded
:class:`~repro.faults.FaultPlan` drop rates (0, 0.05, 0.2).  Failed
exports retry with bounded backoff, exhausted exports park in pending
queues and redeliver on later closes, so the claims are:

* **delivered mass** — after the recovery closes drain the queues, the
  root holds 100% of the fault-free mass at *every* drop rate (the
  at-least-once delivery guarantee, see DESIGN.md "Failure model");
* **retry overhead** — reliability is paid for in wasted/retried
  bytes, growing with the drop rate, never in lost data;
* **recovery lag** — how many extra epoch closes the queues need to
  drain;
* **zero-fault fidelity** — the drop=0 run's WAN volume matches the
  committed depth-4 number in ``BENCH_hierarchy.json`` exactly: the
  fault machinery costs nothing when no faults fire.

Run as a script to execute the full trace and (re)write the committed
baseline ``BENCH_faults.json`` at the repo root:

```bash
PYTHONPATH=src python benchmarks/bench_faults.py
```

The pytest entry point uses a smaller trace so ``pytest benchmarks/``
stays quick.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

from repro.faults import FaultPlan
from repro.runtime.presets import network_4level_runtime
from repro.simulation.traffic import TrafficConfig, TrafficGenerator

try:  # script mode runs without pytest on the path
    from benchmarks.conftest import report
except ImportError:  # pragma: no cover
    def report(title, rows, columns=None):
        print(f"\n=== {title} ===")
        if columns:
            print("  " + " | ".join(str(c) for c in columns))
        for row in rows:
            print("  " + " | ".join(str(cell) for cell in row))

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_faults.json"

#: the exact trace of BENCH_hierarchy.json, so drop=0 is comparable
SITES = (
    "region1/router1",
    "region1/router2",
    "region2/router1",
    "region2/router2",
)
NODE_BUDGET = 4096
DROP_RATES = (0.0, 0.05, 0.2)
FAULT_SEED = 2019
MAX_RECOVERY_CLOSES = 12


def build_runtime(drop: float, node_budget: int = NODE_BUDGET):
    return network_4level_runtime(
        networks=1,
        regions_per_network=2,
        routers_per_region=2,
        router_node_budget=node_budget,
        region_node_budget=node_budget,
        network_node_budget=node_budget,
        faults=FaultPlan(seed=FAULT_SEED, drop_probability=drop),
    )


def run_rate(
    drop: float,
    flows_per_epoch: int,
    epochs: int,
    seed: int,
    node_budget: int = NODE_BUDGET,
) -> dict:
    """One drop rate over the shared trace, driven to full recovery."""
    runtime = build_runtime(drop, node_budget=node_budget)
    generator = TrafficGenerator(
        TrafficConfig(sites=SITES, flows_per_epoch=flows_per_epoch),
        seed=seed,
    )
    for epoch in range(epochs):
        for site in SITES:
            runtime.ingest(f"network1/{site}", generator.epoch(site, epoch))
        runtime.close_epoch((epoch + 1) * 60.0)
    lag = 0
    while runtime.pending_exports() and lag < MAX_RECOVERY_CLOSES:
        lag += 1
        runtime.close_epoch((epochs + lag) * 60.0)
    stats = runtime.stats
    runtime.inject_faults(None)  # read the final root state fault-free
    mass = runtime.query("SELECT TOTAL FROM ALL").scalar
    return {
        "wan_bytes": runtime.wan_bytes(),
        "wasted_bytes": runtime.fabric.wasted_bytes(),
        "wan_wasted_bytes": runtime.fabric.wan_wasted_bytes(),
        "retried_bytes": stats.retried_bytes,
        "transfer_attempts": stats.transfer_attempts,
        "transfer_failures": stats.transfer_failures,
        "exports_parked": stats.exports_parked,
        "exports_recovered": stats.exports_recovered,
        "pending_exports": runtime.pending_exports(),
        "recovery_lag_epochs": lag,
        "root_mass_bytes": mass.bytes,
        "root_mass_flows": mass.flows,
    }


def run_sweep(flows_per_epoch: int, epochs: int, seed: int,
              node_budget: int = NODE_BUDGET) -> dict:
    """Every drop rate; delivered mass is relative to the drop=0 run."""
    results = {}
    for drop in DROP_RATES:
        results[f"{drop:g}"] = run_rate(
            drop, flows_per_epoch, epochs, seed, node_budget=node_budget
        )
    clean_mass = results["0"]["root_mass_bytes"]
    for metrics in results.values():
        metrics["delivered_mass_pct"] = round(
            100.0 * metrics["root_mass_bytes"] / clean_mass, 3
        )
    return results


def check_claims(results: dict) -> None:
    """The qualitative claims any run of the sweep must satisfy."""
    clean = results["0"]
    assert clean["transfer_failures"] == 0
    assert clean["wasted_bytes"] == 0
    assert clean["retried_bytes"] == 0
    assert clean["recovery_lag_epochs"] == 0
    ordered = [results[f"{drop:g}"] for drop in DROP_RATES]
    for metrics in ordered:
        # the delivery guarantee: delayed, never lost
        assert metrics["pending_exports"] == 0
        assert metrics["delivered_mass_pct"] == 100.0
        assert metrics["root_mass_flows"] == clean["root_mass_flows"]
    # reliability is paid in retry overhead, monotone in the drop rate
    wasted = [metrics["wasted_bytes"] for metrics in ordered]
    assert wasted == sorted(wasted)
    assert ordered[-1]["wasted_bytes"] > 0
    assert ordered[-1]["transfer_failures"] > 0


def rows_of(results: dict):
    return [
        (
            drop,
            metrics["wan_bytes"],
            f"{metrics['delivered_mass_pct']}%",
            metrics["wasted_bytes"],
            metrics["retried_bytes"],
            metrics["recovery_lag_epochs"],
        )
        for drop, metrics in sorted(results.items(), key=lambda kv: float(kv[0]))
    ]


COLUMNS = ("drop", "wan B", "delivered", "wasted B", "retried B", "lag")


def test_faults_delay_but_never_lose_mass(benchmark):
    """Delivered mass stays 100% at every drop rate (small trace)."""
    results = benchmark.pedantic(
        lambda: run_sweep(flows_per_epoch=600, epochs=2, seed=2019),
        rounds=1,
        iterations=1,
    )
    report("Fault sweep: delivered mass vs drop rate", rows_of(results),
           columns=COLUMNS)
    benchmark.extra_info.update(
        {
            f"wasted_bytes_drop{drop}": metrics["wasted_bytes"]
            for drop, metrics in results.items()
        }
    )
    check_claims(results)


def main() -> None:
    results = run_sweep(flows_per_epoch=3000, epochs=3, seed=2019)
    report("Fault sweep: delivered mass vs drop rate (full trace)",
           rows_of(results), columns=COLUMNS)
    check_claims(results)
    baseline = {
        "trace": {
            "sites": list(SITES),
            "flows_per_epoch": 3000,
            "epochs": 3,
            "seed": 2019,
            "node_budget": NODE_BUDGET,
            "fault_seed": FAULT_SEED,
            "drop_rates": list(DROP_RATES),
        },
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "rates": results,
    }
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"\nwrote {BASELINE_PATH}")


if __name__ == "__main__":
    main()

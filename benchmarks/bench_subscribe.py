"""Standing queries: delta maintenance vs re-execution per epoch.

The subscription registry's reason to exist is arithmetic: re-running
a standing federated query after every epoch close re-ships the whole
window (cost grows with history), while delta-maintaining the
materialized view ships only the partitions the close just sealed
(cost stays flat).  This benchmark measures that gap directly and
refuses to regress it.

Two arms over identical traffic (same seeds, same preset):

* **delta** — one runtime holds N standing queries
  (``SUBSCRIBE SELECT ... AT <edge site>`` over the 4-level network
  preset); per close, the registry's own counters give refresh seconds
  and shipped bytes;
* **re-execution** — a second runtime with the result cache disabled
  re-issues the same N queries after every close; wall time and
  ``plan.shipped_bytes`` are summed.

Per epoch and per query, the two arms' answers must be
``to_wire``-identical — the delta path is only admissible because it
is indistinguishable from re-execution.  The committed claim: delta
epochs are **≥ 5x cheaper in both milliseconds and bytes** for N=16
standing queries.

Run as a script to execute the full sweep and (re)write
``BENCH_subscribe.json`` at the repo root:

```bash
PYTHONPATH=src python benchmarks/bench_subscribe.py
```

``check_regression.py --only subscribe`` validates the committed
baseline and re-runs a reduced sweep.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from repro.runtime.presets import network_4level_runtime
from repro.simulation.traffic import TrafficConfig, TrafficGenerator

try:  # script mode runs without pytest on the path
    from benchmarks.conftest import report
except ImportError:  # pragma: no cover
    def report(title, rows, columns=None):
        print(f"\n=== {title} ===")
        if columns:
            print("  " + " | ".join(str(c) for c in columns))
        for row in rows:
            print("  " + " | ".join(str(cell) for cell in row))

BASELINE_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_subscribe.json"
)

SEED = 2019
EPOCHS = 16
FLOWS_PER_EPOCH = 150
SUBSCRIPTIONS = 16

#: per-site standing-query templates; N queries = templates x sites
TEMPLATES = (
    "SELECT TOPK(5) FROM ALL AT {site} BY bytes",
    "SELECT TOTAL FROM ALL AT {site}",
    "SELECT GROUPBY(dst_port, 8) FROM ALL AT {site} BY bytes",
    "SELECT TOPK(3) FROM ALL AT {site} BY packets",
)


def build_runtime():
    return network_4level_runtime(retain_partitions=True)


def standing_queries(runtime, count):
    """``count`` distinct federated queries over the edge sites."""
    sites = runtime.ingest_sites()
    queries = []
    index = 0
    while len(queries) < count:
        template = TEMPLATES[index % len(TEMPLATES)]
        site = sites[(index // len(TEMPLATES)) % len(sites)]
        queries.append(template.format(site=site))
        index += 1
    return queries


def ingest_epoch(runtime, epoch):
    sites = runtime.ingest_sites()
    generator = TrafficGenerator(
        TrafficConfig(sites=tuple(sites), flows_per_epoch=FLOWS_PER_EPOCH),
        seed=SEED + epoch,
    )
    for site in sites:
        runtime.ingest(site, generator.epoch(site, epoch))


def measure(subscriptions: int, epochs: int) -> dict:
    """Both arms over identical traffic; returns the comparison."""
    delta_rt = build_runtime()
    reexec_rt = build_runtime()
    try:
        queries = standing_queries(delta_rt, subscriptions)

        # seed both arms with one epoch so registration materializes
        for runtime in (delta_rt, reexec_rt):
            ingest_epoch(runtime, 0)
            runtime.close_epoch(delta_rt.epoch_seconds)
        reexec_rt.planner.cache = None  # re-execution means re-reading

        registry = delta_rt.planner.subscriptions
        handles = [
            delta_rt.subscribe("SUBSCRIBE " + text) for text in queries
        ]
        seed_bytes = registry.shipped_bytes_total
        seed_seconds = registry.refresh_seconds_total

        reexec_ms = 0.0
        reexec_bytes = 0
        mismatches = 0
        per_epoch = []
        for epoch in range(1, epochs):
            now = (epoch + 1) * delta_rt.epoch_seconds
            for runtime in (delta_rt, reexec_rt):
                ingest_epoch(runtime, epoch)
            delta_before = registry.refresh_seconds_total
            bytes_before = registry.shipped_bytes_total
            delta_rt.close_epoch(now)  # the registry refreshes in here
            reexec_rt.close_epoch(now)

            started = time.perf_counter()
            answers = [
                reexec_rt.planner.execute(text) for text in queries
            ]
            epoch_reexec_s = time.perf_counter() - started
            epoch_reexec_bytes = sum(
                outcome.plan.shipped_bytes for outcome in answers
            )
            reexec_ms += epoch_reexec_s * 1000
            reexec_bytes += epoch_reexec_bytes

            for handle, outcome in zip(handles, answers):
                update = handle.latest()
                if (
                    update is None
                    or update.result.to_wire()
                    != outcome.result.to_wire()
                ):
                    mismatches += 1
            per_epoch.append(
                {
                    "epoch": epoch,
                    "delta_ms": round(
                        (registry.refresh_seconds_total - delta_before)
                        * 1000,
                        3,
                    ),
                    "delta_bytes": (
                        registry.shipped_bytes_total - bytes_before
                    ),
                    "reexec_ms": round(epoch_reexec_s * 1000, 3),
                    "reexec_bytes": epoch_reexec_bytes,
                }
            )

        delta_ms = (
            registry.refresh_seconds_total - seed_seconds
        ) * 1000
        delta_bytes = registry.shipped_bytes_total - seed_bytes
        return {
            "subscriptions": subscriptions,
            "epochs": epochs - 1,  # maintained closes (the seed aside)
            "flows_per_epoch": FLOWS_PER_EPOCH,
            "delta_ms_total": round(delta_ms, 3),
            "delta_bytes_total": delta_bytes,
            "reexec_ms_total": round(reexec_ms, 3),
            "reexec_bytes_total": reexec_bytes,
            "speedup_ms": round(reexec_ms / max(delta_ms, 1e-9), 2),
            "speedup_bytes": round(
                reexec_bytes / max(delta_bytes, 1), 2
            ),
            "identity_mismatches": mismatches,
            "delta_refreshes": registry.delta_refreshes,
            "rebuilds": registry.rebuilds,
            "per_epoch": per_epoch,
        }
    finally:
        delta_rt.shutdown()
        reexec_rt.shutdown()


def check_claims(results: dict) -> None:
    """The qualitative claims any run of the sweep must satisfy."""
    # the delta path is only admissible when indistinguishable from
    # re-execution — a single mismatch is a correctness bug
    assert results["identity_mismatches"] == 0, "delta != re-execution"
    # views are maintained by deltas, not serial rebuilds
    assert results["delta_refreshes"] > 0
    assert results["rebuilds"] == 0, "steady state must not rebuild"
    # the headline: ≥5x cheaper in milliseconds AND bytes
    assert results["speedup_ms"] >= 5.0, (
        f"delta refresh only {results['speedup_ms']}x faster"
    )
    assert results["speedup_bytes"] >= 5.0, (
        f"delta refresh only {results['speedup_bytes']}x leaner"
    )


def rows_of(results: dict):
    return [
        (
            "delta",
            results["subscriptions"],
            results["epochs"],
            f"{results['delta_ms_total']} ms",
            f"{results['delta_bytes_total']:,} B",
            results["rebuilds"],
        ),
        (
            "re-exec",
            results["subscriptions"],
            results["epochs"],
            f"{results['reexec_ms_total']} ms",
            f"{results['reexec_bytes_total']:,} B",
            "-",
        ),
        (
            "speedup",
            "-",
            "-",
            f"{results['speedup_ms']}x",
            f"{results['speedup_bytes']}x",
            "-",
        ),
    ]


COLUMNS = (
    "arm", "queries", "epochs", "refresh cost", "shipped", "rebuilds",
)


def test_delta_maintenance_beats_reexecution(benchmark):
    """A reduced sweep: identical answers, meaningfully cheaper."""
    results = benchmark.pedantic(
        lambda: measure(subscriptions=8, epochs=8),
        rounds=1,
        iterations=1,
    )
    report(
        "Standing queries: delta vs re-execution (reduced)",
        rows_of(results),
        columns=COLUMNS,
    )
    benchmark.extra_info.update(
        {
            "speedup_ms": results["speedup_ms"],
            "speedup_bytes": results["speedup_bytes"],
        }
    )
    assert results["identity_mismatches"] == 0
    assert results["rebuilds"] == 0
    # the reduced window still shows a clear win; the committed 5x
    # claim is gated on the full sweep in check_regression.py
    assert results["speedup_bytes"] >= 2.0
    assert results["speedup_ms"] >= 2.0


def main() -> None:
    results = measure(subscriptions=SUBSCRIPTIONS, epochs=EPOCHS)
    report(
        "Standing queries: delta vs re-execution (full sweep)",
        rows_of(results),
        columns=COLUMNS,
    )
    check_claims(results)
    baseline = {
        "trace": {
            "subscriptions": SUBSCRIPTIONS,
            "epochs": EPOCHS,
            "flows_per_epoch": FLOWS_PER_EPOCH,
            "seed": SEED,
            "templates": list(TEMPLATES),
        },
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "results": results,
    }
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"\nwrote {BASELINE_PATH}")


if __name__ == "__main__":
    main()

"""WAN volume vs. hierarchy depth through the unified HierarchyRuntime.

The paper's core architectural claim (Figures 1–2) is that pushing
data stores deeper into the hierarchy shrinks what crosses the WAN:
every extra merge tier deduplicates generalized nodes shared by its
children before anything leaves the edge.  This benchmark drives the
*same* flow trace through the three presets of the unified runtime —

* depth 2: ``flat_runtime`` (router stores → cloud),
* depth 3: ``tiered_runtime`` (router → region → cloud),
* depth 4: ``network_4level_runtime`` (router → region → network → cloud)

— with equal per-store node budgets, and records WAN bytes, total
fabric bytes, and rollup wall-time per depth.

Run as a script to execute the full trace and (re)write the committed
baseline ``BENCH_hierarchy.json`` at the repo root:

```bash
PYTHONPATH=src python benchmarks/bench_hierarchy_depth.py
```

The pytest entry point uses a smaller trace so ``pytest benchmarks/``
stays quick.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

from repro.runtime.presets import (
    flat_runtime,
    network_4level_runtime,
    tiered_runtime,
)
from repro.simulation.traffic import TrafficConfig, TrafficGenerator

try:  # script mode runs without pytest on the path
    from benchmarks.conftest import report
except ImportError:  # pragma: no cover
    def report(title, rows, columns=None):
        print(f"\n=== {title} ===")
        if columns:
            print("  " + " | ".join(str(c) for c in columns))
        for row in rows:
            print("  " + " | ".join(str(cell) for cell in row))

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_hierarchy.json"

SITES = (
    "region1/router1",
    "region1/router2",
    "region2/router1",
    "region2/router2",
)
NODE_BUDGET = 4096


def build_runtimes(node_budget: int = NODE_BUDGET):
    """The three depth presets over the same four routers."""
    flat = flat_runtime(list(SITES), node_budget=node_budget)
    tiered = tiered_runtime(
        list(SITES),
        router_node_budget=node_budget,
        region_node_budget=node_budget,
    )
    deep = network_4level_runtime(
        networks=1,
        regions_per_network=2,
        routers_per_region=2,
        router_node_budget=node_budget,
        region_node_budget=node_budget,
        network_node_budget=node_budget,
    )
    return {
        2: (flat, lambda site: site),
        3: (tiered, lambda site: site),
        4: (deep, lambda site: f"network1/{site}"),
    }


def drive(runtimes, generator, epochs: int) -> dict:
    """Replay one trace through every depth; collect the claim metrics."""
    results = {}
    for depth, (runtime, site_of) in sorted(runtimes.items()):
        for epoch in range(epochs):
            for site in SITES:
                runtime.ingest(site_of(site), generator.epoch(site, epoch))
            runtime.close_epoch((epoch + 1) * 60.0)
        stats = runtime.stats
        results[str(depth)] = {
            "wan_bytes": runtime.wan_bytes(),
            "total_network_bytes": runtime.total_network_bytes(),
            "raw_bytes": stats.raw_bytes,
            "raw_records": stats.raw_records,
            "exported_bytes": stats.exported_bytes,
            "exported_summaries": stats.exported_summaries,
            "reduction_factor": round(stats.reduction_factor, 1),
            "rollup_seconds": round(
                sum(v.rollup_seconds for v in stats.per_level.values()), 6
            ),
            "levels": sorted(stats.per_level),
        }
    return results


def rows_of(results: dict):
    return [
        (
            depth,
            metrics["wan_bytes"],
            metrics["total_network_bytes"],
            f"{metrics['reduction_factor']}x",
            f"{metrics['rollup_seconds'] * 1000:.1f} ms",
        )
        for depth, metrics in sorted(results.items())
    ]


def test_wan_shrinks_with_depth(benchmark):
    """Each extra merge tier must not inflate the WAN volume."""
    epochs = 2
    generator = TrafficGenerator(
        TrafficConfig(sites=SITES, flows_per_epoch=600), seed=2019
    )

    def full_run():
        return drive(build_runtimes(), generator, epochs)

    results = benchmark.pedantic(full_run, rounds=1, iterations=1)
    report(
        "Figure 1/2: WAN bytes vs. hierarchy depth",
        rows_of(results),
        columns=("depth", "wan B", "fabric B", "reduction", "rollup"),
    )
    benchmark.extra_info.update(
        {f"wan_bytes_depth{d}": m["wan_bytes"] for d, m in results.items()}
    )
    wan = {int(depth): m["wan_bytes"] for depth, m in results.items()}
    assert wan[4] <= wan[3] <= wan[2]
    assert all(v > 0 for v in wan.values())
    # the WAN savings are bought with interior fabric hops, so every
    # depth moves strictly more bytes in total than across the WAN
    for depth, metrics in results.items():
        assert metrics["total_network_bytes"] > metrics["wan_bytes"]


def main() -> None:
    generator = TrafficGenerator(
        TrafficConfig(sites=SITES, flows_per_epoch=3000), seed=2019
    )
    epochs = 3
    results = drive(build_runtimes(), generator, epochs)
    report(
        "Figure 1/2: WAN bytes vs. hierarchy depth (full trace)",
        rows_of(results),
        columns=("depth", "wan B", "fabric B", "reduction", "rollup"),
    )
    baseline = {
        "trace": {
            "sites": list(SITES),
            "flows_per_epoch": 3000,
            "epochs": epochs,
            "seed": 2019,
            "node_budget": NODE_BUDGET,
        },
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "depths": results,
    }
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"\nwrote {BASELINE_PATH}")


if __name__ == "__main__":
    main()

"""Figure 4: inside the data store — aggregators and storage strategies.

Two claim sets:

* **Aggregator shelf** (Sample / timebin / HH / HHH / Flowtree / Raw):
  the same stream through each aggregator shows the space/fidelity
  trade-off and why the Flowtree earns its place — comparable footprint
  to narrow sketches while answering the whole Table II operator set.
* **Storage strategies**: under one byte budget, fixed-expiration loses
  the guarantee when rates change, round-robin drops old epochs
  entirely, and hierarchical re-aggregation keeps the full history
  queryable at decaying detail.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SITES, report
from repro.core.flowtree import FlowtreePrimitive
from repro.core.heavy_hitters import HeavyHitterPrimitive
from repro.core.hhh_primitive import HierarchicalHeavyHitterPrimitive
from repro.core.primitive import QueryRequest
from repro.core.reservoir import ReservoirPrimitive
from repro.core.summary import Location
from repro.datastore.partitions import Partition, PartitionCatalog
from repro.datastore.storage import (
    ExpirationStorage,
    HierarchicalStorage,
    RoundRobinStorage,
)
from repro.flows.records import Score

LOC = Location("cloud/region1/router1")


@pytest.fixture(scope="module")
def records(traffic):
    return [r for epoch in range(2) for r in traffic.epoch(SITES[0], epoch)]


def test_aggregator_shelf(benchmark, policy, records):
    """Same stream through each Figure 4 aggregator: footprint + what
    each can answer."""

    def run_shelf():
        raw_bytes = 48 * len(records)
        shelf = []
        flowtree = FlowtreePrimitive(LOC, policy, node_budget=2048)
        hh = HeavyHitterPrimitive(
            LOC,
            capacity=256,
            weight_of=lambda r: max(1, r.bytes),
            key_of=lambda r: r.key,
        )
        hhh = HierarchicalHeavyHitterPrimitive(
            LOC, policy, capacity_per_level=128
        )
        reservoir = ReservoirPrimitive(LOC, capacity=1024, seed=1)
        for record in records:
            flowtree.ingest(record, record.first_seen)
            hh.ingest(record, record.first_seen)
            hhh.ingest(record, record.first_seen)
            reservoir.ingest(record, record.first_seen)
        shelf.append(("raw access", raw_bytes, "everything, no reduction"))
        shelf.append(
            ("sample/reservoir", reservoir.footprint_bytes(),
             "uniform subset, unbiased fractions")
        )
        shelf.append(
            ("heavy hitter", hh.footprint_bytes(),
             "top flows only (flat)")
        )
        shelf.append(
            ("hhh", hhh.footprint_bytes(), "heavy prefixes per level")
        )
        shelf.append(
            ("flowtree", flowtree.footprint_bytes(),
             "all 8 Table II operators")
        )
        return shelf, flowtree, hh

    shelf, flowtree, hh = benchmark.pedantic(run_shelf, rounds=2, iterations=1)
    report(
        "Fig. 4: aggregator shelf (same stream)",
        [(name, f"{size:,} B", what) for name, size, what in shelf],
        columns=("aggregator", "footprint", "answers"),
    )
    raw = shelf[0][1]
    for name, size, _ in shelf[1:]:
        assert size < raw, f"{name} must be smaller than raw storage"
    # fidelity check: the compressed flowtree still ranks the true
    # heaviest flow first (the flat HH sketch at 256 counters cannot —
    # its error bound exceeds the heaviest flow on this distinct-heavy
    # stream, which is exactly why the tree-shaped summary earns its
    # footprint)
    truth = {}
    for record in records:
        truth[record.key] = truth.get(record.key, 0) + record.bytes
    true_top = max(truth, key=lambda key: truth[key])
    ft_top = flowtree.query(QueryRequest("top_k", {"k": 1}))
    assert ft_top[0][0] == true_top
    assert ft_top[0][1].bytes == truth[true_top]
    hh_error_bound = hh.sketch.total_weight / hh.sketch.capacity
    assert hh_error_bound > truth[true_top], (
        "flat HH's error bound should swamp the top flow here"
    )
    benchmark.extra_info["flowtree_bytes"] = shelf[-1][1]


def _partition(policy, index, records, size_override=None):
    tree_primitive = FlowtreePrimitive(LOC, policy, node_budget=2048)
    for record in records:
        tree_primitive.ingest(record, record.first_seen)
    summary = tree_primitive.summary()
    if size_override:
        summary.size_bytes = size_override
    return Partition(
        partition_id=f"p{index}",
        aggregator="ft",
        summary=summary,
        created_at=index * 60.0,
    )


def test_storage_strategy_comparison(benchmark, policy, traffic):
    """Same epoch stream under the three Section IV strategies."""

    def run_strategies():
        budget = 120_000
        epochs = 10
        outcomes = []
        for name, strategy in (
            ("expiration(5 epochs)", ExpirationStorage(ttl_seconds=300.0)),
            ("round-robin", RoundRobinStorage(budget)),
            ("hierarchical", HierarchicalStorage(budget, merge_group=2,
                                                 shrink=0.5)),
        ):
            catalog = PartitionCatalog()
            evicted = []
            for epoch in range(epochs):
                records = traffic.epoch(SITES[1], epoch)[:800]
                partition = _partition(policy, epoch, records)
                evicted += strategy.admit(
                    partition, catalog, now=epoch * 60.0
                )
            # queryable history: how far back does any partition reach?
            oldest = min(
                (p.summary.meta.interval.start for p in catalog.all()),
                default=float("inf"),
            )
            total_mass = Score.zero()
            for partition in catalog.all():
                total_mass = total_mass + partition.summary.payload.total()
            outcomes.append(
                (name, len(catalog), len(evicted), catalog.total_bytes(),
                 oldest, total_mass.flows)
            )
        return outcomes

    outcomes = benchmark.pedantic(run_strategies, rounds=1, iterations=1)
    report(
        "Fig. 4: storage strategies under one budget (10 epochs)",
        [
            (name, parts, evicted, f"{size:,}B", f"t>={oldest:.0f}", flows)
            for name, parts, evicted, size, oldest, flows in outcomes
        ],
        columns=("strategy", "partitions", "evicted", "stored",
                 "oldest data", "flows retained"),
    )
    expiration, round_robin, hierarchical = outcomes
    # round-robin dropped history; hierarchical kept it all
    assert round_robin[2] > 0
    assert hierarchical[2] == 0
    assert hierarchical[4] < 60.0, "hierarchical keeps the oldest epoch"
    assert round_robin[4] >= 300.0, "round-robin lost the oldest epochs"
    # and hierarchical respects the budget better than expiration under
    # sustained rates
    assert hierarchical[3] <= expiration[3]
